//! The VMR2L agent: two-stage action selection with legality masking,
//! plus the Penalty and Full-Mask ablation modes of §5.4.
//!
//! The agent separates *acting* (rollouts and evaluation — sample or
//! greedy, optional risk-seeking quantile thresholds) from *re-evaluating*
//! stored transitions during the PPO update, where log-probabilities,
//! values, and entropies must be recomputed differentiably under the same
//! masks the behavior policy used.

use rand::Rng;

use vmr_nn::graph::{Graph, Var};
use vmr_nn::infer::{FVar, FwdCtx};
use vmr_nn::infer32::{FVar32, FwdCtx32};
use vmr_nn::kernels::masked_softmax_bool_row;
use vmr_nn::kernels_f32::masked_softmax_bool_row_f32;
use vmr_nn::layers::Module;
use vmr_nn::tensor::Tensor;
use vmr_rl::sample::{apply_keep_mask, quantile_keep_mask, Categorical};
use vmr_sim::env::{Action, ReschedEnv};
use vmr_sim::error::{SimError, SimResult};
use vmr_sim::obs::Observation;
use vmr_sim::types::{PmId, VmId};

use crate::config::ActionMode;
use crate::features::{bool_mask_row, FeatureTensors, TreeIndex};
use crate::model::{Stage1Fwd, Stage1Fwd32, Stage1Out, Vmr2lModel, Vmr2lModelF32};

/// Per-decision latency histograms (`core_decide_f64` / `core_decide_f32`
/// in the process-wide registry), recorded by the serving entry points
/// [`Vmr2lAgent::act`] and [`Vmr2lAgent::act_f32`] — one sample per full
/// decision (featurize + stage-1 forward + masked sampling).
fn decide_hist(f32_path: bool) -> &'static std::sync::Arc<vmr_telemetry::Histogram> {
    static F64: std::sync::OnceLock<std::sync::Arc<vmr_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    static F32: std::sync::OnceLock<std::sync::Arc<vmr_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    let (cell, name) = if f32_path { (&F32, "core_decide_f32") } else { (&F64, "core_decide_f64") };
    cell.get_or_init(|| vmr_telemetry::global().histogram(name, vmr_telemetry::Unit::Nanos))
}

/// A policy network usable by the agent: stage-1 extraction + heads, and a
/// stage-2 destination head conditioned on the selected VM. Each stage
/// exists twice — on the autodiff [`Graph`] (training re-evaluation) and
/// on the tape-free [`FwdCtx`] (acting/serving); the two must be
/// bit-identical (enforced by `tests/fwd_equivalence.rs`).
pub trait Policy: Module {
    /// Feature extraction and stage-1 heads.
    fn stage1(&self, g: &mut Graph, feats: &FeatureTensors) -> Stage1Out;
    /// Stage-2 destination logits (`1 × N`) for a selected VM.
    fn stage2(&self, g: &mut Graph, s1: &Stage1Out, feats: &FeatureTensors, vm_idx: usize) -> Var;
    /// Generic per-PM logits (`1 × N`) for the joint (Full-Mask) space.
    fn pm_logits_generic(&self, g: &mut Graph, s1: &Stage1Out, feats: &FeatureTensors) -> Var;
    /// Tape-free stage 1 (bit-identical to [`Policy::stage1`]).
    fn stage1_fwd(&self, ctx: &mut FwdCtx, feats: &FeatureTensors, tree: &TreeIndex) -> Stage1Fwd;
    /// Tape-free stage 2 (bit-identical to [`Policy::stage2`]).
    fn stage2_fwd(
        &self,
        ctx: &mut FwdCtx,
        s1: &Stage1Fwd,
        feats: &FeatureTensors,
        vm_idx: usize,
    ) -> FVar;
    /// Tape-free generic per-PM logits.
    fn pm_logits_generic_fwd(
        &self,
        ctx: &mut FwdCtx,
        s1: &Stage1Fwd,
        feats: &FeatureTensors,
    ) -> FVar;
}

impl Policy for crate::model::Vmr2lModel {
    fn stage1(&self, g: &mut Graph, feats: &FeatureTensors) -> Stage1Out {
        crate::model::Vmr2lModel::stage1(self, g, feats)
    }

    fn stage2(&self, g: &mut Graph, s1: &Stage1Out, _feats: &FeatureTensors, vm_idx: usize) -> Var {
        crate::model::Vmr2lModel::stage2(self, g, s1, vm_idx)
    }

    fn pm_logits_generic(&self, g: &mut Graph, s1: &Stage1Out, _feats: &FeatureTensors) -> Var {
        crate::model::Vmr2lModel::pm_logits_generic(self, g, s1)
    }

    fn stage1_fwd(&self, ctx: &mut FwdCtx, feats: &FeatureTensors, tree: &TreeIndex) -> Stage1Fwd {
        crate::model::Vmr2lModel::stage1_fwd(self, ctx, feats, Some(&tree.groups))
    }

    fn stage2_fwd(
        &self,
        ctx: &mut FwdCtx,
        s1: &Stage1Fwd,
        _feats: &FeatureTensors,
        vm_idx: usize,
    ) -> FVar {
        crate::model::Vmr2lModel::stage2_fwd(self, ctx, s1, vm_idx)
    }

    fn pm_logits_generic_fwd(
        &self,
        ctx: &mut FwdCtx,
        s1: &Stage1Fwd,
        _feats: &FeatureTensors,
    ) -> FVar {
        crate::model::Vmr2lModel::pm_logits_generic_fwd(self, ctx, s1)
    }
}

/// Reusable per-caller inference state: the forward arena plus every
/// scratch buffer the decision loop needs. One `InferCtx` per thread (or
/// per episode loop); at steady state a decision performs no heap
/// allocation inside the forward pass.
#[derive(Debug, Default)]
pub struct InferCtx {
    /// The tape-free forward arena.
    pub ctx: FwdCtx,
    /// The f32 forward arena ([`crate::config::PrecisionConfig::Fast32`]
    /// paths only; empty and cost-free otherwise).
    pub ctx32: FwdCtx32,
    /// Reused featurization (f32 → f64 refill, no rebuild).
    pub feats: FeatureTensors,
    /// Reused PM-tree CSR index for block-sparse local attention.
    pub tree: TreeIndex,
    /// Stage-1 legality mask scratch.
    pub vm_mask: Vec<bool>,
    /// Stage-2 legality mask scratch.
    pub pm_mask: Vec<bool>,
    /// Joint mask scratch (Full-Mask mode).
    pub joint_mask: Vec<bool>,
    /// Stage-1 probability scratch.
    pub vm_probs: Vec<f64>,
    /// Stage-2 probability scratch.
    pub pm_probs: Vec<f64>,
}

impl InferCtx {
    /// Fresh context (buffers grow on first use, then stabilize).
    pub fn new() -> Self {
        InferCtx { feats: FeatureTensors::empty(), ..Default::default() }
    }

    /// Refills the featurization and tree index from an observation and
    /// rewinds the arena — the prologue of every forward.
    pub fn prepare(&mut self, obs: &Observation) {
        self.feats.refill_from(obs);
        self.tree.rebuild(&self.feats);
        self.ctx.reset();
        self.ctx32.reset();
    }

    /// [`InferCtx::prepare`] straight from the environment's cached
    /// observation — borrows it, no clone.
    pub fn prepare_from_env(&mut self, env: &mut ReschedEnv) {
        {
            let obs = env.observe();
            self.feats.refill_from(obs);
        }
        self.tree.rebuild(&self.feats);
        self.ctx.reset();
        self.ctx32.reset();
    }
}

/// A lightweight acting decision: what serving and evaluation need,
/// without the re-evaluation payload (no observation clone).
#[derive(Debug, Clone, Copy)]
pub struct ActDecision {
    /// The environment action.
    pub action: Action,
    /// Joint log-probability under the (unthresholded) behavior policy.
    pub log_prob: f64,
    /// Critic value estimate.
    pub value: f64,
}

/// Everything needed to re-evaluate a transition during the PPO update.
#[derive(Debug, Clone)]
pub struct StoredObs {
    /// The featurized state.
    pub obs: Observation,
    /// Effective stage-1 mask the behavior policy sampled under.
    pub vm_mask: Vec<bool>,
    /// Stage-2 mask for the chosen VM (all-true in Penalty mode).
    pub pm_mask: Vec<bool>,
    /// Joint `M·N` legality mask (Full-Mask mode only), row-major
    /// `k * N + i`.
    pub joint_mask: Option<Vec<bool>>,
}

/// The discrete indices of a stored two-stage action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredAction {
    /// Stage-1 index (VM).
    pub vm_idx: usize,
    /// Stage-2 index (destination PM).
    pub pm_idx: usize,
}

/// One acting decision.
#[derive(Debug, Clone)]
pub struct StepDecision {
    /// The environment action.
    pub action: Action,
    /// Re-evaluation payload.
    pub stored_obs: StoredObs,
    /// Action indices.
    pub stored_action: StoredAction,
    /// Joint log-probability under the (unthresholded) behavior policy.
    pub log_prob: f64,
    /// Critic value estimate.
    pub value: f64,
    /// Stage-1 probabilities (post-mask, pre-threshold).
    pub vm_probs: Vec<f64>,
    /// Stage-2 probabilities for the chosen VM (post-mask, pre-threshold).
    pub pm_probs: Vec<f64>,
}

/// Sampling options for [`Vmr2lAgent::decide`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DecideOpts {
    /// Take the argmax instead of sampling.
    pub greedy: bool,
    /// Risk-seeking quantile threshold over VM probabilities (§3.4).
    pub vm_quantile: Option<f64>,
    /// Risk-seeking quantile threshold over PM probabilities (§3.4).
    pub pm_quantile: Option<f64>,
}

/// Differentiable re-evaluation outputs for the PPO loss.
#[derive(Debug, Clone, Copy)]
pub struct EvalVars {
    /// `1 × 1` joint log-probability of the stored action.
    pub log_prob: Var,
    /// `1 × 1` critic value.
    pub value: Var,
    /// `1 × 1` total policy entropy (both stages).
    pub entropy: Var,
}

/// The agent: a policy plus an action-generation mode.
#[derive(Debug, Clone)]
pub struct Vmr2lAgent<P: Policy> {
    /// The policy network.
    pub policy: P,
    /// Action-generation mode.
    pub mode: ActionMode,
    /// Decima-style destination subsampling: when set, stage 2 only sees a
    /// uniformly random subset of this many PMs (intersected with the
    /// legality mask). The paper's Decima baseline subsamples PMs randomly
    /// instead of learning which to mask (§5.1).
    pub pm_subset_size: Option<usize>,
}

impl<P: Policy> Vmr2lAgent<P> {
    /// Wraps a policy in the given action mode.
    pub fn new(policy: P, mode: ActionMode) -> Self {
        Vmr2lAgent { policy, mode, pm_subset_size: None }
    }

    /// Enables Decima-style random PM subsampling in stage 2.
    pub fn with_pm_subset(mut self, size: usize) -> Self {
        self.pm_subset_size = Some(size.max(1));
        self
    }

    /// Chooses an action for the environment's current state.
    ///
    /// Runs on the tape-free fast path with a throwaway [`InferCtx`];
    /// callers in a loop should hold their own context and use
    /// [`Vmr2lAgent::decide_in`] (training) or [`Vmr2lAgent::act`]
    /// (serving/evaluation) so the arena is reused across decisions.
    ///
    /// Returns `Ok(None)` when no legal action exists (all VMs pinned or
    /// dead-ended) — callers should end the episode.
    pub fn decide<R: Rng + ?Sized>(
        &self,
        env: &mut ReschedEnv,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<StepDecision>> {
        let mut ictx = InferCtx::new();
        self.decide_in(env, &mut ictx, rng, opts)
    }

    /// [`Vmr2lAgent::decide`] on the legacy autodiff engine: every forward
    /// builds a full gradient tape. Kept as the bit-identity reference for
    /// `tests/fwd_equivalence.rs` and as the "old" side of the
    /// `decide_step` bench pair; not used by any production path.
    pub fn decide_via_graph<R: Rng + ?Sized>(
        &self,
        env: &mut ReschedEnv,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<StepDecision>> {
        // The clone out of the cache is the copy that ends up in
        // `StoredObs`; no full featurization rebuild happens here.
        let obs = env.observe().clone();
        let feats = FeatureTensors::from_observation(&obs);
        let mut g = Graph::new();
        let s1 = self.policy.stage1(&mut g, &feats);
        let value = g.value(s1.value).get(0, 0);

        match self.mode {
            ActionMode::TwoStage | ActionMode::Penalty => {
                let masked_stage2 = self.mode == ActionMode::TwoStage;
                let mut vm_mask = env.vm_mask();
                // Scratch stage-2 mask, reused across resample attempts.
                let mut pm_mask_buf: Vec<bool> = Vec::new();
                // Up to a few resamples if the chosen VM has no destination.
                for _attempt in 0..8 {
                    if !vm_mask.iter().any(|&b| b) {
                        return Ok(None);
                    }
                    let vm_probs = masked_probs(&mut g, s1.vm_logits, &vm_mask);
                    let Some((vm_idx, vm_lp)) = pick(&vm_probs, opts.vm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    let mut pm_mask = std::mem::take(&mut pm_mask_buf);
                    if masked_stage2 {
                        env.pm_mask_into(VmId(vm_idx as u32), &mut pm_mask);
                    } else {
                        pm_mask.clear();
                        pm_mask.resize(env.state().num_pms(), true);
                    }
                    if let Some(k) = self.pm_subset_size {
                        subsample_mask(&mut pm_mask, k, rng);
                    }
                    if masked_stage2 && !pm_mask.iter().any(|&b| b) {
                        // Dead-end VM: exclude and retry under the reduced
                        // mask (stored mask stays consistent).
                        vm_mask[vm_idx] = false;
                        pm_mask_buf = pm_mask;
                        continue;
                    }
                    let pm_logits = self.policy.stage2(&mut g, &s1, &feats, vm_idx);
                    let pm_probs = masked_probs(&mut g, pm_logits, &pm_mask);
                    let Some((pm_idx, pm_lp)) = pick(&pm_probs, opts.pm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    return Ok(Some(StepDecision {
                        action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                        stored_obs: StoredObs { obs, vm_mask, pm_mask, joint_mask: None },
                        stored_action: StoredAction { vm_idx, pm_idx },
                        log_prob: vm_lp + pm_lp,
                        value,
                        vm_probs,
                        pm_probs,
                    }));
                }
                Ok(None)
            }
            ActionMode::FullMask => {
                let m = env.state().num_vms();
                let n = env.state().num_pms();
                // The joint mask costs O(M·N) legality checks — exactly the
                // expense the paper's two-stage design avoids.
                let mut joint_mask = vec![false; m * n];
                let mut row = Vec::new();
                for k in 0..m {
                    env.pm_mask_into(VmId(k as u32), &mut row);
                    joint_mask[k * n..(k + 1) * n].copy_from_slice(&row);
                }
                if !joint_mask.iter().any(|&b| b) {
                    return Ok(None);
                }
                let joint_logits = self.joint_logits(&mut g, &s1, &feats);
                let flat = g.reshape(joint_logits, 1, m * n);
                let probs = masked_probs(&mut g, flat, &joint_mask);
                let Some((idx, lp)) = pick(&probs, None, opts.greedy, rng) else {
                    return Ok(None);
                };
                let (vm_idx, pm_idx) = (idx / n, idx % n);
                Ok(Some(StepDecision {
                    action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                    stored_obs: StoredObs {
                        obs,
                        vm_mask: vec![true; m],
                        pm_mask: vec![true; n],
                        joint_mask: Some(joint_mask),
                    },
                    stored_action: StoredAction { vm_idx, pm_idx },
                    log_prob: lp,
                    value,
                    vm_probs: probs,
                    pm_probs: Vec::new(),
                }))
            }
        }
    }

    /// [`Vmr2lAgent::decide`] with a caller-owned [`InferCtx`]: the
    /// tape-free fast path plus the full re-evaluation payload for the
    /// PPO buffer. Bit-identical decisions to
    /// [`Vmr2lAgent::decide_via_graph`] (same kernels, same RNG draws).
    pub fn decide_in<R: Rng + ?Sized>(
        &self,
        env: &mut ReschedEnv,
        ictx: &mut InferCtx,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<StepDecision>> {
        // Training needs an owned observation per transition; this clone
        // feeds `StoredObs` (the pure acting path, `act`, skips it).
        let obs = env.observe().clone();
        ictx.prepare(&obs);
        let s1 = self.policy.stage1_fwd(&mut ictx.ctx, &ictx.feats, &ictx.tree);
        let Some(act) = self.act_core(env, ictx, &s1, rng, opts)? else {
            return Ok(None);
        };
        let (vm_idx, pm_idx) = (act.action.vm.0 as usize, act.action.pm.0 as usize);
        let stored_obs = match self.mode {
            ActionMode::TwoStage | ActionMode::Penalty => StoredObs {
                obs,
                vm_mask: ictx.vm_mask.clone(),
                pm_mask: ictx.pm_mask.clone(),
                joint_mask: None,
            },
            ActionMode::FullMask => StoredObs {
                obs,
                vm_mask: vec![true; ictx.feats.num_vms],
                pm_mask: vec![true; ictx.feats.num_pms],
                joint_mask: Some(ictx.joint_mask.clone()),
            },
        };
        Ok(Some(StepDecision {
            action: act.action,
            stored_obs,
            stored_action: StoredAction { vm_idx, pm_idx },
            log_prob: act.log_prob,
            value: act.value,
            vm_probs: ictx.vm_probs.clone(),
            pm_probs: ictx.pm_probs.clone(),
        }))
    }

    /// Pure acting: chooses an action on the tape-free fast path without
    /// cloning the cached observation or materializing a re-evaluation
    /// payload. This is the serving/evaluation hot path — at steady state
    /// the forward pass performs no heap allocation.
    pub fn act<R: Rng + ?Sized>(
        &self,
        env: &mut ReschedEnv,
        ictx: &mut InferCtx,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<ActDecision>> {
        let t = vmr_telemetry::Timer::start();
        ictx.prepare_from_env(env);
        let s1 = self.policy.stage1_fwd(&mut ictx.ctx, &ictx.feats, &ictx.tree);
        let decision = self.act_core(env, ictx, &s1, rng, opts);
        t.observe(decide_hist(false));
        decision
    }

    /// Critic value of the environment's current state on the fast path.
    pub fn state_value_in(&self, env: &mut ReschedEnv, ictx: &mut InferCtx) -> f64 {
        ictx.prepare_from_env(env);
        let s1 = self.policy.stage1_fwd(&mut ictx.ctx, &ictx.feats, &ictx.tree);
        ictx.ctx.value(s1.value).get(0, 0)
    }

    /// The action-selection tail shared by [`Vmr2lAgent::act`] and
    /// [`Vmr2lAgent::decide_in`]: masking, (re)sampling, and log-prob
    /// accounting over an already-computed stage-1 output. Exposed so
    /// callers that precompute embeddings elsewhere (vmr-serve's
    /// cross-session batched GEMM) can rejoin the decision logic.
    ///
    /// On return, the context's scratch buffers describe the decision:
    /// `vm_mask`/`pm_mask` (or `joint_mask`) are the masks the sampled
    /// distribution used, `vm_probs`/`pm_probs` the post-mask
    /// probabilities.
    pub fn act_core<R: Rng + ?Sized>(
        &self,
        env: &ReschedEnv,
        ictx: &mut InferCtx,
        s1: &Stage1Fwd,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<ActDecision>> {
        let value = ictx.ctx.value(s1.value).get(0, 0);
        match self.mode {
            ActionMode::TwoStage | ActionMode::Penalty => {
                let masked_stage2 = self.mode == ActionMode::TwoStage;
                env.vm_mask_into(false, &mut ictx.vm_mask);
                // Up to a few resamples if the chosen VM has no destination.
                for _attempt in 0..8 {
                    if !ictx.vm_mask.iter().any(|&b| b) {
                        return Ok(None);
                    }
                    masked_softmax_bool_row(
                        ictx.ctx.value(s1.vm_logits).row_slice(0),
                        &ictx.vm_mask,
                        &mut ictx.vm_probs,
                    );
                    let Some((vm_idx, vm_lp)) =
                        pick(&ictx.vm_probs, opts.vm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    if masked_stage2 {
                        env.pm_mask_into(VmId(vm_idx as u32), &mut ictx.pm_mask);
                    } else {
                        ictx.pm_mask.clear();
                        ictx.pm_mask.resize(env.state().num_pms(), true);
                    }
                    if let Some(k) = self.pm_subset_size {
                        subsample_mask(&mut ictx.pm_mask, k, rng);
                    }
                    if masked_stage2 && !ictx.pm_mask.iter().any(|&b| b) {
                        // Dead-end VM: exclude and retry under the reduced
                        // mask (stored mask stays consistent).
                        ictx.vm_mask[vm_idx] = false;
                        continue;
                    }
                    let pm_logits = self.policy.stage2_fwd(&mut ictx.ctx, s1, &ictx.feats, vm_idx);
                    masked_softmax_bool_row(
                        ictx.ctx.value(pm_logits).row_slice(0),
                        &ictx.pm_mask,
                        &mut ictx.pm_probs,
                    );
                    let Some((pm_idx, pm_lp)) =
                        pick(&ictx.pm_probs, opts.pm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    return Ok(Some(ActDecision {
                        action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                        log_prob: vm_lp + pm_lp,
                        value,
                    }));
                }
                Ok(None)
            }
            ActionMode::FullMask => {
                let m = env.state().num_vms();
                let n = env.state().num_pms();
                // The joint mask costs O(M·N) legality checks — exactly the
                // expense the paper's two-stage design avoids.
                ictx.joint_mask.clear();
                ictx.joint_mask.resize(m * n, false);
                for k in 0..m {
                    env.pm_mask_into(VmId(k as u32), &mut ictx.pm_mask);
                    ictx.joint_mask[k * n..(k + 1) * n].copy_from_slice(&ictx.pm_mask);
                }
                if !ictx.joint_mask.iter().any(|&b| b) {
                    return Ok(None);
                }
                let InferCtx { ctx, feats, joint_mask, vm_probs, pm_probs, .. } = ictx;
                let joint = self.joint_logits_fwd(ctx, s1, feats);
                let flat = ctx.reshape(joint, 1, m * n);
                masked_softmax_bool_row(ctx.value(flat).row_slice(0), joint_mask, vm_probs);
                pm_probs.clear();
                let Some((idx, lp)) = pick(vm_probs, None, opts.greedy, rng) else {
                    return Ok(None);
                };
                let (vm_idx, pm_idx) = (idx / n, idx % n);
                Ok(Some(ActDecision {
                    action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                    log_prob: lp,
                    value,
                }))
            }
        }
    }

    /// Tape-free joint `M × N` logits for the Full-Mask mode (mirrors
    /// [`Vmr2lAgent::joint_logits`]).
    fn joint_logits_fwd(&self, ctx: &mut FwdCtx, s1: &Stage1Fwd, feats: &FeatureTensors) -> FVar {
        let m = feats.num_vms;
        let n = feats.num_pms;
        let vm_col = ctx.reshape(s1.vm_logits, m, 1);
        let ones_row = ctx.full(1, n, 1.0);
        let vm_grid = ctx.matmul(vm_col, ones_row); // M × N
        let pm_row = self.policy.pm_logits_generic_fwd(ctx, s1, feats); // 1 × N
        let ones_col = ctx.full(m, 1, 1.0);
        let pm_grid = ctx.matmul(ones_col, pm_row); // M × N
        let sum = ctx.add(vm_grid, pm_grid);
        ctx.add(sum, s1.cross_probs)
    }

    /// Differentiably re-evaluates a stored transition for the PPO loss.
    pub fn evaluate_actions(
        &self,
        g: &mut Graph,
        stored: &StoredObs,
        action: StoredAction,
    ) -> EvalVars {
        let feats = FeatureTensors::from_observation(&stored.obs);
        let s1 = self.policy.stage1(g, &feats);
        match self.mode {
            ActionMode::TwoStage | ActionMode::Penalty => {
                let vm_mask = bool_mask_row(&stored.vm_mask);
                let vm_lp_row = g.masked_log_softmax_rows(s1.vm_logits, &vm_mask);
                let vm_lp = g.gather_elems(vm_lp_row, &[(0, action.vm_idx)]);
                let vm_ent = entropy_var(g, s1.vm_logits, &vm_mask);

                let pm_logits = self.policy.stage2(g, &s1, &feats, action.vm_idx);
                let pm_mask = bool_mask_row(&stored.pm_mask);
                let pm_lp_row = g.masked_log_softmax_rows(pm_logits, &pm_mask);
                let pm_lp = g.gather_elems(pm_lp_row, &[(0, action.pm_idx)]);
                let pm_ent = entropy_var(g, pm_logits, &pm_mask);

                let log_prob = g.add(vm_lp, pm_lp);
                let entropy = g.add(vm_ent, pm_ent);
                EvalVars { log_prob, value: s1.value, entropy }
            }
            ActionMode::FullMask => {
                let m = feats.num_vms;
                let n = feats.num_pms;
                let joint = self.joint_logits(g, &s1, &feats);
                let flat = g.reshape(joint, 1, m * n);
                let mask_bools =
                    stored.joint_mask.as_ref().expect("FullMask transitions carry a joint mask");
                let mask = bool_mask_row(mask_bools);
                let lp_row = g.masked_log_softmax_rows(flat, &mask);
                let idx = action.vm_idx * n + action.pm_idx;
                let log_prob = g.gather_elems(lp_row, &[(0, idx)]);
                let entropy = entropy_var(g, flat, &mask);
                EvalVars { log_prob, value: s1.value, entropy }
            }
        }
    }

    /// Joint `M × N` logits for the Full-Mask mode: outer sum of stage-1
    /// VM logits and generic PM logits, plus the cross-attention map.
    fn joint_logits(&self, g: &mut Graph, s1: &Stage1Out, feats: &FeatureTensors) -> Var {
        let m = feats.num_vms;
        let n = feats.num_pms;
        let vm_col = g.transpose(s1.vm_logits); // M × 1
        let ones_row = g.constant(Tensor::full(1, n, 1.0));
        let vm_grid = g.matmul(vm_col, ones_row); // M × N
        let pm_row = self.policy.pm_logits_generic(g, s1, feats); // 1 × N
        let ones_col = g.constant(Tensor::full(m, 1, 1.0));
        let pm_grid = g.matmul(ones_col, pm_row); // M × N
        let sum = g.add(vm_grid, pm_grid);
        g.add(sum, s1.cross_probs)
    }
}

/// The f32 fast acting path ([`crate::config::PrecisionConfig::Fast32`]).
///
/// These are inherent methods on the transformer agent rather than
/// [`Policy`] extensions: the f32 mirror exists only for
/// [`Vmr2lModel`], and the caller supplies the pre-cast
/// [`Vmr2lModelF32`] explicitly (weights are cast once and reused, see
/// [`crate::infer::SharedAgent`]). The control flow — masking, the
/// resample loop, quantile thresholds, RNG draw order — is identical to
/// the f64 path; only the forward arithmetic differs, so decisions are
/// *tolerance*-equivalent, not bit-identical (`tests/
/// integration_precision.rs` gates the plan-level agreement).
impl Vmr2lAgent<Vmr2lModel> {
    /// [`Vmr2lAgent::act`] on the f32 arena.
    pub fn act_f32<R: Rng + ?Sized>(
        &self,
        m32: &Vmr2lModelF32,
        env: &mut ReschedEnv,
        ictx: &mut InferCtx,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<ActDecision>> {
        let t = vmr_telemetry::Timer::start();
        ictx.prepare_from_env(env);
        let s1 = m32.stage1_fwd(&mut ictx.ctx32, &ictx.feats, Some(&ictx.tree.groups));
        let decision = self.act_core_f32(m32, env, ictx, &s1, rng, opts);
        t.observe(decide_hist(true));
        decision
    }

    /// [`Vmr2lAgent::state_value_in`] on the f32 arena.
    pub fn state_value_in_f32(
        &self,
        m32: &Vmr2lModelF32,
        env: &mut ReschedEnv,
        ictx: &mut InferCtx,
    ) -> f64 {
        ictx.prepare_from_env(env);
        let s1 = m32.stage1_fwd(&mut ictx.ctx32, &ictx.feats, Some(&ictx.tree.groups));
        f64::from(ictx.ctx32.value(s1.value).get(0, 0))
    }

    /// [`Vmr2lAgent::act_core`] on the f32 arena: identical masking,
    /// resampling, and log-prob accounting over an f32 stage-1 output.
    /// Probabilities are normalized in f64 (see
    /// [`masked_softmax_bool_row_f32`]) so the sampling stack — RNG draw
    /// order included — is shared verbatim with the f64 path.
    pub fn act_core_f32<R: Rng + ?Sized>(
        &self,
        m32: &Vmr2lModelF32,
        env: &ReschedEnv,
        ictx: &mut InferCtx,
        s1: &Stage1Fwd32,
        rng: &mut R,
        opts: &DecideOpts,
    ) -> SimResult<Option<ActDecision>> {
        let value = f64::from(ictx.ctx32.value(s1.value).get(0, 0));
        match self.mode {
            ActionMode::TwoStage | ActionMode::Penalty => {
                let masked_stage2 = self.mode == ActionMode::TwoStage;
                env.vm_mask_into(false, &mut ictx.vm_mask);
                // Up to a few resamples if the chosen VM has no destination.
                for _attempt in 0..8 {
                    if !ictx.vm_mask.iter().any(|&b| b) {
                        return Ok(None);
                    }
                    masked_softmax_bool_row_f32(
                        ictx.ctx32.value(s1.vm_logits).row_slice(0),
                        &ictx.vm_mask,
                        &mut ictx.vm_probs,
                    );
                    let Some((vm_idx, vm_lp)) =
                        pick(&ictx.vm_probs, opts.vm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    if masked_stage2 {
                        env.pm_mask_into(VmId(vm_idx as u32), &mut ictx.pm_mask);
                    } else {
                        ictx.pm_mask.clear();
                        ictx.pm_mask.resize(env.state().num_pms(), true);
                    }
                    if let Some(k) = self.pm_subset_size {
                        subsample_mask(&mut ictx.pm_mask, k, rng);
                    }
                    if masked_stage2 && !ictx.pm_mask.iter().any(|&b| b) {
                        // Dead-end VM: exclude and retry under the reduced
                        // mask (stored mask stays consistent).
                        ictx.vm_mask[vm_idx] = false;
                        continue;
                    }
                    let pm_logits = m32.stage2_fwd(&mut ictx.ctx32, s1, vm_idx);
                    masked_softmax_bool_row_f32(
                        ictx.ctx32.value(pm_logits).row_slice(0),
                        &ictx.pm_mask,
                        &mut ictx.pm_probs,
                    );
                    let Some((pm_idx, pm_lp)) =
                        pick(&ictx.pm_probs, opts.pm_quantile, opts.greedy, rng)
                    else {
                        return Ok(None);
                    };
                    return Ok(Some(ActDecision {
                        action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                        log_prob: vm_lp + pm_lp,
                        value,
                    }));
                }
                Ok(None)
            }
            ActionMode::FullMask => {
                let m = env.state().num_vms();
                let n = env.state().num_pms();
                // The joint mask costs O(M·N) legality checks — exactly the
                // expense the paper's two-stage design avoids.
                ictx.joint_mask.clear();
                ictx.joint_mask.resize(m * n, false);
                for k in 0..m {
                    env.pm_mask_into(VmId(k as u32), &mut ictx.pm_mask);
                    ictx.joint_mask[k * n..(k + 1) * n].copy_from_slice(&ictx.pm_mask);
                }
                if !ictx.joint_mask.iter().any(|&b| b) {
                    return Ok(None);
                }
                let InferCtx { ctx32, feats, joint_mask, vm_probs, pm_probs, .. } = ictx;
                let joint = joint_logits_fwd_f32(m32, ctx32, s1, feats);
                let flat = ctx32.reshape(joint, 1, m * n);
                masked_softmax_bool_row_f32(ctx32.value(flat).row_slice(0), joint_mask, vm_probs);
                pm_probs.clear();
                let Some((idx, lp)) = pick(vm_probs, None, opts.greedy, rng) else {
                    return Ok(None);
                };
                let (vm_idx, pm_idx) = (idx / n, idx % n);
                Ok(Some(ActDecision {
                    action: Action { vm: VmId(vm_idx as u32), pm: PmId(pm_idx as u32) },
                    log_prob: lp,
                    value,
                }))
            }
        }
    }
}

/// f32 joint `M × N` logits for the Full-Mask mode (mirrors
/// `Vmr2lAgent::joint_logits_fwd`).
fn joint_logits_fwd_f32(
    m32: &Vmr2lModelF32,
    ctx: &mut FwdCtx32,
    s1: &Stage1Fwd32,
    feats: &FeatureTensors,
) -> FVar32 {
    let m = feats.num_vms;
    let n = feats.num_pms;
    let vm_col = ctx.reshape(s1.vm_logits, m, 1);
    let ones_row = ctx.full(1, n, 1.0);
    let vm_grid = ctx.matmul(vm_col, ones_row); // M × N
    let pm_row = m32.pm_logits_generic_fwd(ctx, s1); // 1 × N
    let ones_col = ctx.full(m, 1, 1.0);
    let pm_grid = ctx.matmul(ones_col, pm_row); // M × N
    let sum = ctx.add(vm_grid, pm_grid);
    ctx.add(sum, s1.cross_probs)
}

/// Masked softmax probabilities as plain `f64`s (acting path — no grads
/// needed, but we reuse the graph for the forward computation).
fn masked_probs(g: &mut Graph, logits: Var, mask: &[bool]) -> Vec<f64> {
    let mask_row = bool_mask_row(mask);
    let p = g.masked_softmax_rows(logits, &mask_row);
    g.value(p).data().to_vec()
}

/// Samples (or greedily picks) from probabilities after an optional
/// risk-seeking quantile threshold; returns `(index, log_prob)` where the
/// log-probability is under the *unthresholded* distribution (thresholds
/// are an evaluation-time device, not part of the trained policy).
fn pick<R: Rng + ?Sized>(
    probs: &[f64],
    quantile: Option<f64>,
    greedy: bool,
    rng: &mut R,
) -> Option<(usize, f64)> {
    let base = Categorical::new(probs)?;
    if greedy {
        let idx = base.argmax();
        return Some((idx, base.log_prob(idx)));
    }
    let idx = match quantile {
        Some(q) => {
            let keep = quantile_keep_mask(probs, q);
            let filtered = apply_keep_mask(probs, &keep);
            Categorical::new(&filtered)?.sample(rng)
        }
        None => base.sample(rng),
    };
    Some((idx, base.log_prob(idx)))
}

/// Restricts a legality mask to a uniformly random subset of `k` of its
/// `true` entries (Decima-style destination subsampling). If fewer than
/// `k` entries are legal the mask is unchanged.
fn subsample_mask<R: Rng + ?Sized>(mask: &mut [bool], k: usize, rng: &mut R) {
    let legal: Vec<usize> = mask.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
    if legal.len() <= k {
        return;
    }
    // Partial Fisher-Yates: choose k survivors.
    let mut pool = legal;
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    let keep: std::collections::HashSet<usize> = pool[..k].iter().copied().collect();
    for (i, slot) in mask.iter_mut().enumerate() {
        if *slot && !keep.contains(&i) {
            *slot = false;
        }
    }
}

/// Entropy of a masked softmax distribution as a differentiable `1 × 1`
/// node: `−Σ p ln p`.
fn entropy_var(g: &mut Graph, logits: Var, mask: &Tensor) -> Var {
    let p = g.masked_softmax_rows(logits, mask);
    let lp = g.masked_log_softmax_rows(logits, mask);
    let prod = g.mul_elem(p, lp);
    let s = g.sum_all(prod);
    g.scale(s, -1.0)
}

/// Convenience: deterministically roll out a full episode with the agent
/// and return the final objective value and the plan.
pub fn rollout_episode<P: Policy, R: Rng + ?Sized>(
    agent: &Vmr2lAgent<P>,
    env: &mut ReschedEnv,
    rng: &mut R,
    opts: &DecideOpts,
) -> SimResult<(f64, Vec<Action>)> {
    /// Consecutive illegal proposals tolerated before giving up on the
    /// episode. Unmasked modes can propose illegal actions; a greedy
    /// policy would re-propose the same one forever, so retries must be
    /// bounded.
    const MAX_ILLEGAL_RETRIES: usize = 64;

    env.reset();
    let mut ictx = InferCtx::new();
    let mut plan = Vec::new();
    let mut illegal_streak = 0usize;
    while !env.is_done() {
        let Some(decision) = agent.act(env, &mut ictx, rng, opts)? else {
            break;
        };
        match env.step(decision.action) {
            Ok(_) => {
                illegal_streak = 0;
                plan.push(decision.action);
            }
            Err(SimError::EpisodeDone | SimError::MnlExhausted) => break,
            // Unmasked modes may emit illegal actions; skip them here
            // (training assigns the −5 penalty, evaluation retries a
            // bounded number of times — a greedy policy is deterministic
            // and would otherwise loop forever).
            Err(_) if agent.mode != ActionMode::TwoStage => {
                illegal_streak += 1;
                if opts.greedy || illegal_streak >= MAX_ILLEGAL_RETRIES {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok((env.objective_value(), plan))
}

/// [`rollout_episode`] on the f32 fast path: same episode loop and
/// illegal-action policy, forwards on the pre-cast [`Vmr2lModelF32`].
pub fn rollout_episode_f32<R: Rng + ?Sized>(
    agent: &Vmr2lAgent<Vmr2lModel>,
    m32: &Vmr2lModelF32,
    env: &mut ReschedEnv,
    rng: &mut R,
    opts: &DecideOpts,
) -> SimResult<(f64, Vec<Action>)> {
    /// Same bound as [`rollout_episode`]: unmasked modes can re-propose
    /// illegal actions, so retries must be finite.
    const MAX_ILLEGAL_RETRIES: usize = 64;

    env.reset();
    let mut ictx = InferCtx::new();
    let mut plan = Vec::new();
    let mut illegal_streak = 0usize;
    while !env.is_done() {
        let Some(decision) = agent.act_f32(m32, env, &mut ictx, rng, opts)? else {
            break;
        };
        match env.step(decision.action) {
            Ok(_) => {
                illegal_streak = 0;
                plan.push(decision.action);
            }
            Err(SimError::EpisodeDone | SimError::MnlExhausted) => break,
            Err(_) if agent.mode != ActionMode::TwoStage => {
                illegal_streak += 1;
                if opts.greedy || illegal_streak >= MAX_ILLEGAL_RETRIES {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok((env.objective_value(), plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExtractorKind, ModelConfig};
    use crate::model::Vmr2lModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};
    use vmr_sim::objective::Objective;

    fn agent(mode: ActionMode) -> Vmr2lAgent<Vmr2lModel> {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ModelConfig { d_model: 16, heads: 2, blocks: 1, d_ff: 32, critic_hidden: 16 };
        Vmr2lAgent::new(Vmr2lModel::new(cfg, ExtractorKind::SparseAttention, &mut rng), mode)
    }

    fn env() -> ReschedEnv {
        let state = generate_mapping(&ClusterConfig::tiny(), 17).unwrap();
        ReschedEnv::unconstrained(state, Objective::default(), 4).unwrap()
    }

    #[test]
    fn two_stage_actions_are_always_legal() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            if e.is_done() {
                e.reset();
            }
            let d = a.decide(&mut e, &mut rng, &DecideOpts::default()).unwrap().unwrap();
            assert!(
                e.action_legal(d.action).is_ok(),
                "two-stage masking must preclude illegal actions"
            );
            e.step(d.action).unwrap();
        }
    }

    #[test]
    fn decision_log_prob_matches_probs() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(1);
        let d = a.decide(&mut e, &mut rng, &DecideOpts::default()).unwrap().unwrap();
        let expect = d.vm_probs[d.stored_action.vm_idx].max(1e-300).ln()
            + d.pm_probs[d.stored_action.pm_idx].max(1e-300).ln();
        assert!((d.log_prob - expect).abs() < 1e-9);
    }

    #[test]
    fn evaluate_matches_behavior_log_prob() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(2);
        let d = a.decide(&mut e, &mut rng, &DecideOpts::default()).unwrap().unwrap();
        let mut g = Graph::new();
        let ev = a.evaluate_actions(&mut g, &d.stored_obs, d.stored_action);
        let lp = g.value(ev.log_prob).get(0, 0);
        assert!((lp - d.log_prob).abs() < 1e-9, "evaluate {lp} vs behavior {}", d.log_prob);
        let v = g.value(ev.value).get(0, 0);
        assert!((v - d.value).abs() < 1e-12);
        let ent = g.value(ev.entropy).get(0, 0);
        assert!(ent >= 0.0);
    }

    #[test]
    fn greedy_is_deterministic() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let opts = DecideOpts { greedy: true, ..Default::default() };
        let mut r1 = StdRng::seed_from_u64(10);
        let mut r2 = StdRng::seed_from_u64(99);
        let d1 = a.decide(&mut e, &mut r1, &opts).unwrap().unwrap();
        let d2 = a.decide(&mut e, &mut r2, &opts).unwrap().unwrap();
        assert_eq!(d1.action, d2.action);
    }

    #[test]
    fn full_mask_actions_are_legal() {
        let a = agent(ActionMode::FullMask);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(4);
        let d = a.decide(&mut e, &mut rng, &DecideOpts::default()).unwrap().unwrap();
        assert!(e.action_legal(d.action).is_ok());
        assert!(d.stored_obs.joint_mask.is_some());
        // Re-evaluation agrees.
        let mut g = Graph::new();
        let ev = a.evaluate_actions(&mut g, &d.stored_obs, d.stored_action);
        let lp = g.value(ev.log_prob).get(0, 0);
        assert!((lp - d.log_prob).abs() < 1e-9);
    }

    #[test]
    fn penalty_mode_may_propose_illegal() {
        // Penalty mode has no stage-2 mask; over many samples it should
        // propose at least one illegal action on a busy cluster.
        let a = agent(ActionMode::Penalty);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_illegal = false;
        for _ in 0..40 {
            let d = a.decide(&mut e, &mut rng, &DecideOpts::default()).unwrap().unwrap();
            if e.action_legal(d.action).is_err() {
                saw_illegal = true;
                break;
            }
        }
        assert!(saw_illegal, "penalty mode should occasionally pick illegal PMs");
    }

    #[test]
    fn rollout_episode_improves_or_holds() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let initial = e.initial_state().fragment_rate(16);
        let mut rng = StdRng::seed_from_u64(6);
        let (final_fr, plan) =
            rollout_episode(&a, &mut e, &mut rng, &DecideOpts::default()).unwrap();
        assert!(plan.len() <= 4);
        // An untrained policy may not improve, but the value is a valid FR.
        assert!((0.0..=1.0).contains(&final_fr));
        let _ = initial;
    }

    #[test]
    fn f32_actions_are_legal_and_value_tracks_f64() {
        let a = agent(ActionMode::TwoStage);
        let m32 = Vmr2lModelF32::from_f64(&a.policy);
        let mut e = env();
        let mut ictx = InferCtx::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            if e.is_done() {
                e.reset();
            }
            let d = a.act_f32(&m32, &mut e, &mut ictx, &mut rng, &DecideOpts::default());
            let Some(d) = d.unwrap() else { break };
            assert!(e.action_legal(d.action).is_ok(), "f32 masking must stay exact");
            let v64 = a.state_value_in(&mut e, &mut ictx);
            let v32 = a.state_value_in_f32(&m32, &mut e, &mut ictx);
            assert!((v64 - v32).abs() < 1e-3, "critic value f32 {v32} vs f64 {v64}");
            e.step(d.action).unwrap();
        }
    }

    #[test]
    fn f32_greedy_matches_f64_greedy_on_episode() {
        // Tolerance contract, checked end-to-end on a tiny instance: the
        // same untrained checkpoint, rolled out greedily under both
        // precisions, should produce the same plan unless two logits tie
        // within f32 noise — which this seed does not.
        let a = agent(ActionMode::TwoStage);
        let m32 = Vmr2lModelF32::from_f64(&a.policy);
        let opts = DecideOpts { greedy: true, ..Default::default() };
        let mut e = env();
        let mut r1 = StdRng::seed_from_u64(21);
        let (obj64, plan64) = rollout_episode(&a, &mut e, &mut r1, &opts).unwrap();
        let mut r2 = StdRng::seed_from_u64(22);
        let (obj32, plan32) = rollout_episode_f32(&a, &m32, &mut e, &mut r2, &opts).unwrap();
        assert_eq!(plan64, plan32, "greedy plans diverged between precisions");
        assert!((obj64 - obj32).abs() < 1e-12);
    }

    #[test]
    fn f32_full_mask_actions_are_legal() {
        let a = agent(ActionMode::FullMask);
        let m32 = Vmr2lModelF32::from_f64(&a.policy);
        let mut e = env();
        let mut ictx = InferCtx::new();
        let mut rng = StdRng::seed_from_u64(12);
        let d = a
            .act_f32(&m32, &mut e, &mut ictx, &mut rng, &DecideOpts::default())
            .unwrap()
            .expect("joint space has legal pairs");
        assert!(e.action_legal(d.action).is_ok());
    }

    #[test]
    fn thresholded_sampling_stays_legal() {
        let a = agent(ActionMode::TwoStage);
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(7);
        let opts =
            DecideOpts { vm_quantile: Some(0.9), pm_quantile: Some(0.9), ..Default::default() };
        for _ in 0..10 {
            let d = a.decide(&mut e, &mut rng, &opts).unwrap().unwrap();
            assert!(e.action_legal(d.action).is_ok());
        }
    }
}
