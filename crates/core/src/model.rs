//! The VMR2L network: shared embedding networks, sparse tree-attention
//! blocks, the two actors, and the critic (§3.2–3.3 of the paper).
//!
//! Architecture per attention block (Fig. 8):
//! 1. **sparse local attention** — PMs and VMs exchange information iff
//!    they belong to the same PM-tree (additive tree mask),
//! 2. **self-attention** — PMs attend to PMs, VMs attend to VMs,
//! 3. **VM→PM cross attention** — whose probabilities are also surfaced to
//!    the PM actor so the two actors coordinate.
//!
//! After the three stages each entity passes through two dense layers and
//! layer norm (the residual feed-forward sub-block). The VM embeddings of
//! the last block are linearly projected to stage-1 logits; the PM actor
//! is an encoder-decoder over the selected VM embedding, all PM
//! embeddings, and the stage-3 attention row of the selected VM.

use rand::Rng;

use vmr_nn::graph::{Graph, Var};
use vmr_nn::infer::{FVar, FwdCtx, TreeGroups};
use vmr_nn::infer32::{FVar32, FwdCtx32};
use vmr_nn::layers::{FeedForward, Linear, Mlp, Module, MultiHeadAttention};
use vmr_nn::layers_f32::{FeedForward32, Linear32, Mlp32, MultiHeadAttention32};
use vmr_nn::tensor::Tensor;
use vmr_nn::tensor32::Tensor32;
use vmr_sim::obs::{PM_FEAT, VM_FEAT};

use crate::config::{ExtractorKind, ModelConfig};
use crate::features::FeatureTensors;

/// Output of the shared feature extraction + stage-1 heads on the
/// tape-free engine (mirrors [`Stage1Out`] with arena handles).
#[derive(Debug, Clone, Copy)]
pub struct Stage1Fwd {
    /// `1 × M` stage-1 (VM-selection) logits, unmasked.
    pub vm_logits: FVar,
    /// `N × d` final PM embeddings.
    pub pm_embs: FVar,
    /// `M × d` final VM embeddings.
    pub vm_embs: FVar,
    /// `M × N` stage-3 cross-attention probabilities from the last block.
    pub cross_probs: FVar,
    /// `1 × 1` critic value.
    pub value: FVar,
}

/// Output of the shared feature extraction + stage-1 heads.
#[derive(Debug, Clone, Copy)]
pub struct Stage1Out {
    /// `1 × M` stage-1 (VM-selection) logits, unmasked.
    pub vm_logits: Var,
    /// `N × d` final PM embeddings.
    pub pm_embs: Var,
    /// `M × d` final VM embeddings.
    pub vm_embs: Var,
    /// `M × N` stage-3 cross-attention probabilities from the last block.
    pub cross_probs: Var,
    /// `1 × 1` critic value.
    pub value: Var,
}

/// One sparse-attention block.
#[derive(Debug, Clone)]
pub struct SparseBlock {
    local: Option<MultiHeadAttention>,
    pm_self: MultiHeadAttention,
    vm_self: MultiHeadAttention,
    cross: MultiHeadAttention,
    pm_ff: FeedForward,
    vm_ff: FeedForward,
}

/// Block output: updated embeddings plus the cross-attention map.
#[derive(Debug, Clone, Copy)]
pub struct BlockOut {
    /// Updated `N × d` PM embeddings.
    pub pm: Var,
    /// Updated `M × d` VM embeddings.
    pub vm: Var,
    /// `M × N` cross-attention probabilities.
    pub cross_probs: Var,
}

impl SparseBlock {
    /// Builds one block; `use_local = false` gives the vanilla-transformer
    /// ablation (no tree stage).
    pub fn new(name: &str, cfg: &ModelConfig, use_local: bool, rng: &mut impl Rng) -> Self {
        SparseBlock {
            local: use_local.then(|| {
                MultiHeadAttention::new(format!("{name}.local"), cfg.d_model, cfg.heads, rng)
            }),
            pm_self: MultiHeadAttention::new(
                format!("{name}.pm_self"),
                cfg.d_model,
                cfg.heads,
                rng,
            ),
            vm_self: MultiHeadAttention::new(
                format!("{name}.vm_self"),
                cfg.d_model,
                cfg.heads,
                rng,
            ),
            cross: MultiHeadAttention::new(format!("{name}.cross"), cfg.d_model, cfg.heads, rng),
            pm_ff: FeedForward::new(format!("{name}.pm_ff"), cfg.d_model, cfg.d_ff, rng),
            vm_ff: FeedForward::new(format!("{name}.vm_ff"), cfg.d_model, cfg.d_ff, rng),
        }
    }

    /// Applies the block. `tree_mask` is required when the block has a
    /// local stage.
    pub fn forward(&self, g: &mut Graph, pm: Var, vm: Var, tree_mask: Option<&Tensor>) -> BlockOut {
        let n = g.value(pm).rows();
        let m = g.value(vm).rows();
        // Stage 1: sparse local attention over the combined sequence.
        let (pm_l, vm_l) = match (&self.local, tree_mask) {
            (Some(local), Some(mask)) => {
                let combined = g.vcat(pm, vm);
                let att = local.forward(g, combined, combined, Some(mask));
                let res = g.add(combined, att.out);
                let pm_idx: Vec<usize> = (0..n).collect();
                let vm_idx: Vec<usize> = (n..n + m).collect();
                (g.select_rows(res, &pm_idx), g.select_rows(res, &vm_idx))
            }
            _ => (pm, vm),
        };
        // Stage 2: self-attention within each entity class (+ residual).
        let pm_att = self.pm_self.forward(g, pm_l, pm_l, None);
        let pm_s = g.add(pm_l, pm_att.out);
        let vm_att = self.vm_self.forward(g, vm_l, vm_l, None);
        let vm_s = g.add(vm_l, vm_att.out);
        // Stage 3: VM embeddings attend to PM embeddings (+ residual).
        let cross = self.cross.forward(g, vm_s, pm_s, None);
        let vm_c = g.add(vm_s, cross.out);
        // Two dense layers + layer norm per entity.
        let pm_out = self.pm_ff.forward(g, pm_s);
        let vm_out = self.vm_ff.forward(g, vm_c);
        BlockOut { pm: pm_out, vm: vm_out, cross_probs: cross.probs }
    }

    /// Tape-free forward, bit-identical to [`SparseBlock::forward`] under
    /// the dense tree mask equivalent to `tree`. The local stage runs
    /// block-sparse per PM-tree — the `(N+M)²` score matrix and the mask
    /// are never materialized.
    pub fn fwd(
        &self,
        ctx: &mut FwdCtx,
        pm: FVar,
        vm: FVar,
        tree: Option<&TreeGroups>,
        want_cross_probs: bool,
    ) -> (FVar, FVar, Option<FVar>) {
        let n = ctx.value(pm).rows();
        let m = ctx.value(vm).rows();
        let (pm_l, vm_l) = match (&self.local, tree) {
            (Some(local), Some(tree)) => {
                let combined = ctx.vcat(pm, vm);
                let att = local.fwd_tree(ctx, combined, tree);
                let res = ctx.add(combined, att);
                (ctx.rows_range(res, 0, n), ctx.rows_range(res, n, m))
            }
            _ => (pm, vm),
        };
        let (pm_att, _) = self.pm_self.fwd(ctx, pm_l, pm_l, None, false);
        let pm_s = ctx.add(pm_l, pm_att);
        let (vm_att, _) = self.vm_self.fwd(ctx, vm_l, vm_l, None, false);
        let vm_s = ctx.add(vm_l, vm_att);
        let (cross_out, cross_probs) = self.cross.fwd(ctx, vm_s, pm_s, None, want_cross_probs);
        let vm_c = ctx.add(vm_s, cross_out);
        let pm_out = self.pm_ff.fwd(ctx, pm_s);
        let vm_out = self.vm_ff.fwd(ctx, vm_c);
        (pm_out, vm_out, cross_probs)
    }
}

impl Module for SparseBlock {
    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        if let Some(l) = &self.local {
            l.visit_params(f);
        }
        self.pm_self.visit_params(f);
        self.vm_self.visit_params(f);
        self.cross.visit_params(f);
        self.pm_ff.visit_params(f);
        self.vm_ff.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        if let Some(l) = &mut self.local {
            l.visit_params_mut(f);
        }
        self.pm_self.visit_params_mut(f);
        self.vm_self.visit_params_mut(f);
        self.cross.visit_params_mut(f);
        self.pm_ff.visit_params_mut(f);
        self.vm_ff.visit_params_mut(f);
    }
}

/// The stage-2 PM actor: an encoder-decoder where the encoder sees only
/// the selected VM and the decoder attends every PM to it, augmented with
/// the stage-3 attention score of the selected VM (§3.3).
#[derive(Debug, Clone)]
pub struct PmActor {
    enc: Linear,
    att: MultiHeadAttention,
    ff: FeedForward,
    out: Linear,
}

impl PmActor {
    fn new(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        PmActor {
            enc: Linear::new(format!("{name}.enc"), cfg.d_model, cfg.d_model, rng),
            att: MultiHeadAttention::new(format!("{name}.att"), cfg.d_model, cfg.heads, rng),
            ff: FeedForward::new(format!("{name}.ff"), cfg.d_model, cfg.d_ff, rng),
            out: Linear::new(format!("{name}.out"), cfg.d_model + 1, 1, rng),
        }
    }

    /// Produces `1 × N` destination logits (unmasked) for the selected VM.
    pub fn forward(
        &self,
        g: &mut Graph,
        pm_embs: Var,
        selected_vm_emb: Var,
        score_row: Var,
    ) -> Var {
        let enc = self.enc.forward(g, selected_vm_emb);
        let enc = g.relu(enc);
        let att = self.att.forward(g, pm_embs, enc, None);
        let dec = g.add(pm_embs, att.out);
        let dec = self.ff.forward(g, dec);
        // Inject the stage-3 attention scores as an extra feature column.
        let score_col = g.transpose(score_row);
        let with_score = g.hcat(dec, score_col);
        let logits = self.out.forward(g, with_score); // N × 1
        g.transpose(logits) // 1 × N
    }

    /// Tape-free forward (bit-identical to [`PmActor::forward`]; the row
    /// ↔ column transposes are pure reshapes in row-major layout).
    pub fn fwd(&self, ctx: &mut FwdCtx, pm_embs: FVar, selected: FVar, score_row: FVar) -> FVar {
        let n = ctx.value(pm_embs).rows();
        let enc = self.enc.fwd(ctx, selected);
        ctx.relu_assign(enc);
        let (att, _) = self.att.fwd(ctx, pm_embs, enc, None, false);
        let dec = ctx.add(pm_embs, att);
        let dec = self.ff.fwd(ctx, dec);
        let score_col = ctx.reshape(score_row, n, 1);
        let with_score = ctx.hcat(dec, score_col);
        let logits = self.out.fwd(ctx, with_score); // N × 1
        ctx.reshape(logits, 1, n)
    }
}

impl Module for PmActor {
    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.enc.visit_params(f);
        self.att.visit_params(f);
        self.ff.visit_params(f);
        self.out.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.enc.visit_params_mut(f);
        self.att.visit_params_mut(f);
        self.ff.visit_params_mut(f);
        self.out.visit_params_mut(f);
    }
}

/// The full VMR2L policy/value network.
#[derive(Debug, Clone)]
pub struct Vmr2lModel {
    /// Architecture configuration.
    pub cfg: ModelConfig,
    /// Which feature extractor variant this model uses.
    pub extractor: ExtractorKind,
    vm_embed: Mlp,
    pm_embed: Mlp,
    blocks: Vec<SparseBlock>,
    vm_head: Linear,
    /// Generic per-PM logit head (used by the Full-Mask ablation's joint
    /// action space).
    pm_head: Linear,
    pm_actor: PmActor,
    critic: Mlp,
}

impl Vmr2lModel {
    /// Builds the model. `extractor` must be `SparseAttention` or
    /// `VanillaAttention` (the MLP ablation is a separate type).
    pub fn new(cfg: ModelConfig, extractor: ExtractorKind, rng: &mut impl Rng) -> Self {
        assert!(extractor != ExtractorKind::Mlp, "use ablate::MlpPolicy for the MLP extractor");
        let use_local = extractor == ExtractorKind::SparseAttention;
        let d = cfg.d_model;
        Vmr2lModel {
            vm_embed: Mlp::new("vm_embed", &[VM_FEAT, d, d], false, rng),
            pm_embed: Mlp::new("pm_embed", &[PM_FEAT, d, d], false, rng),
            blocks: (0..cfg.blocks)
                .map(|i| SparseBlock::new(&format!("block{i}"), &cfg, use_local, rng))
                .collect(),
            vm_head: Linear::new("vm_head", d, 1, rng),
            pm_head: Linear::new("pm_head", d, 1, rng),
            pm_actor: PmActor::new("pm_actor", &cfg, rng),
            critic: Mlp::new("critic", &[2 * d, cfg.critic_hidden, 1], false, rng),
            cfg,
            extractor,
        }
    }

    /// Runs feature extraction and the stage-1 heads.
    pub fn stage1(&self, g: &mut Graph, feats: &FeatureTensors) -> Stage1Out {
        let pm_in = g.constant(feats.pm.clone());
        let vm_in = g.constant(feats.vm.clone());
        let mut pm = self.pm_embed.forward(g, pm_in);
        let mut vm = self.vm_embed.forward(g, vm_in);
        let tree_mask =
            (self.extractor == ExtractorKind::SparseAttention).then(|| feats.tree_mask());
        let mut cross_probs = None;
        for block in &self.blocks {
            let out = block.forward(g, pm, vm, tree_mask.as_ref());
            pm = out.pm;
            vm = out.vm;
            cross_probs = Some(out.cross_probs);
        }
        let vm_logits_col = self.vm_head.forward(g, vm); // M × 1
        let vm_logits = g.transpose(vm_logits_col); // 1 × M
        let pm_pool = g.mean_rows(pm);
        let vm_pool = g.mean_rows(vm);
        let pooled = g.hcat(pm_pool, vm_pool);
        let value = self.critic.forward(g, pooled);
        Stage1Out {
            vm_logits,
            pm_embs: pm,
            vm_embs: vm,
            cross_probs: cross_probs.expect("at least one block"),
            value,
        }
    }

    /// Runs the stage-2 PM actor for a selected VM, returning `1 × N`
    /// unmasked logits.
    pub fn stage2(&self, g: &mut Graph, s1: &Stage1Out, vm_idx: usize) -> Var {
        let selected = g.select_rows(s1.vm_embs, &[vm_idx]);
        let score_row = g.select_rows(s1.cross_probs, &[vm_idx]);
        self.pm_actor.forward(g, s1.pm_embs, selected, score_row)
    }

    /// Generic per-PM logits (`1 × N`) for the Full-Mask joint action
    /// space ablation.
    pub fn pm_logits_generic(&self, g: &mut Graph, s1: &Stage1Out) -> Var {
        let col = self.pm_head.forward(g, s1.pm_embs); // N × 1
        g.transpose(col)
    }

    // ---- tape-free inference path ------------------------------------

    /// Runs only the entity embedding networks (the first, purely
    /// row-wise GEMM chain of stage 1) on the tape-free engine.
    pub fn embed_fwd(&self, ctx: &mut FwdCtx, feats: &FeatureTensors) -> (FVar, FVar) {
        let pm_in = ctx.input(&feats.pm);
        let vm_in = ctx.input(&feats.vm);
        (self.pm_embed.fwd(ctx, pm_in), self.vm_embed.fwd(ctx, vm_in))
    }

    /// Batched embedding for concurrent requests over *different*
    /// clusters: the per-request PM (and VM) feature matrices are stacked
    /// row-wise and pushed through the shared embedding MLPs as **one**
    /// GEMM chain, then split back per request. Because every op in the
    /// chain is row-wise (matmul, bias add, ReLU), each returned slice is
    /// bit-identical to running [`Vmr2lModel::embed_fwd`] alone — batching
    /// can never change a served plan.
    pub fn embed_batch(&self, items: &[(&Tensor, &Tensor)]) -> Vec<(Tensor, Tensor)> {
        let mut ctx = FwdCtx::new();
        let total_pm: usize = items.iter().map(|(pm, _)| pm.rows()).sum();
        let total_vm: usize = items.iter().map(|(_, vm)| vm.rows()).sum();
        let pm_in = ctx.alloc(total_pm, PM_FEAT);
        let vm_in = ctx.alloc(total_vm, VM_FEAT);
        let (mut pr, mut vr) = (0, 0);
        for (pm, vm) in items {
            let d = ctx.value_mut(pm_in).data_mut();
            d[pr * PM_FEAT..pr * PM_FEAT + pm.len()].copy_from_slice(pm.data());
            pr += pm.rows();
            let d = ctx.value_mut(vm_in).data_mut();
            d[vr * VM_FEAT..vr * VM_FEAT + vm.len()].copy_from_slice(vm.data());
            vr += vm.rows();
        }
        let pm_emb = self.pm_embed.fwd(&mut ctx, pm_in);
        let vm_emb = self.vm_embed.fwd(&mut ctx, vm_in);
        let (mut pr, mut vr) = (0, 0);
        items
            .iter()
            .map(|(pm, vm)| {
                let p = ctx.value(pm_emb).select_rows(&(pr..pr + pm.rows()).collect::<Vec<_>>());
                let v = ctx.value(vm_emb).select_rows(&(vr..vr + vm.rows()).collect::<Vec<_>>());
                pr += pm.rows();
                vr += vm.rows();
                (p, v)
            })
            .collect()
    }

    /// Continues stage 1 from (possibly batch-computed) embeddings:
    /// attention blocks, stage-1 head, and critic. `tree` is required for
    /// the sparse extractor.
    pub fn stage1_from_embeds_fwd(
        &self,
        ctx: &mut FwdCtx,
        pm_emb: FVar,
        vm_emb: FVar,
        tree: Option<&TreeGroups>,
    ) -> Stage1Fwd {
        if self.extractor == ExtractorKind::SparseAttention {
            assert!(tree.is_some(), "sparse extractor needs the tree index");
        }
        let tree = (self.extractor == ExtractorKind::SparseAttention).then_some(tree).flatten();
        let mut pm = pm_emb;
        let mut vm = vm_emb;
        let mut cross_probs = None;
        for (i, block) in self.blocks.iter().enumerate() {
            // Only the last block's cross-attention probabilities are
            // consumed (stage-2 score injection); skip the averaging for
            // earlier blocks.
            let last = i + 1 == self.blocks.len();
            let (p, v, c) = block.fwd(ctx, pm, vm, tree, last);
            pm = p;
            vm = v;
            cross_probs = c.or(cross_probs);
        }
        let m = ctx.value(vm).rows();
        let vm_logits_col = self.vm_head.fwd(ctx, vm); // M × 1
        let vm_logits = ctx.reshape(vm_logits_col, 1, m);
        let pm_pool = ctx.mean_rows(pm);
        let vm_pool = ctx.mean_rows(vm);
        let pooled = ctx.hcat(pm_pool, vm_pool);
        let value = self.critic.fwd(ctx, pooled);
        Stage1Fwd {
            vm_logits,
            pm_embs: pm,
            vm_embs: vm,
            cross_probs: cross_probs.expect("at least one block"),
            value,
        }
    }

    /// Full tape-free stage 1 (bit-identical to [`Vmr2lModel::stage1`]).
    pub fn stage1_fwd(
        &self,
        ctx: &mut FwdCtx,
        feats: &FeatureTensors,
        tree: Option<&TreeGroups>,
    ) -> Stage1Fwd {
        let (pm_emb, vm_emb) = self.embed_fwd(ctx, feats);
        self.stage1_from_embeds_fwd(ctx, pm_emb, vm_emb, tree)
    }

    /// Tape-free stage 2 (bit-identical to [`Vmr2lModel::stage2`]).
    pub fn stage2_fwd(&self, ctx: &mut FwdCtx, s1: &Stage1Fwd, vm_idx: usize) -> FVar {
        let selected = ctx.select_row(s1.vm_embs, vm_idx);
        let score_row = ctx.select_row(s1.cross_probs, vm_idx);
        self.pm_actor.fwd(ctx, s1.pm_embs, selected, score_row)
    }

    /// Tape-free generic per-PM logits (Full-Mask joint action space).
    pub fn pm_logits_generic_fwd(&self, ctx: &mut FwdCtx, s1: &Stage1Fwd) -> FVar {
        let n = ctx.value(s1.pm_embs).rows();
        let col = self.pm_head.fwd(ctx, s1.pm_embs); // N × 1
        ctx.reshape(col, 1, n)
    }
}

// ---- f32 inference mirror --------------------------------------------

/// [`Stage1Fwd`] on the f32 arena.
#[derive(Debug, Clone, Copy)]
pub struct Stage1Fwd32 {
    /// `1 × M` stage-1 (VM-selection) logits, unmasked.
    pub vm_logits: FVar32,
    /// `N × d` final PM embeddings.
    pub pm_embs: FVar32,
    /// `M × d` final VM embeddings.
    pub vm_embs: FVar32,
    /// `M × N` stage-3 cross-attention probabilities from the last block.
    pub cross_probs: FVar32,
    /// `1 × 1` critic value.
    pub value: FVar32,
}

/// f32 mirror of [`SparseBlock`].
#[derive(Debug, Clone)]
struct SparseBlock32 {
    local: Option<MultiHeadAttention32>,
    pm_self: MultiHeadAttention32,
    vm_self: MultiHeadAttention32,
    cross: MultiHeadAttention32,
    pm_ff: FeedForward32,
    vm_ff: FeedForward32,
}

impl SparseBlock32 {
    fn from_f64(b: &SparseBlock) -> Self {
        SparseBlock32 {
            local: b.local.as_ref().map(MultiHeadAttention32::from_f64),
            pm_self: MultiHeadAttention32::from_f64(&b.pm_self),
            vm_self: MultiHeadAttention32::from_f64(&b.vm_self),
            cross: MultiHeadAttention32::from_f64(&b.cross),
            pm_ff: FeedForward32::from_f64(&b.pm_ff),
            vm_ff: FeedForward32::from_f64(&b.vm_ff),
        }
    }

    /// f32 forward mirroring [`SparseBlock::fwd`] stage for stage.
    fn fwd(
        &self,
        ctx: &mut FwdCtx32,
        pm: FVar32,
        vm: FVar32,
        tree: Option<&TreeGroups>,
        want_cross_probs: bool,
    ) -> (FVar32, FVar32, Option<FVar32>) {
        let n = ctx.value(pm).rows();
        let m = ctx.value(vm).rows();
        let (pm_l, vm_l) = match (&self.local, tree) {
            (Some(local), Some(tree)) => {
                let combined = ctx.vcat(pm, vm);
                let att = local.fwd_tree(ctx, combined, tree);
                let res = ctx.add(combined, att);
                (ctx.rows_range(res, 0, n), ctx.rows_range(res, n, m))
            }
            _ => (pm, vm),
        };
        let (pm_att, _) = self.pm_self.fwd(ctx, pm_l, pm_l, None, false);
        let pm_s = ctx.add(pm_l, pm_att);
        let (vm_att, _) = self.vm_self.fwd(ctx, vm_l, vm_l, None, false);
        let vm_s = ctx.add(vm_l, vm_att);
        let (cross_out, cross_probs) = self.cross.fwd(ctx, vm_s, pm_s, None, want_cross_probs);
        let vm_c = ctx.add(vm_s, cross_out);
        let pm_out = self.pm_ff.fwd(ctx, pm_s);
        let vm_out = self.vm_ff.fwd(ctx, vm_c);
        (pm_out, vm_out, cross_probs)
    }
}

/// f32 mirror of [`PmActor`].
#[derive(Debug, Clone)]
struct PmActor32 {
    enc: Linear32,
    att: MultiHeadAttention32,
    ff: FeedForward32,
    out: Linear32,
}

impl PmActor32 {
    fn from_f64(a: &PmActor) -> Self {
        PmActor32 {
            enc: Linear32::from_f64(&a.enc),
            att: MultiHeadAttention32::from_f64(&a.att),
            ff: FeedForward32::from_f64(&a.ff),
            out: Linear32::from_f64(&a.out),
        }
    }

    fn fwd(
        &self,
        ctx: &mut FwdCtx32,
        pm_embs: FVar32,
        selected: FVar32,
        score_row: FVar32,
    ) -> FVar32 {
        let n = ctx.value(pm_embs).rows();
        let enc = self.enc.fwd(ctx, selected);
        ctx.relu_assign(enc);
        let (att, _) = self.att.fwd(ctx, pm_embs, enc, None, false);
        let dec = ctx.add(pm_embs, att);
        let dec = self.ff.fwd(ctx, dec);
        let score_col = ctx.reshape(score_row, n, 1);
        let with_score = ctx.hcat(dec, score_col);
        let logits = self.out.fwd(ctx, with_score); // N × 1
        ctx.reshape(logits, 1, n)
    }
}

/// Weight-cast-once f32 build of a trained [`Vmr2lModel`] — the
/// inference fast path ([`crate::config::PrecisionConfig::Fast32`]).
///
/// Constructed from the f64 model exactly once (checkpoint load /
/// `SharedAgent` construction); every forward thereafter runs f32
/// weights through the [`vmr_nn::kernels_f32`] kernels on a
/// [`FwdCtx32`] arena. Decisions are tolerance-equivalent to the f64
/// path (see `tests/integration_precision.rs`), not bit-identical.
#[derive(Debug, Clone)]
pub struct Vmr2lModelF32 {
    /// Architecture configuration (copied from the source model).
    pub cfg: ModelConfig,
    /// Which feature extractor variant this model uses.
    pub extractor: ExtractorKind,
    vm_embed: Mlp32,
    pm_embed: Mlp32,
    blocks: Vec<SparseBlock32>,
    vm_head: Linear32,
    pm_head: Linear32,
    pm_actor: PmActor32,
    critic: Mlp32,
}

impl Vmr2lModelF32 {
    /// Casts a trained f64 model down, weight by weight.
    pub fn from_f64(m: &Vmr2lModel) -> Self {
        Vmr2lModelF32 {
            cfg: m.cfg,
            extractor: m.extractor,
            vm_embed: Mlp32::from_f64(&m.vm_embed),
            pm_embed: Mlp32::from_f64(&m.pm_embed),
            blocks: m.blocks.iter().map(SparseBlock32::from_f64).collect(),
            vm_head: Linear32::from_f64(&m.vm_head),
            pm_head: Linear32::from_f64(&m.pm_head),
            pm_actor: PmActor32::from_f64(&m.pm_actor),
            critic: Mlp32::from_f64(&m.critic),
        }
    }

    /// Runs only the entity embedding networks (f32 mirror of
    /// [`Vmr2lModel::embed_fwd`]). Features are cast down at the arena
    /// boundary.
    pub fn embed_fwd(&self, ctx: &mut FwdCtx32, feats: &FeatureTensors) -> (FVar32, FVar32) {
        let pm_in = ctx.input(&feats.pm);
        let vm_in = ctx.input(&feats.vm);
        (self.pm_embed.fwd(ctx, pm_in), self.vm_embed.fwd(ctx, vm_in))
    }

    /// Batched f32 embedding over stacked per-request feature matrices
    /// (mirror of [`Vmr2lModel::embed_batch`]; the row-wise-op argument
    /// for batching carries over unchanged — in f32 each returned slice
    /// still exactly equals the unbatched f32 forward).
    pub fn embed_batch(&self, items: &[(&Tensor, &Tensor)]) -> Vec<(Tensor32, Tensor32)> {
        let mut ctx = FwdCtx32::new();
        let total_pm: usize = items.iter().map(|(pm, _)| pm.rows()).sum();
        let total_vm: usize = items.iter().map(|(_, vm)| vm.rows()).sum();
        let pm_in = ctx.alloc(total_pm, PM_FEAT);
        let vm_in = ctx.alloc(total_vm, VM_FEAT);
        let (mut pr, mut vr) = (0, 0);
        for (pm, vm) in items {
            let d = ctx.value_mut(pm_in).data_mut();
            for (dst, &src) in d[pr * PM_FEAT..pr * PM_FEAT + pm.len()].iter_mut().zip(pm.data()) {
                // vmr-analyze: allow(F001) reason="cast-once staging of f64 features into the f32 tier's input buffer"
                *dst = src as f32;
            }
            pr += pm.rows();
            let d = ctx.value_mut(vm_in).data_mut();
            for (dst, &src) in d[vr * VM_FEAT..vr * VM_FEAT + vm.len()].iter_mut().zip(vm.data()) {
                // vmr-analyze: allow(F001) reason="cast-once staging of f64 features into the f32 tier's input buffer"
                *dst = src as f32;
            }
            vr += vm.rows();
        }
        let pm_emb = self.pm_embed.fwd(&mut ctx, pm_in);
        let vm_emb = self.vm_embed.fwd(&mut ctx, vm_in);
        let (mut pr, mut vr) = (0, 0);
        items
            .iter()
            .map(|(pm, vm)| {
                let pe = ctx.value(pm_emb);
                let d = pe.cols();
                let p = Tensor32::from_vec(
                    pm.rows(),
                    d,
                    pe.data()[pr * d..(pr + pm.rows()) * d].to_vec(),
                );
                let ve = ctx.value(vm_emb);
                let v = Tensor32::from_vec(
                    vm.rows(),
                    d,
                    ve.data()[vr * d..(vr + vm.rows()) * d].to_vec(),
                );
                pr += pm.rows();
                vr += vm.rows();
                (p, v)
            })
            .collect()
    }

    /// Continues stage 1 from (possibly batch-computed) f32 embeddings
    /// (mirror of [`Vmr2lModel::stage1_from_embeds_fwd`]).
    pub fn stage1_from_embeds_fwd(
        &self,
        ctx: &mut FwdCtx32,
        pm_emb: FVar32,
        vm_emb: FVar32,
        tree: Option<&TreeGroups>,
    ) -> Stage1Fwd32 {
        if self.extractor == ExtractorKind::SparseAttention {
            assert!(tree.is_some(), "sparse extractor needs the tree index");
        }
        let tree = (self.extractor == ExtractorKind::SparseAttention).then_some(tree).flatten();
        let mut pm = pm_emb;
        let mut vm = vm_emb;
        let mut cross_probs = None;
        for (i, block) in self.blocks.iter().enumerate() {
            let last = i + 1 == self.blocks.len();
            let (p, v, c) = block.fwd(ctx, pm, vm, tree, last);
            pm = p;
            vm = v;
            cross_probs = c.or(cross_probs);
        }
        let m = ctx.value(vm).rows();
        let vm_logits_col = self.vm_head.fwd(ctx, vm); // M × 1
        let vm_logits = ctx.reshape(vm_logits_col, 1, m);
        let pm_pool = ctx.mean_rows(pm);
        let vm_pool = ctx.mean_rows(vm);
        let pooled = ctx.hcat(pm_pool, vm_pool);
        let value = self.critic.fwd(ctx, pooled);
        Stage1Fwd32 {
            vm_logits,
            pm_embs: pm,
            vm_embs: vm,
            cross_probs: cross_probs.expect("at least one block"),
            value,
        }
    }

    /// Full f32 stage 1 (mirror of [`Vmr2lModel::stage1_fwd`]).
    pub fn stage1_fwd(
        &self,
        ctx: &mut FwdCtx32,
        feats: &FeatureTensors,
        tree: Option<&TreeGroups>,
    ) -> Stage1Fwd32 {
        let (pm_emb, vm_emb) = self.embed_fwd(ctx, feats);
        self.stage1_from_embeds_fwd(ctx, pm_emb, vm_emb, tree)
    }

    /// f32 stage 2 (mirror of [`Vmr2lModel::stage2_fwd`]).
    pub fn stage2_fwd(&self, ctx: &mut FwdCtx32, s1: &Stage1Fwd32, vm_idx: usize) -> FVar32 {
        let selected = ctx.select_row(s1.vm_embs, vm_idx);
        let score_row = ctx.select_row(s1.cross_probs, vm_idx);
        self.pm_actor.fwd(ctx, s1.pm_embs, selected, score_row)
    }

    /// f32 generic per-PM logits (Full-Mask joint action space).
    pub fn pm_logits_generic_fwd(&self, ctx: &mut FwdCtx32, s1: &Stage1Fwd32) -> FVar32 {
        let n = ctx.value(s1.pm_embs).rows();
        let col = self.pm_head.fwd(ctx, s1.pm_embs); // N × 1
        ctx.reshape(col, 1, n)
    }
}

impl Module for Vmr2lModel {
    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.vm_embed.visit_params(f);
        self.pm_embed.visit_params(f);
        for b in &self.blocks {
            b.visit_params(f);
        }
        self.vm_head.visit_params(f);
        self.pm_head.visit_params(f);
        self.pm_actor.visit_params(f);
        self.critic.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.vm_embed.visit_params_mut(f);
        self.pm_embed.visit_params_mut(f);
        for b in &mut self.blocks {
            b.visit_params_mut(f);
        }
        self.vm_head.visit_params_mut(f);
        self.pm_head.visit_params_mut(f);
        self.pm_actor.visit_params_mut(f);
        self.critic.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};
    use vmr_sim::obs::Observation;

    fn feats(seed: u64) -> FeatureTensors {
        let state = generate_mapping(&ClusterConfig::tiny(), seed).unwrap();
        let obs = Observation::extract(&state, 16);
        FeatureTensors::from_observation(&obs)
    }

    fn model(kind: ExtractorKind) -> Vmr2lModel {
        let mut rng = StdRng::seed_from_u64(0);
        Vmr2lModel::new(
            ModelConfig { d_model: 16, heads: 2, blocks: 2, d_ff: 32, critic_hidden: 16 },
            kind,
            &mut rng,
        )
    }

    #[test]
    fn stage1_shapes() {
        let m = model(ExtractorKind::SparseAttention);
        let f = feats(1);
        let mut g = Graph::new();
        let s1 = m.stage1(&mut g, &f);
        assert_eq!(g.value(s1.vm_logits).rows(), 1);
        assert_eq!(g.value(s1.vm_logits).cols(), f.num_vms);
        assert_eq!(g.value(s1.pm_embs).rows(), f.num_pms);
        assert_eq!(g.value(s1.vm_embs).rows(), f.num_vms);
        assert_eq!(
            (g.value(s1.cross_probs).rows(), g.value(s1.cross_probs).cols()),
            (f.num_vms, f.num_pms)
        );
        assert_eq!((g.value(s1.value).rows(), g.value(s1.value).cols()), (1, 1));
    }

    #[test]
    fn stage2_shapes() {
        let m = model(ExtractorKind::SparseAttention);
        let f = feats(2);
        let mut g = Graph::new();
        let s1 = m.stage1(&mut g, &f);
        let logits = m.stage2(&mut g, &s1, 0);
        assert_eq!(g.value(logits).rows(), 1);
        assert_eq!(g.value(logits).cols(), f.num_pms);
        let generic = m.pm_logits_generic(&mut g, &s1);
        assert_eq!(g.value(generic).cols(), f.num_pms);
    }

    #[test]
    fn param_count_independent_of_cluster_size() {
        // Same weights serve both a tiny and a bigger cluster.
        let m = model(ExtractorKind::SparseAttention);
        let count = m.num_params();
        let f_small = feats(3);
        let bigger = generate_mapping(
            &ClusterConfig {
                pm_groups: vec![vmr_sim::dataset::PmGroup {
                    count: 12,
                    cpu_per_numa: 44,
                    mem_per_numa: 128,
                }],
                ..ClusterConfig::tiny()
            },
            3,
        )
        .unwrap();
        let f_big = FeatureTensors::from_observation(&Observation::extract(&bigger, 16));
        let mut g = Graph::new();
        let _ = m.stage1(&mut g, &f_small);
        let _ = m.stage1(&mut g, &f_big);
        assert_eq!(m.num_params(), count, "params must not depend on input size");
        assert!(count < 100_000, "model should be small (paper: <2MB ckpt)");
    }

    #[test]
    fn vanilla_has_fewer_params_than_sparse() {
        let sparse = model(ExtractorKind::SparseAttention);
        let vanilla = model(ExtractorKind::VanillaAttention);
        assert!(vanilla.num_params() < sparse.num_params());
    }

    #[test]
    fn gradients_reach_embedding_networks() {
        let m = model(ExtractorKind::SparseAttention);
        let f = feats(4);
        let mut g = Graph::new();
        let s1 = m.stage1(&mut g, &f);
        let logits2 = m.stage2(&mut g, &s1, 1);
        let joined = g.hcat(s1.vm_logits, logits2);
        let sq = g.square(joined);
        let partial = g.mean_all(sq);
        let vsq = g.square(s1.value);
        let loss = g.add(partial, vsq);
        g.backward(loss);
        let grads = g.param_grads();
        for name in [
            "vm_embed.l0.w",
            "pm_embed.l0.w",
            "vm_head.w",
            "pm_actor.out.w",
            "critic.l0.w",
            "block0.local.wq.w",
        ] {
            let gr = grads.get(name).unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(gr.norm() > 0.0, "zero grad for {name}");
        }
    }

    #[test]
    fn f32_stage1_tracks_f64_within_tolerance() {
        use crate::features::TreeIndex;
        let m = model(ExtractorKind::SparseAttention);
        let m32 = Vmr2lModelF32::from_f64(&m);
        let f = feats(6);
        let mut tree = TreeIndex::default();
        tree.rebuild(&f);

        let mut ctx = FwdCtx::new();
        let s64 = m.stage1_fwd(&mut ctx, &f, Some(&tree.groups));
        let mut ctx32 = FwdCtx32::new();
        let s32 = m32.stage1_fwd(&mut ctx32, &f, Some(&tree.groups));

        let l64 = ctx.value(s64.vm_logits).data();
        let l32 = ctx32.value(s32.vm_logits).data();
        assert_eq!(l64.len(), l32.len());
        for (a, &b) in l32.iter().zip(l64) {
            assert!((f64::from(*a) - b).abs() < 1e-3, "vm logit f32 {a} vs f64 {b}");
        }
        let v64 = ctx.value(s64.value).get(0, 0);
        let v32 = ctx32.value(s32.value).get(0, 0);
        assert!((f64::from(v32) - v64).abs() < 1e-3, "value f32 {v32} vs f64 {v64}");
    }

    #[test]
    fn f32_embed_batch_matches_solo_embed() {
        let m = model(ExtractorKind::SparseAttention);
        let m32 = Vmr2lModelF32::from_f64(&m);
        let f1 = feats(7);
        let f2 = feats(8);
        let batched = m32.embed_batch(&[(&f1.pm, &f1.vm), (&f2.pm, &f2.vm)]);
        for (f, (bp, bv)) in [&f1, &f2].into_iter().zip(&batched) {
            let mut ctx = FwdCtx32::new();
            let (pe, ve) = m32.embed_fwd(&mut ctx, f);
            assert_eq!(ctx.value(pe).data(), bp.data(), "batched PM embedding must match solo");
            assert_eq!(ctx.value(ve).data(), bv.data(), "batched VM embedding must match solo");
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let m = model(ExtractorKind::SparseAttention);
        let f = feats(5);
        let run = || {
            let mut g = Graph::new();
            let s1 = m.stage1(&mut g, &f);
            g.value(s1.vm_logits).data().to_vec()
        };
        assert_eq!(run(), run());
    }
}
