//! Risk-seeking evaluation (§3.4): exploit the deterministic simulator by
//! sampling many trajectories from the stochastic policy and deploying
//! only the best one, with quantile action-thresholding to keep sampled
//! trajectories away from low-probability (likely sub-optimal) actions.
//!
//! Trajectories are embarrassingly parallel; with `parallel = true` they
//! are spread over OS threads via `std::thread::scope` — the CPU
//! analogue of the paper's multi-GPU generation.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::env::{Action, ReschedEnv};
use vmr_sim::error::SimResult;
use vmr_sim::objective::Objective;

use crate::agent::{rollout_episode, rollout_episode_f32, DecideOpts, Policy, Vmr2lAgent};
use crate::model::{Vmr2lModel, Vmr2lModelF32};

/// Risk-seeking evaluation configuration.
#[derive(Debug, Clone, Copy)]
pub struct RiskSeekingConfig {
    /// Number of trajectories to sample.
    pub trajectories: usize,
    /// Quantile threshold over VM probabilities (`None` = no threshold).
    pub vm_quantile: Option<f64>,
    /// Quantile threshold over PM probabilities.
    pub pm_quantile: Option<f64>,
    /// Parallelize across threads.
    pub parallel: bool,
    /// Number of worker threads when parallel.
    pub threads: usize,
    /// Base RNG seed (trajectory `t` uses `seed + t`).
    pub seed: u64,
}

impl Default for RiskSeekingConfig {
    fn default() -> Self {
        RiskSeekingConfig {
            trajectories: 16,
            vm_quantile: Some(0.98),
            pm_quantile: Some(0.95),
            parallel: true,
            threads: 4,
            seed: 0,
        }
    }
}

/// Outcome of a risk-seeking evaluation.
#[derive(Debug, Clone)]
pub struct RiskSeekingOutcome {
    /// Objective of the best trajectory.
    pub best_objective: f64,
    /// Plan of the best trajectory.
    pub best_plan: Vec<Action>,
    /// Final objectives of all sampled trajectories.
    pub all_objectives: Vec<f64>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Samples `cfg.trajectories` episodes and returns the best.
pub fn risk_seeking_eval<P: Policy + Sync>(
    agent: &Vmr2lAgent<P>,
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &RiskSeekingConfig,
) -> SimResult<RiskSeekingOutcome> {
    let start = Instant::now();
    let opts =
        DecideOpts { greedy: false, vm_quantile: cfg.vm_quantile, pm_quantile: cfg.pm_quantile };
    let run_one = |t: usize| -> SimResult<(f64, Vec<Action>)> {
        let mut env = ReschedEnv::new(initial.clone(), constraints.clone(), objective, mnl)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(t as u64));
        rollout_episode(agent, &mut env, &mut rng, &opts)
    };

    type TrajResult = SimResult<(f64, Vec<Action>)>;
    let results: Vec<TrajResult> = if cfg.parallel && cfg.trajectories > 1 {
        let threads = cfg.threads.clamp(1, cfg.trajectories);
        let mut slots: Vec<Option<TrajResult>> = (0..cfg.trajectories).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (worker, chunk) in slots.chunks_mut(cfg.trajectories.div_ceil(threads)).enumerate()
            {
                let base = worker * cfg.trajectories.div_ceil(threads);
                let run_one = &run_one;
                scope.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(run_one(base + off));
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.expect("all slots filled")).collect()
    } else {
        (0..cfg.trajectories).map(run_one).collect()
    };

    let mut best: Option<(f64, Vec<Action>)> = None;
    let mut all = Vec::with_capacity(results.len());
    for r in results {
        let (obj, plan) = r?;
        all.push(obj);
        if best.as_ref().is_none_or(|(b, _)| obj < *b) {
            best = Some((obj, plan));
        }
    }
    let (best_objective, best_plan) = best.expect("at least one trajectory");
    Ok(RiskSeekingOutcome {
        best_objective,
        best_plan,
        all_objectives: all,
        elapsed: start.elapsed(),
    })
}

/// [`risk_seeking_eval`] on the f32 fast path. Same trajectory seeding
/// and threading structure; forwards run on the pre-cast
/// [`Vmr2lModelF32`], so trajectories are tolerance-equivalent (not
/// bit-identical) to the f64 run.
pub fn risk_seeking_eval_f32(
    agent: &Vmr2lAgent<Vmr2lModel>,
    m32: &Vmr2lModelF32,
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &RiskSeekingConfig,
) -> SimResult<RiskSeekingOutcome> {
    let start = Instant::now();
    let opts =
        DecideOpts { greedy: false, vm_quantile: cfg.vm_quantile, pm_quantile: cfg.pm_quantile };
    let run_one = |t: usize| -> SimResult<(f64, Vec<Action>)> {
        let mut env = ReschedEnv::new(initial.clone(), constraints.clone(), objective, mnl)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(t as u64));
        rollout_episode_f32(agent, m32, &mut env, &mut rng, &opts)
    };

    type TrajResult = SimResult<(f64, Vec<Action>)>;
    let results: Vec<TrajResult> = if cfg.parallel && cfg.trajectories > 1 {
        let threads = cfg.threads.clamp(1, cfg.trajectories);
        let mut slots: Vec<Option<TrajResult>> = (0..cfg.trajectories).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (worker, chunk) in slots.chunks_mut(cfg.trajectories.div_ceil(threads)).enumerate()
            {
                let base = worker * cfg.trajectories.div_ceil(threads);
                let run_one = &run_one;
                scope.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(run_one(base + off));
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.expect("all slots filled")).collect()
    } else {
        (0..cfg.trajectories).map(run_one).collect()
    };

    let mut best: Option<(f64, Vec<Action>)> = None;
    let mut all = Vec::with_capacity(results.len());
    for r in results {
        let (obj, plan) = r?;
        all.push(obj);
        if best.as_ref().is_none_or(|(b, _)| obj < *b) {
            best = Some((obj, plan));
        }
    }
    let (best_objective, best_plan) = best.expect("at least one trajectory");
    Ok(RiskSeekingOutcome {
        best_objective,
        best_plan,
        all_objectives: all,
        elapsed: start.elapsed(),
    })
}

/// Greedy (argmax) single-trajectory evaluation.
pub fn greedy_eval<P: Policy>(
    agent: &Vmr2lAgent<P>,
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
) -> SimResult<(f64, Vec<Action>)> {
    let mut env = ReschedEnv::new(initial.clone(), constraints.clone(), objective, mnl)?;
    let mut rng = StdRng::seed_from_u64(0);
    rollout_episode(agent, &mut env, &mut rng, &DecideOpts { greedy: true, ..Default::default() })
}

/// [`greedy_eval`] on the f32 fast path.
pub fn greedy_eval_f32(
    agent: &Vmr2lAgent<Vmr2lModel>,
    m32: &Vmr2lModelF32,
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
) -> SimResult<(f64, Vec<Action>)> {
    let mut env = ReschedEnv::new(initial.clone(), constraints.clone(), objective, mnl)?;
    let mut rng = StdRng::seed_from_u64(0);
    let opts = DecideOpts { greedy: true, ..Default::default() };
    rollout_episode_f32(agent, m32, &mut env, &mut rng, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Vmr2lAgent;
    use crate::config::{ActionMode, ExtractorKind, ModelConfig};
    use crate::model::Vmr2lModel;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};

    fn setup() -> (Vmr2lAgent<Vmr2lModel>, ClusterState, ConstraintSet) {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ModelConfig { d_model: 16, heads: 2, blocks: 1, d_ff: 24, critic_hidden: 12 };
        let agent = Vmr2lAgent::new(
            Vmr2lModel::new(cfg, ExtractorKind::SparseAttention, &mut rng),
            ActionMode::TwoStage,
        );
        let state = generate_mapping(&ClusterConfig::tiny(), 23).unwrap();
        let cs = ConstraintSet::new(state.num_vms());
        (agent, state, cs)
    }

    #[test]
    fn best_is_min_of_all() {
        let (agent, state, cs) = setup();
        let cfg = RiskSeekingConfig {
            trajectories: 6,
            parallel: false,
            vm_quantile: None,
            pm_quantile: None,
            ..Default::default()
        };
        let out = risk_seeking_eval(&agent, &state, &cs, Objective::default(), 3, &cfg).unwrap();
        assert_eq!(out.all_objectives.len(), 6);
        let min = out.all_objectives.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((out.best_objective - min).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let (agent, state, cs) = setup();
        let base = RiskSeekingConfig {
            trajectories: 4,
            vm_quantile: None,
            pm_quantile: None,
            seed: 9,
            ..Default::default()
        };
        let serial = risk_seeking_eval(
            &agent,
            &state,
            &cs,
            Objective::default(),
            3,
            &RiskSeekingConfig { parallel: false, ..base },
        )
        .unwrap();
        let parallel = risk_seeking_eval(
            &agent,
            &state,
            &cs,
            Objective::default(),
            3,
            &RiskSeekingConfig { parallel: true, threads: 2, ..base },
        )
        .unwrap();
        assert_eq!(
            serial.all_objectives, parallel.all_objectives,
            "same seeds must give identical trajectories regardless of threading"
        );
    }

    #[test]
    fn more_trajectories_never_hurt() {
        let (agent, state, cs) = setup();
        let mk = |t: usize| RiskSeekingConfig {
            trajectories: t,
            parallel: false,
            vm_quantile: None,
            pm_quantile: None,
            seed: 4,
            ..Default::default()
        };
        let few = risk_seeking_eval(&agent, &state, &cs, Objective::default(), 3, &mk(2)).unwrap();
        let many = risk_seeking_eval(&agent, &state, &cs, Objective::default(), 3, &mk(8)).unwrap();
        // Trajectory t uses seed+t, so the first 2 of `many` equal `few`.
        assert!(many.best_objective <= few.best_objective + 1e-12);
    }

    #[test]
    fn f32_eval_tracks_f64_eval() {
        let (agent, state, cs) = setup();
        let m32 = Vmr2lModelF32::from_f64(&agent.policy);
        let (obj64, plan64) = greedy_eval(&agent, &state, &cs, Objective::default(), 3).unwrap();
        let (obj32, plan32) =
            greedy_eval_f32(&agent, &m32, &state, &cs, Objective::default(), 3).unwrap();
        assert_eq!(plan64, plan32, "greedy plans diverged between precisions");
        assert!((obj64 - obj32).abs() < 1e-12);

        let cfg = RiskSeekingConfig {
            trajectories: 4,
            parallel: true,
            threads: 2,
            vm_quantile: None,
            pm_quantile: None,
            seed: 31,
        };
        let out = risk_seeking_eval_f32(&agent, &m32, &state, &cs, Objective::default(), 3, &cfg)
            .unwrap();
        assert_eq!(out.all_objectives.len(), 4);
        let min = out.all_objectives.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((out.best_objective - min).abs() < 1e-12);
    }

    #[test]
    fn greedy_eval_returns_plan_and_objective() {
        let (agent, state, cs) = setup();
        let (obj, plan) = greedy_eval(&agent, &state, &cs, Objective::default(), 3).unwrap();
        assert!((0.0..=1.0).contains(&obj));
        assert!(plan.len() <= 3);
        // Replay the plan: objectives must agree.
        let mut replay = state.clone();
        for a in &plan {
            replay.migrate(a.vm, a.pm, 16).unwrap();
        }
        assert!((replay.fragment_rate(16) - obj).abs() < 1e-12);
    }
}
