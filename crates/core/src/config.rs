//! Model and agent configuration.

use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of the VMR2L model.
///
/// Parameter count is independent of the number of VMs and PMs — the
/// paper's key scalability property — because all weights are shared
/// across entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Embedding width.
    pub d_model: usize,
    /// Attention heads (`d_model % heads == 0`).
    pub heads: usize,
    /// Number of sparse-attention blocks.
    pub blocks: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Critic MLP hidden width.
    pub critic_hidden: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // Scaled for CPU training (see DESIGN.md substitutions); the paper
        // trains larger dims on GPU but the architecture is identical.
        ModelConfig { d_model: 24, heads: 2, blocks: 2, d_ff: 48, critic_hidden: 32 }
    }
}

/// How actions are generated — the paper's two-stage framework and its
/// §5.4 ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionMode {
    /// Stage 1 picks the VM, stage 2 masks illegal PMs and picks the
    /// destination (the paper's contribution).
    TwoStage,
    /// Two-stage networks but *no* stage-2 legality mask; illegal actions
    /// reach the environment and are punished with a −5 reward
    /// ("Penalty" in Fig. 13).
    Penalty,
    /// Joint `M × N` action space with illegal pairs zeroed
    /// ("Full-Mask" in Fig. 13).
    FullMask,
}

/// Feature-extractor variants for the §5.3 ablation (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// Sparse tree-attention (the paper's contribution).
    SparseAttention,
    /// Vanilla transformer without the tree-local stage.
    VanillaAttention,
    /// Flat MLP over concatenated features (parameters scale with cluster
    /// size; fails to converge in the paper).
    Mlp,
}

/// Numeric precision of the inference forward pass.
///
/// Training always runs the f64 engines (autodiff gradients need the
/// headroom, and the `Graph`/`FwdCtx` bit-identity contract is part of
/// the PPO correctness story). Acting, evaluation, and serving may drop
/// to the f32 fast path, whose equivalence with `Exact64` is a
/// *tolerance* contract — per-kernel ULP bounds plus an end-to-end plan
/// equivalence gate — rather than bit-identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrecisionConfig {
    /// f64 everywhere; acting is bit-identical to the training engines.
    #[default]
    Exact64,
    /// f32 weights and activations on the SIMD-friendly kernel twins;
    /// decisions are tolerance-equivalent, not bit-identical.
    Fast32,
}

impl PrecisionConfig {
    /// Parses the CLI / wire spelling (`"f64"` / `"f32"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f64" | "exact64" => Some(PrecisionConfig::Exact64),
            "f32" | "fast32" => Some(PrecisionConfig::Fast32),
            _ => None,
        }
    }

    /// The canonical CLI / wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PrecisionConfig::Exact64 => "f64",
            PrecisionConfig::Fast32 => "f32",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = ModelConfig::default();
        assert_eq!(c.d_model % c.heads, 0);
        assert!(c.blocks >= 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ModelConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        let m = ActionMode::TwoStage;
        let j = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<ActionMode>(&j).unwrap(), m);
        let p = PrecisionConfig::Fast32;
        let j = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<PrecisionConfig>(&j).unwrap(), p);
    }

    #[test]
    fn precision_spellings_roundtrip() {
        for p in [PrecisionConfig::Exact64, PrecisionConfig::Fast32] {
            assert_eq!(PrecisionConfig::parse(p.as_str()), Some(p));
        }
        assert_eq!(PrecisionConfig::default(), PrecisionConfig::Exact64);
        assert_eq!(PrecisionConfig::parse("f16"), None);
    }
}
