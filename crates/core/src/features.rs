//! Bridging simulator observations into model tensors and masks.
//!
//! The tree structure (which VMs live on which PM) becomes the additive
//! attention mask of the sparse local-attention stage: entity order is
//! `[PM_0 … PM_{N−1}, VM_0 … VM_{M−1}]`, and positions attend to each
//! other iff they belong to the same PM-tree (the PM is the root, its
//! hosted VMs the leaves; every entity also attends to itself).

use vmr_nn::graph::MASK_OFF;
use vmr_nn::infer::TreeGroups;
use vmr_nn::tensor::Tensor;
use vmr_sim::obs::{Observation, PM_FEAT, VM_FEAT};

/// Tensors and metadata for one state.
#[derive(Debug, Clone)]
pub struct FeatureTensors {
    /// `N × PM_FEAT` PM features.
    pub pm: Tensor,
    /// `M × VM_FEAT` VM features.
    pub vm: Tensor,
    /// Host PM index of each VM.
    pub vm_src_pm: Vec<u32>,
    /// Number of PMs.
    pub num_pms: usize,
    /// Number of VMs.
    pub num_vms: usize,
}

impl Default for FeatureTensors {
    fn default() -> Self {
        Self::empty()
    }
}

impl FeatureTensors {
    /// An empty instance, ready to be filled by
    /// [`FeatureTensors::refill_from`] (the zero-allocation path).
    pub fn empty() -> Self {
        FeatureTensors {
            pm: Tensor::zeros(0, PM_FEAT),
            vm: Tensor::zeros(0, VM_FEAT),
            vm_src_pm: Vec::new(),
            num_pms: 0,
            num_vms: 0,
        }
    }

    /// Converts a simulator observation (f32) into model tensors (f64).
    pub fn from_observation(obs: &Observation) -> Self {
        let mut out = Self::empty();
        out.refill_from(obs);
        out
    }

    /// Overwrites this instance from an observation, reusing the existing
    /// buffers — no allocation once the buffers have grown to the cluster
    /// size. This is the per-decision path: the agent borrows the
    /// environment's cached [`Observation`] and refills instead of
    /// rebuilding.
    pub fn refill_from(&mut self, obs: &Observation) {
        self.pm.reshape_reuse(obs.num_pms, PM_FEAT);
        for (dst, &src) in self.pm.data_mut().iter_mut().zip(&obs.pm_feats) {
            *dst = src as f64;
        }
        self.vm.reshape_reuse(obs.num_vms, VM_FEAT);
        for (dst, &src) in self.vm.data_mut().iter_mut().zip(&obs.vm_feats) {
            *dst = src as f64;
        }
        self.vm_src_pm.clear();
        self.vm_src_pm.extend_from_slice(&obs.vm_src_pm);
        self.num_pms = obs.num_pms;
        self.num_vms = obs.num_vms;
    }

    /// Builds the `(N+M) × (N+M)` additive tree mask for sparse local
    /// attention: entry `(a, b)` is 0 when `a` and `b` share a tree and
    /// `MASK_OFF` otherwise.
    pub fn tree_mask(&self) -> Tensor {
        let n = self.num_pms;
        let m = self.num_vms;
        let total = n + m;
        let mut mask = Tensor::full(total, total, MASK_OFF);
        // Self-attention always allowed.
        for a in 0..total {
            mask.set(a, a, 0.0);
        }
        // Group VMs by host PM.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &pm) in self.vm_src_pm.iter().enumerate() {
            members[pm as usize].push(n + k);
        }
        for (pm_idx, group) in members.iter().enumerate() {
            // PM ↔ its VMs.
            for &v in group {
                mask.set(pm_idx, v, 0.0);
                mask.set(v, pm_idx, 0.0);
            }
            // VM ↔ VM within the tree.
            for (i, &a) in group.iter().enumerate() {
                for &b in group.iter().skip(i + 1) {
                    mask.set(a, b, 0.0);
                    mask.set(b, a, 0.0);
                }
            }
        }
        mask
    }
}

/// Converts a boolean legality mask into a `1 × n` additive mask row.
pub fn bool_mask_row(mask: &[bool]) -> Tensor {
    Tensor::row(mask.iter().map(|&ok| if ok { 0.0 } else { MASK_OFF }).collect())
}

/// The PM-tree topology as reusable CSR groups for block-sparse local
/// attention: group `p` = `[PM_p, its hosted VMs…]`, all indices into the
/// combined `[PM_0…PM_{N−1}, VM_0…VM_{M−1}]` sequence, ascending. The
/// clique union equals [`FeatureTensors::tree_mask`] — the dense mask is
/// never materialized on the inference path.
#[derive(Debug, Clone, Default)]
pub struct TreeIndex {
    /// CSR groups handed to [`vmr_nn::layers::MultiHeadAttention::fwd_tree`].
    pub groups: TreeGroups,
    /// Scratch: per-PM member cursor.
    cursors: Vec<usize>,
}

impl TreeIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the groups from the current featurization, reusing the
    /// existing buffers (no allocation at steady state).
    pub fn rebuild(&mut self, feats: &FeatureTensors) {
        let n = feats.num_pms;
        let m = feats.num_vms;
        let starts = &mut self.groups.starts;
        starts.clear();
        starts.resize(n + 1, 0);
        // Group sizes: the PM itself plus its hosted VMs.
        for &pm in &feats.vm_src_pm {
            starts[pm as usize + 1] += 1;
        }
        let mut acc = 0;
        for (p, s) in starts.iter_mut().enumerate() {
            if p > 0 {
                acc += *s + 1; // previous group: its VMs plus the PM itself
            }
            *s = acc;
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&starts[..n]);
        let members = &mut self.groups.members;
        members.clear();
        members.resize(n + m, 0);
        // The PM leads its group; VMs follow in ascending index order, so
        // each group's member list is strictly ascending.
        for (p, cursor) in self.cursors.iter_mut().enumerate() {
            members[*cursor] = p;
            *cursor += 1;
        }
        for (k, &pm) in feats.vm_src_pm.iter().enumerate() {
            let cursor = &mut self.cursors[pm as usize];
            members[*cursor] = n + k;
            *cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};
    use vmr_sim::obs::Observation;

    fn feats() -> FeatureTensors {
        let state = generate_mapping(&ClusterConfig::tiny(), 11).unwrap();
        let obs = Observation::extract(&state, 16);
        FeatureTensors::from_observation(&obs)
    }

    #[test]
    fn shapes_match_observation() {
        let f = feats();
        assert_eq!(f.pm.rows(), f.num_pms);
        assert_eq!(f.pm.cols(), PM_FEAT);
        assert_eq!(f.vm.rows(), f.num_vms);
        assert_eq!(f.vm.cols(), VM_FEAT);
        assert_eq!(f.vm_src_pm.len(), f.num_vms);
    }

    #[test]
    fn tree_mask_allows_same_tree_only() {
        let f = feats();
        let mask = f.tree_mask();
        let n = f.num_pms;
        // Every VM attends to its host PM and itself.
        for (k, &pm) in f.vm_src_pm.iter().enumerate() {
            assert_eq!(mask.get(n + k, pm as usize), 0.0);
            assert_eq!(mask.get(pm as usize, n + k), 0.0);
            assert_eq!(mask.get(n + k, n + k), 0.0);
        }
        // VMs on different PMs are blocked.
        let mut cross_checked = false;
        'outer: for a in 0..f.num_vms {
            for b in 0..f.num_vms {
                if f.vm_src_pm[a] != f.vm_src_pm[b] {
                    assert_eq!(mask.get(n + a, n + b), MASK_OFF);
                    cross_checked = true;
                    break 'outer;
                }
            }
        }
        assert!(cross_checked, "need at least two distinct host PMs");
        // PM to unrelated PM is blocked (local stage is tree-local).
        assert_eq!(mask.get(0, 1), MASK_OFF);
    }

    #[test]
    fn tree_mask_symmetric() {
        let f = feats();
        let mask = f.tree_mask();
        let t = f.num_pms + f.num_vms;
        for a in 0..t {
            for b in 0..t {
                assert_eq!(mask.get(a, b), mask.get(b, a));
            }
        }
    }

    #[test]
    fn bool_mask_row_maps_values() {
        let row = bool_mask_row(&[true, false, true]);
        assert_eq!(row.get(0, 0), 0.0);
        assert_eq!(row.get(0, 1), MASK_OFF);
        assert_eq!(row.get(0, 2), 0.0);
    }
}
