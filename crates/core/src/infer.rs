//! Shared read-only inference handles for serving.
//!
//! A trained VMR2L policy is pure data: `Vmr2lAgent::decide` takes `&self`
//! and every forward pass builds its own [`vmr_nn::graph::Graph`], so one
//! checkpoint can serve arbitrarily many worker threads without locks.
//! [`SharedAgent`] packages that contract — an `Arc` around an immutable
//! agent, cheap to clone into every connection handler — together with
//! the checkpoint-loading logic the CLI and the `vmr-serve` daemon share.

use std::path::Path;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_nn::checkpoint::Checkpoint;

use crate::agent::Vmr2lAgent;
use crate::config::{ActionMode, ExtractorKind, ModelConfig};
use crate::model::{Vmr2lModel, Vmr2lModelF32};

/// Loads a default-architecture VMR2L agent from a checkpoint file.
///
/// The stored parameter set disambiguates the extractor variant (sparse
/// checkpoints carry `block*.local.*` weights); both variants are tried.
pub fn load_checkpoint_agent(path: impl AsRef<Path>) -> Result<Vmr2lAgent<Vmr2lModel>, String> {
    let path = path.as_ref();
    let ckpt =
        Checkpoint::load(path).map_err(|e| format!("cannot load {}: {e}", path.display()))?;
    restore_default_agent(&ckpt)
        .ok_or_else(|| format!("{} does not match the default VMR2L architecture", path.display()))
}

/// Restores a default-architecture agent from an in-memory checkpoint.
pub fn restore_default_agent(ckpt: &Checkpoint) -> Option<Vmr2lAgent<Vmr2lModel>> {
    for kind in [ExtractorKind::SparseAttention, ExtractorKind::VanillaAttention] {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Vmr2lModel::new(ModelConfig::default(), kind, &mut rng);
        if ckpt.restore(&mut model).is_ok() {
            return Some(Vmr2lAgent::new(model, ActionMode::TwoStage));
        }
    }
    None
}

/// A read-only, thread-shareable handle to a trained agent.
///
/// Cloning is an `Arc` bump; the wrapped agent is immutable, so worker
/// threads can run [`Vmr2lAgent::decide`] concurrently (each call owns
/// its forward graph). This is the inference handle `vmr-serve` hands to
/// its connection pool.
#[derive(Debug, Clone)]
pub struct SharedAgent {
    inner: Arc<Vmr2lAgent<Vmr2lModel>>,
    /// The weights cast to f32 once at construction — the
    /// [`crate::config::PrecisionConfig::Fast32`] serving path reads this
    /// pre-cast mirror on every decision instead of re-casting per call.
    model32: Arc<Vmr2lModelF32>,
}

impl SharedAgent {
    /// Wraps an agent for shared read-only use. Also casts the weights to
    /// f32 once, so both precision tiers are ready to serve.
    pub fn new(agent: Vmr2lAgent<Vmr2lModel>) -> Self {
        let model32 = Arc::new(Vmr2lModelF32::from_f64(&agent.policy));
        SharedAgent { inner: Arc::new(agent), model32 }
    }

    /// Loads a checkpoint into a shared handle (see
    /// [`load_checkpoint_agent`]).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        load_checkpoint_agent(path).map(Self::new)
    }

    /// The underlying agent.
    pub fn agent(&self) -> &Vmr2lAgent<Vmr2lModel> {
        &self.inner
    }

    /// The cached f32 weight mirror for the fast inference path.
    pub fn model32(&self) -> &Vmr2lModelF32 {
        &self.model32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint(kind: ExtractorKind) -> Checkpoint {
        let mut rng = StdRng::seed_from_u64(7);
        let model = Vmr2lModel::new(ModelConfig::default(), kind, &mut rng);
        Checkpoint::capture(&model)
    }

    #[test]
    fn restore_detects_extractor_kind() {
        let sparse = restore_default_agent(&tiny_checkpoint(ExtractorKind::SparseAttention))
            .expect("sparse restores");
        assert_eq!(sparse.policy.extractor, ExtractorKind::SparseAttention);
        let vanilla = restore_default_agent(&tiny_checkpoint(ExtractorKind::VanillaAttention))
            .expect("vanilla restores");
        assert_eq!(vanilla.policy.extractor, ExtractorKind::VanillaAttention);
        assert!(restore_default_agent(&Checkpoint::default()).is_none());
    }

    #[test]
    fn shared_agent_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedAgent>();
        let handle = SharedAgent::new(
            restore_default_agent(&tiny_checkpoint(ExtractorKind::SparseAttention)).unwrap(),
        );
        let clone = handle.clone();
        assert!(std::ptr::eq(handle.agent(), clone.agent()), "clones share one policy");
    }

    #[test]
    fn shared_agent_caches_f32_mirror() {
        let handle = SharedAgent::new(
            restore_default_agent(&tiny_checkpoint(ExtractorKind::SparseAttention)).unwrap(),
        );
        let clone = handle.clone();
        assert!(std::ptr::eq(handle.model32(), clone.model32()), "clones share one f32 cast");
        assert_eq!(handle.model32().cfg, handle.agent().policy.cfg);
    }

    #[test]
    fn load_reports_missing_file() {
        let err = load_checkpoint_agent("/nonexistent/agent.json").unwrap_err();
        assert!(err.contains("cannot load"));
    }
}
