//! The metrics registry: named counters, gauges, and histograms behind
//! `Arc` handles.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex and is
//! meant for startup paths; hot paths hold the returned `Arc` and touch
//! only lock-free atomics. A registry snapshots into a serde-able
//! [`MetricsSnapshot`] that renders both ways the `metrics` wire op
//! exports: structured JSON and Prometheus text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, Unit};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named collection of metrics. Cheap to share (`Arc` it); one per
/// scope whose counters should reset together (e.g. per daemon), plus
/// the process-wide [`global`] registry the library hot paths use.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Get-or-register the histogram `name`. The unit of the first
    /// registration wins.
    pub fn histogram(&self, name: &str, unit: Unit) -> Arc<Histogram> {
        let mut map = self.hists.lock().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(unit))))
    }

    /// A point-in-time export of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| CounterSample { name: name.clone(), value: c.get() })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, g)| GaugeSample { name: name.clone(), value: g.get() })
            .collect();
        let histograms = self
            .hists
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| {
                let snap = h.snapshot();
                HistogramSample {
                    name: name.clone(),
                    unit: h.unit().as_str().to_string(),
                    count: snap.count,
                    sum: snap.sum,
                    max: snap.max,
                    p50: snap.quantile(0.5),
                    p90: snap.quantile(0.9),
                    p99: snap.quantile(0.99),
                    p999: snap.quantile(0.999),
                }
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry the library hot paths (simulator repair,
/// per-precision forward, embed batching, fleet shards) record into.
/// Scoped subsystems (the serve daemon) keep their own [`Registry`] so
/// restarts reset their counters, and merge this one into exports.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One exported counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One exported gauge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One exported histogram, pre-reduced to the tail quantiles the SLO
/// gates care about (raw nanoseconds for `unit == "ns"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Value unit (`"ns"` or `"count"`).
    pub unit: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// The full metrics export: what the `metrics` wire op returns as JSON
/// and what [`MetricsSnapshot::to_prometheus`] renders as text.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Appends another snapshot's metrics (e.g. the [`global`] registry
    /// into a daemon-scoped export) and restores name order.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Adds a synthesized counter (for values kept outside a registry).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push(CounterSample { name: name.to_string(), value });
    }

    /// Adds a synthesized gauge.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.gauges.push(GaugeSample { name: name.to_string(), value });
    }

    /// Prometheus text exposition (format version 0.0.4). Counter and
    /// gauge names are prefixed `vmr_`; nanosecond histograms render as
    /// `_seconds` summaries with `quantile` labels, count histograms stay
    /// in their raw unit.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = prom_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &self.gauges {
            let name = prom_name(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
        }
        for h in &self.histograms {
            let ns = h.unit == "ns";
            let name =
                if ns { format!("{}_seconds", prom_name(&h.name)) } else { prom_name(&h.name) };
            let scale = |v: u64| if ns { v as f64 / 1e9 } else { v as f64 };
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99), ("0.999", h.p999)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", scale(v)));
            }
            out.push_str(&format!("{name}_sum {}\n", scale(h.sum)));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// Looks up a histogram sample by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}

/// Maps a metric name onto the Prometheus charset (`vmr_` prefix, every
/// non-alphanumeric byte folded to `_`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("vmr_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() || ch == '_' { ch } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let h1 = reg.histogram("lat", Unit::Nanos);
        let h2 = reg.histogram("lat", Unit::Nanos);
        h1.record(5);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn snapshot_sorts_and_reduces() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").inc();
        reg.gauge("depth").set(-3);
        let h = reg.histogram("lat", Unit::Nanos);
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counter("b"), Some(2));
        assert_eq!(snap.gauge("depth"), Some(-3));
        let lat = snap.histogram("lat").unwrap();
        assert_eq!(lat.count, 100);
        // Quantiles report the bucket upper bound: within one bucket
        // width (here 2) above the true sample quantile.
        assert!((50..=52).contains(&lat.p50), "p50 = {}", lat.p50);
        assert!(lat.p99 >= 99 && lat.p999 <= lat.max);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.gauge("g").set(7);
        reg.histogram("h", Unit::Count).record(3);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn merge_combines_and_resorts() {
        let a = Registry::new();
        a.counter("zz").inc();
        let b = Registry::new();
        b.counter("aa").add(4);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.counters[0].name, "aa");
        assert_eq!(snap.counters[1].name, "zz");
    }

    #[test]
    fn prometheus_rendering() {
        let reg = Registry::new();
        reg.counter("serve_requests").add(5);
        reg.gauge("queue_depth").set(2);
        let h = reg.histogram("plan_compute", Unit::Nanos);
        h.record(1_000_000_000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE vmr_serve_requests counter"));
        assert!(text.contains("vmr_serve_requests 5"));
        assert!(text.contains("# TYPE vmr_queue_depth gauge"));
        assert!(text.contains("# TYPE vmr_plan_compute_seconds summary"));
        assert!(text.contains("vmr_plan_compute_seconds_count 1"));
        assert!(text.contains("quantile=\"0.999\""));
        // Nanoseconds were scaled to seconds.
        assert!(text.contains("vmr_plan_compute_seconds_sum 1\n"));
    }

    #[test]
    fn global_registry_is_shared() {
        let h = global().histogram("test_global_shared", Unit::Count);
        h.record(1);
        assert!(global().snapshot().histogram("test_global_shared").is_some());
    }
}
