//! Allocation-free log-linear latency histograms with mergeable buckets.
//!
//! The value domain (`u64`, typically nanoseconds) is split into
//! power-of-two octaves, each divided into [`SUB`] linear sub-buckets, so
//! every bucket is at most `1/16` of its lower bound wide — quantile
//! readout is exact rank selection over the bucket counts and lands
//! within one bucket width (≤ 6.25%) of the true sample quantile. The
//! layout is fixed at construction: recording touches four relaxed
//! atomics and never allocates, and two histograms recorded with the same
//! scheme merge by element-wise bucket addition — the merged counts are
//! *identical* to a histogram of the concatenated samples (enforced by
//! `tests/prop_hist.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the linear sub-buckets per octave.
const SUB_BITS: usize = 4;
/// Linear sub-buckets per power-of-two octave.
pub const SUB: usize = 1 << SUB_BITS;
/// Total buckets: `SUB` exact unit buckets for values below [`SUB`], then
/// `SUB` per octave for the remaining `64 - SUB_BITS` octaves.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Bucket index of a value. Values below [`SUB`] get exact unit buckets;
/// larger values are keyed by (octave, top [`SUB_BITS`] mantissa bits).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // e >= SUB_BITS
    let sub = ((v >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + (e - SUB_BITS) * SUB + sub
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let oct = (idx - SUB) / SUB + SUB_BITS;
    let sub = ((idx - SUB) % SUB) as u64;
    (1u64 << oct) + (sub << (oct - SUB_BITS))
}

/// Width of a bucket (1 for the exact unit buckets).
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUB {
        1
    } else {
        let oct = (idx - SUB) / SUB + SUB_BITS;
        1u64 << (oct - SUB_BITS)
    }
}

/// What a histogram's values measure — selects the Prometheus rendering
/// (nanoseconds are exposed as a `_seconds` summary; counts stay raw).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Durations in nanoseconds (the [`crate::Timer`] convention).
    Nanos,
    /// Dimensionless counts (batch sizes, plan lengths).
    Count,
}

impl Unit {
    /// Stable wire name (`"ns"` / `"count"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Count => "count",
        }
    }
}

/// A concurrent log-linear histogram. `record` is lock-free and
/// allocation-free (four relaxed atomic RMWs); readers take a coherent
/// enough view for monitoring without stopping writers.
pub struct Histogram {
    unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    /// An empty histogram (the full bucket layout is allocated up front;
    /// nothing allocates after this).
    pub fn new(unit: Unit) -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Histogram {
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets,
        }
    }

    /// The histogram's value unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile readout (`0.5` = p50). See [`HistSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// An owned copy of the bucket counts, mergeable and queryable
    /// without holding the live histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            unit: self.unit,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The value unit.
    pub unit: Unit,
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Element-wise merge: afterwards `self` is exactly the snapshot a
    /// single histogram would hold had it recorded both sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "mismatched histogram layouts");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Exact rank selection over the bucket counts: the value returned is
    /// the inclusive upper bound of the bucket holding the sample of rank
    /// `ceil(q * count)` — within one bucket width above the true sample
    /// quantile, and exact for values below [`SUB`]. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // Never report past the observed maximum: the top bucket
                // of a single large sample can be orders of magnitude
                // wide.
                return (bucket_lower(idx) + bucket_width(idx) - 1).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        let mut prev_lower = 0u64;
        for idx in 1..BUCKETS {
            let lower = bucket_lower(idx);
            assert!(lower > prev_lower, "bucket {idx} lower bound not monotone");
            prev_lower = lower;
        }
        // Every value maps into the bucket whose range contains it.
        for v in [0u64, 1, 15, 16, 17, 255, 256, 1_000_000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            let lower = bucket_lower(idx);
            assert!(lower <= v, "v={v} below bucket {idx} lower {lower}");
            assert!(v - lower < bucket_width(idx), "v={v} past bucket {idx} width");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new(Unit::Count);
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn quantile_is_within_one_bucket_width() {
        let h = Histogram::new(Unit::Nanos);
        let mut xs: Vec<u64> = (0..1000).map(|i| (i * i) % 90_007 + 17).collect();
        for &x in &xs {
            h.record(x);
        }
        xs.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let truth = xs[rank - 1];
            let got = h.quantile(q);
            let width = bucket_width(bucket_index(truth));
            assert!(got >= truth && got - truth <= width, "q={q}: got {got}, truth {truth}");
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new(Unit::Nanos);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = Histogram::new(Unit::Nanos);
        h.record(1_000_003);
        assert_eq!(h.quantile(0.999), 1_000_003);
    }
}
