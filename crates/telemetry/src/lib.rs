//! # vmr-telemetry — runtime observability primitives
//!
//! The repo-wide metrics layer: every subsystem that wants to be watched
//! records into this crate, and the serve daemon exports it end to end
//! (the `metrics` wire op, the JSONL slow-request log, `vmr top`).
//!
//! * [`hist`] — allocation-free log-linear latency histograms with
//!   mergeable buckets and exact-rank p50/p99/p999 readout.
//! * [`registry`] — named counters/gauges/histograms behind `Arc`
//!   handles: registration locks, recording is lock-free; snapshots
//!   render as structured JSON and Prometheus text exposition.
//! * [`events`] — a leveled JSONL event log (slow-request records
//!   correlated by trace id).
//! * [`Timer`] / [`set_enabled`] — span timing gated by one process-wide
//!   flag: when telemetry is disabled a timer is `None` and recording is
//!   a no-op, so instrumented hot paths pay one relaxed atomic load —
//!   the `telemetry_overhead` bench family gates the *enabled* cost at
//!   <3% on `decide_step` and `serve_throughput`.
//!
//! Scoping: hot-path library metrics (simulator repair, per-precision
//! forward, embed batching) live in the process-wide [`global`] registry;
//! the serve daemon keeps a per-server [`Registry`] so a restart resets
//! its request counters, and merges both into exports.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod events;
pub mod hist;
pub mod registry;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub use events::{EventLog, Level};
pub use hist::{HistSnapshot, Histogram, Unit};
pub use registry::{
    global, Counter, CounterSample, Gauge, GaugeSample, HistogramSample, MetricsSnapshot, Registry,
};

/// Process-wide telemetry switch (see [`set_enabled`]).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotone trace-id source; 0 is reserved for "no trace".
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Turns span timing on or off process-wide. Off (the default) compiles
/// instrumented paths down to one relaxed load and a branch — no clock
/// reads, no histogram writes. The serve daemon turns it on at boot
/// unless configured otherwise.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates the next per-request trace id (process-monotone, never 0).
/// Trace ids correlate a wire reply, its slow-request JSONL record, and
/// any coalesced followers that shared the computation.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// A span timer: reads the clock only when telemetry is enabled.
///
/// ```
/// let hist = vmr_telemetry::global().histogram("doc_example", vmr_telemetry::Unit::Nanos);
/// vmr_telemetry::set_enabled(true);
/// let t = vmr_telemetry::Timer::start();
/// let ns = t.observe(&hist); // records the elapsed nanoseconds
/// assert!(ns > 0 && hist.count() >= 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts a span; `None` inside when telemetry is disabled.
    pub fn start() -> Timer {
        Timer(if enabled() { Some(Instant::now()) } else { None })
    }

    /// A timer that never records (for unconditionally-constructed
    /// spans on paths that sometimes skip instrumentation).
    pub fn disabled() -> Timer {
        Timer(None)
    }

    /// Elapsed nanoseconds, or `None` when disabled.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t0| t0.elapsed().as_nanos() as u64)
    }

    /// Records the elapsed nanoseconds into `hist` and returns them
    /// (0 when disabled — nothing is recorded).
    pub fn observe(&self, hist: &Histogram) -> u64 {
        match self.elapsed_ns() {
            Some(ns) => {
                hist.record(ns);
                ns
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers both flag states: the switch is process-global,
    /// so splitting this across `#[test]` fns would race under the
    /// parallel test runner.
    #[test]
    fn timer_is_gated_by_the_enabled_flag() {
        set_enabled(false);
        let h = Histogram::new(Unit::Nanos);
        let t = Timer::start();
        assert_eq!(t.elapsed_ns(), None);
        assert_eq!(t.observe(&h), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(Timer::disabled().observe(&h), 0);

        set_enabled(true);
        let t = Timer::start();
        std::hint::black_box(1 + 1);
        let ns = t.observe(&h);
        assert!(ns > 0);
        assert_eq!(h.count(), 1);
        set_enabled(false);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
