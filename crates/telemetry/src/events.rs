//! Structured JSONL event log with leveled records.
//!
//! One JSON document per line, written atomically under a mutex (event
//! emission is a cold path — boot, recovery, and requests that crossed
//! the slow threshold — so a lock is fine). Every record carries a
//! wall-clock `ts_ms`, a `level`, an `event` name, and arbitrary typed
//! fields; slow-request records additionally carry the request `trace`
//! id so a log line correlates with the `metrics` op and client-visible
//! replies.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde_json::Value;

/// Severity of one event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Lifecycle events (boot, recovery, session create).
    Info,
    /// A request crossed the slow threshold.
    Warn,
    /// A request crossed ten times the slow threshold, or a durability
    /// degradation.
    Error,
}

impl Level {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

enum Sink {
    File(File),
    Stderr,
    /// In-memory buffer for tests.
    Memory(Vec<String>),
}

/// A shared JSONL event sink.
pub struct EventLog {
    sink: Mutex<Sink>,
}

impl EventLog {
    /// Appends to (or creates) the file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog { sink: Mutex::new(Sink::File(file)) })
    }

    /// Writes to stderr (the default when only `--slow-ms` is given).
    pub fn to_stderr() -> Self {
        EventLog { sink: Mutex::new(Sink::Stderr) }
    }

    /// Collects lines in memory (for tests).
    pub fn in_memory() -> Self {
        EventLog { sink: Mutex::new(Sink::Memory(Vec::new())) }
    }

    /// Emits one record. Field values are serialized as-is; emission
    /// never panics on I/O failure (monitoring must not take down the
    /// daemon).
    pub fn emit(&self, level: Level, event: &str, fields: &[(&str, Value)]) {
        // The one place a wall-clock read is allowed (clippy.toml
        // disallows SystemTime::now workspace-wide): event-log records
        // carry a real timestamp for correlation with external logs,
        // and nothing replayable ever reads it back.
        #[allow(clippy::disallowed_methods)]
        let ts_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let mut line =
            format!("{{\"ts_ms\":{ts_ms},\"level\":{:?},\"event\":{event:?}", level.as_str());
        for (key, value) in fields {
            let encoded = serde_json::to_string(value).unwrap_or_else(|_| "null".to_string());
            line.push_str(&format!(",{key:?}:{encoded}"));
        }
        line.push('}');
        let mut sink = self.sink.lock().expect("event log lock");
        match &mut *sink {
            Sink::File(f) => {
                let _ = writeln!(f, "{line}");
            }
            Sink::Stderr => {
                let _ = writeln!(io::stderr(), "{line}");
            }
            Sink::Memory(buf) => buf.push(line),
        }
    }

    /// The lines collected by an [`EventLog::in_memory`] sink (empty for
    /// other sinks).
    pub fn lines(&self) -> Vec<String> {
        match &*self.sink.lock().expect("event log lock") {
            Sink::Memory(buf) => buf.clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn records_are_one_json_line_each() {
        let log = EventLog::in_memory();
        log.emit(Level::Warn, "slow_request", &[("trace", json!(42)), ("op", json!("plan"))]);
        log.emit(Level::Info, "boot", &[]);
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        let v: Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(v.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(v.get("event").and_then(Value::as_str), Some("slow_request"));
        assert_eq!(v.get("trace").and_then(Value::as_f64), Some(42.0));
        assert!(v.get("ts_ms").is_some());
    }

    #[test]
    fn file_sink_appends() {
        let dir = std::env::temp_dir().join(format!("vmr_evlog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::to_file(&path).unwrap();
            log.emit(Level::Info, "a", &[]);
        }
        {
            let log = EventLog::to_file(&path).unwrap();
            log.emit(Level::Error, "b", &[("why", json!("disk"))]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"why\":\"disk\""));
        let _ = std::fs::remove_file(&path);
    }
}
