//! Histogram-core guarantees: merge exactness, quantile error bounds,
//! and lock-free concurrent recording.

use std::sync::Arc;

use proptest::prelude::*;

use vmr_telemetry::hist::{bucket_index, bucket_width, Histogram, Unit};

fn hist_of(xs: &[u64]) -> Histogram {
    let h = Histogram::new(Unit::Nanos);
    for &x in xs {
        h.record(x);
    }
    h
}

/// Sample quantile with the same rank convention the histogram uses
/// (`ceil(q * n)`, 1-based).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// merge(h1, h2) is *exactly* the histogram of the concatenated
    /// samples: identical bucket layouts make element-wise addition
    /// lossless, so every quantile of the merged snapshot equals the
    /// concatenated histogram's quantile — and both land within one
    /// bucket width of the true sample quantile.
    #[test]
    fn merge_quantiles_match_concatenation(
        xs in proptest::collection::vec(0u64..10_000_000_001, 1..200),
        ys in proptest::collection::vec(0u64..10_000_000_001, 1..200),
    ) {
        let h1 = hist_of(&xs);
        let h2 = hist_of(&ys);
        let mut merged = h1.snapshot();
        merged.merge(&h2.snapshot());

        let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        let concat = hist_of(&all);
        all.sort_unstable();

        prop_assert_eq!(merged.count, all.len() as u64);
        prop_assert_eq!(&merged.buckets, &concat.snapshot().buckets);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let m = merged.quantile(q);
            // Merged and concatenated agree exactly.
            prop_assert_eq!(m, concat.quantile(q));
            // And sit within one bucket width above the true quantile.
            let truth = true_quantile(&all, q);
            let width = bucket_width(bucket_index(truth));
            prop_assert!(m >= truth, "q={}: merged {} below truth {}", q, m, truth);
            prop_assert!(
                m - truth <= width,
                "q={}: merged {} further than one bucket width ({}) from truth {}",
                q, m, width, truth
            );
        }
    }

    /// Sum/max merge losslessly too.
    #[test]
    fn merge_preserves_sum_and_max(
        xs in proptest::collection::vec(0u64..1_000_001, 0..100),
        ys in proptest::collection::vec(0u64..1_000_001, 0..100),
    ) {
        let mut merged = hist_of(&xs).snapshot();
        merged.merge(&hist_of(&ys).snapshot());
        let sum: u64 = xs.iter().chain(ys.iter()).sum();
        let max = xs.iter().chain(ys.iter()).copied().max().unwrap_or(0);
        prop_assert_eq!(merged.sum, sum);
        prop_assert_eq!(merged.max, max);
    }
}

/// N threads hammer one histogram; every recorded value must land —
/// the total count, sum, and per-bucket tallies are deterministic even
/// though the interleaving is not.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let h = Arc::new(Histogram::new(Unit::Nanos));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Same value set per thread, visited in different
                    // orders, so the expected totals are closed-form.
                    h.record((i.wrapping_mul(t + 1)) % 1000 + 1);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(h.count(), THREADS * PER_THREAD);
    let snap = h.snapshot();
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    // All values are in [1, 1000]; the quantiles must be too.
    for q in [0.5, 0.99, 0.999] {
        let v = h.quantile(q);
        assert!((1..=1000 + 63).contains(&v), "quantile {q} out of range: {v}");
    }
    assert!(h.max() <= 1000);
    assert!(h.sum() > 0);
}
