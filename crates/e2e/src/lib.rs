//! Umbrella crate: registers the repo-level `tests/` suites and
//! `examples/` as cargo targets. No library code of its own — see the
//! `[[test]]` and `[[example]]` sections of this package's `Cargo.toml`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
