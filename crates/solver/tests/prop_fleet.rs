//! Tier-1 correctness gate for shard-parallel fleet planning: for random
//! clusters, constraint sets, shard counts, strategies, and worker
//! counts, the stitched plan must
//!
//! * replay **legally** under the live `ConstraintSet` (every action
//!   passes `migration_legal` at its point in the sequence),
//! * never exceed the **global** MNL — the deployment constraint the old
//!   per-partition `round().max(1)` apportionment violated, and
//! * be **byte-identical for 1 vs N workers** — the property that lets
//!   the serving layer memoize fleet plans and parallelize freely.
//!
//! POP rides the same machinery, so the suite also pins `pop_solve` to
//! the exact global budget.

use proptest::prelude::*;
use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{generate_mapping, ClusterConfig, PmGroup};
use vmr_sim::objective::Objective;
use vmr_sim::shard::{fleet_plan, FleetConfig, ShardStrategy, SubCluster};
use vmr_sim::types::VmId;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};
use vmr_solver::pop::{pop_solve, PopConfig};

fn cluster(seed: u64, pms: usize) -> ClusterState {
    let cfg = ClusterConfig {
        pm_groups: vec![PmGroup { count: pms, cpu_per_numa: 44, mem_per_numa: 128 }],
        churn_cycles: 25,
        ..ClusterConfig::tiny()
    };
    generate_mapping(&cfg, seed).expect("mapping")
}

/// Random pins and conflicts over the cluster's VMs, derived
/// deterministically from `seed`.
fn constraints(state: &ClusterState, seed: u64) -> ConstraintSet {
    let n = state.num_vms();
    let mut cs = ConstraintSet::new(n);
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        z ^= z << 13;
        z ^= z >> 7;
        z ^= z << 17;
        z
    };
    for _ in 0..n / 8 {
        let _ = cs.pin(VmId((next() % n as u64) as u32));
    }
    for _ in 0..n / 6 {
        let (a, b) = (VmId((next() % n as u64) as u32), VmId((next() % n as u64) as u32));
        if a != b {
            let _ = cs.add_conflict(a, b);
        }
    }
    cs
}

/// The deterministic per-shard planner the properties use: bounded
/// branch-and-bound whose wall-clock deadline is far beyond what the
/// tiny shards need, so its result depends only on the subproblem.
fn bnb_shard_solver(sub: &SubCluster, sub_mnl: usize) -> Vec<vmr_sim::env::Action> {
    let cfg = SolverConfig {
        time_limit: std::time::Duration::from_secs(60),
        node_limit: 4000,
        beam_width: Some(6),
        improving_only: true,
    };
    branch_and_bound(&sub.state, &sub.constraints, Objective::default(), sub_mnl, &cfg).plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fleet_plans_are_legal_budgeted_and_worker_invariant(
        seed in 0u64..12,
        pms in 4usize..9,
        shards in 1usize..6,
        mnl in 0usize..8,
        strategy_pick in 0u8..3,
        refine_pick in 0u8..2,
        workers in 2usize..5,
    ) {
        let state = cluster(seed, pms);
        let cs = constraints(&state, seed);
        let strategy = match strategy_pick {
            0 => ShardStrategy::Random,
            1 => ShardStrategy::Contiguous,
            _ => ShardStrategy::FragBalanced,
        };
        let refine = refine_pick == 1;
        let cfg = FleetConfig { shards, strategy, seed, workers: 1, refine };
        let out = fleet_plan(&state, &cs, Objective::default(), mnl, &cfg, |_, sub, m| {
            bnb_shard_solver(sub, m)
        });

        // Global MNL respected — the acceptance criterion: no fleet path
        // may emit a plan longer than the requested budget.
        prop_assert!(out.plan.len() <= mnl, "{} > MNL {}", out.plan.len(), mnl);

        // Legality by sequential replay under the live constraints.
        let mut replay = state.clone();
        for a in &out.plan {
            prop_assert!(cs.migration_legal(&replay, a.vm, a.pm).is_ok());
            replay.migrate(a.vm, a.pm, 16).expect("stitched action must apply");
        }
        let obj = Objective::default().value(&replay);
        prop_assert!((obj - out.objective).abs() < 1e-12);
        prop_assert!(out.objective <= state.fragment_rate(16) + 1e-12, "never regresses");

        // Worker-count invariance: N workers, same bytes.
        let cfg_n = FleetConfig { workers, ..cfg };
        let out_n = fleet_plan(&state, &cs, Objective::default(), mnl, &cfg_n, |_, sub, m| {
            bnb_shard_solver(sub, m)
        });
        prop_assert_eq!(&out.plan, &out_n.plan, "1 vs {} workers must agree", workers);
        prop_assert_eq!(out.objective, out_n.objective);
    }

    #[test]
    fn pop_never_exceeds_the_global_mnl(
        seed in 0u64..10,
        partitions in 1usize..7,
        mnl in 0usize..7,
    ) {
        let state = cluster(seed.wrapping_add(100), 6);
        let cs = constraints(&state, seed);
        let cfg = PopConfig {
            partitions,
            sub: SolverConfig {
                time_limit: std::time::Duration::from_millis(40),
                node_limit: 2000,
                beam_width: Some(4),
                improving_only: true,
            },
            seed,
        };
        let res = pop_solve(&state, &cs, Objective::default(), mnl, &cfg);
        prop_assert!(res.plan.len() <= mnl, "POP overdraw: {} > {}", res.plan.len(), mnl);
        let mut replay = state.clone();
        for a in &res.plan {
            prop_assert!(cs.migration_legal(&replay, a.vm, a.pm).is_ok());
            replay.migrate(a.vm, a.pm, 16).expect("POP action must apply");
        }
        prop_assert!((Objective::default().value(&replay) - res.objective).abs() < 1e-12);
    }
}
