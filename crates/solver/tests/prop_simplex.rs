//! Property-based simplex checks: the reported optimum dominates every
//! feasible point we can sample, and solutions are primal-feasible.

use proptest::prelude::*;
use vmr_solver::simplex::{Direction, LinearProgram, LpOutcome, Sense};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// For box-bounded maximization problems (0 ≤ x ≤ u), the simplex
    /// optimum must (a) be primal feasible and (b) dominate a grid of
    /// sampled feasible points.
    #[test]
    fn optimum_dominates_feasible_samples(
        n in 2usize..5,
        obj_raw in prop::collection::vec(-3.0f64..3.0, 5),
        rows_raw in prop::collection::vec((prop::collection::vec(0.1f64..2.0, 5), 1.0f64..9.0), 1..4),
        samples in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 5), 8),
    ) {
        let mut lp = LinearProgram::new(n, Direction::Maximize);
        for (v, &c) in obj_raw.iter().enumerate().take(n) {
            lp.set_objective(v, c);
            lp.add_constraint(vec![(v, 1.0)], Sense::Le, 5.0); // box
        }
        let rows: Vec<(Vec<f64>, f64)> = rows_raw
            .iter()
            .map(|(a, b)| (a[..n].to_vec(), *b))
            .collect();
        for (a, b) in &rows {
            let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
            lp.add_constraint(coeffs, Sense::Le, *b);
        }
        let LpOutcome::Optimal { x, objective } = lp.solve() else {
            // Bounded feasible region containing 0: must be optimal.
            return Err(TestCaseError::fail("expected optimal"));
        };
        // (a) primal feasibility.
        for (a, b) in &rows {
            let lhs: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "constraint violated: {} > {}", lhs, b);
        }
        prop_assert!(x.iter().all(|&v| (-1e-9..=5.0 + 1e-6).contains(&v)));
        // (b) domination of sampled feasible points (scaled into the box).
        for s in &samples {
            let cand: Vec<f64> = s[..n].iter().map(|v| v * 5.0).collect();
            let feasible = rows.iter().all(|(a, b)| {
                a.iter().zip(&cand).map(|(ai, xi)| ai * xi).sum::<f64>() <= *b
            });
            if feasible {
                let val: f64 = cand
                    .iter()
                    .zip(&obj_raw)
                    .map(|(xi, ci)| xi * ci)
                    .sum();
                prop_assert!(
                    objective >= val - 1e-6,
                    "feasible point beats 'optimum': {} > {}",
                    val,
                    objective
                );
            }
        }
    }
}
