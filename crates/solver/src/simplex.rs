//! Dense two-phase simplex for linear programs.
//!
//! Gurobi/CPLEX are closed-source; this is the in-repo replacement used to
//! compute LP-relaxation bounds of the paper's MIP formulation (Eq. 1–7)
//! on small instances, and it is tested standalone against brute-force
//! vertex enumeration.
//!
//! The solver handles `min/max cᵀx` subject to a mix of `≤ / ≥ / =`
//! constraints with `x ≥ 0`, via the standard Phase-I artificial-variable
//! construction followed by Phase-II optimization. Bland's rule breaks
//! ties, guaranteeing termination.

use std::fmt;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// One linear constraint `aᵀx (≤|≥|=) b`. Coefficients are sparse pairs
/// `(var index, coefficient)`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficients.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over `n` non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    objective: Vec<f64>,
    direction: Direction,
    constraints: Vec<Constraint>,
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// Optimal solution found: values and objective.
    Optimal {
        /// Optimal variable assignment.
        x: Vec<f64>,
        /// Objective value at the optimum (in the requested direction).
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
}

impl fmt::Display for LpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpOutcome::Optimal { objective, .. } => write!(f, "optimal({objective})"),
            LpOutcome::Infeasible => write!(f, "infeasible"),
            LpOutcome::Unbounded => write!(f, "unbounded"),
        }
    }
}

impl LinearProgram {
    /// A program over `n` variables, all constrained `x ≥ 0`.
    pub fn new(n: usize, direction: Direction) -> Self {
        LinearProgram { n, objective: vec![0.0; n], direction, constraints: Vec::new() }
    }

    /// Sets an objective coefficient.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n, "objective variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds a constraint. RHS may be negative (normalized internally).
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(v < self.n, "constraint variable out of range");
        }
        self.constraints.push(Constraint { coeffs, sense, rhs });
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        // Normalize: maximize, all RHS ≥ 0.
        let mut rows: Vec<(Vec<f64>, Sense, f64)> = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            let mut dense = vec![0.0; self.n];
            for &(v, co) in &c.coeffs {
                dense[v] += co;
            }
            let (dense, sense, rhs) = if c.rhs < 0.0 {
                let flipped = match c.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
                (dense.iter().map(|v| -v).collect(), flipped, -c.rhs)
            } else {
                (dense, c.sense, c.rhs)
            };
            rows.push((dense, sense, rhs));
        }
        let maximize = self.direction == Direction::Maximize;
        let obj: Vec<f64> = if maximize {
            self.objective.clone()
        } else {
            self.objective.iter().map(|v| -v).collect()
        };

        // Column layout: structural | slacks/surplus | artificials | rhs.
        let m = rows.len();
        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, sense, _) in &rows {
            match sense {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let total = self.n + n_slack + n_art;
        let mut tab = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_at = self.n;
        let mut art_at = self.n + n_slack;
        let mut art_cols = Vec::new();
        for (r, (dense, sense, rhs)) in rows.iter().enumerate() {
            tab[r][..self.n].copy_from_slice(dense);
            tab[r][total] = *rhs;
            match sense {
                Sense::Le => {
                    tab[r][slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                Sense::Ge => {
                    tab[r][slack_at] = -1.0;
                    slack_at += 1;
                    tab[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_cols.push(art_at);
                    art_at += 1;
                }
                Sense::Eq => {
                    tab[r][art_at] = 1.0;
                    basis[r] = art_at;
                    art_cols.push(art_at);
                    art_at += 1;
                }
            }
        }

        const EPS: f64 = 1e-9;

        // Phase I: minimize sum of artificials == maximize −Σ artificials.
        if n_art > 0 {
            // Maximize −Σ artificials. Reduced costs z_j = c_B·B⁻¹a_j − c_j
            // with c_art = −1 (so −c_j = +1 on artificial columns) and the
            // starting basis contributing −(row) for each artificial row.
            let mut z = vec![0.0; total + 1];
            for &c in &art_cols {
                z[c] = 1.0;
            }
            for r in 0..m {
                if art_cols.contains(&basis[r]) {
                    for c in 0..=total {
                        z[c] -= tab[r][c];
                    }
                }
            }
            if !simplex_iterate(&mut tab, &mut basis, &mut z, total) {
                return LpOutcome::Unbounded; // cannot happen in phase I
            }
            // z[total] holds the phase-I objective (−Σ art); negative means
            // artificials remain in the optimal basis -> infeasible.
            if z[total] < -EPS {
                return LpOutcome::Infeasible;
            }
            // Drive leftover artificials out of the basis when possible.
            for r in 0..m {
                if art_cols.contains(&basis[r]) {
                    if let Some(c) = (0..self.n + n_slack).find(|&c| tab[r][c].abs() > EPS) {
                        pivot(&mut tab, &mut basis, r, c, total);
                    }
                }
            }
        }

        // Phase II: objective row in terms of the current basis.
        let mut z = vec![0.0; total + 1];
        for (c, &co) in obj.iter().enumerate() {
            z[c] = -co;
        }
        for r in 0..m {
            let b = basis[r];
            if b < self.n && obj[b].abs() > 0.0 {
                let coef = obj[b];
                for c in 0..=total {
                    z[c] += coef * tab[r][c];
                }
            }
        }
        // Forbid artificial columns from re-entering.
        for &c in &art_cols {
            z[c] = f64::INFINITY;
        }
        if !simplex_iterate(&mut tab, &mut basis, &mut z, total) {
            return LpOutcome::Unbounded;
        }

        let mut x = vec![0.0; self.n];
        for r in 0..m {
            if basis[r] < self.n {
                x[basis[r]] = tab[r][total];
            }
        }
        let mut objective: f64 = x.iter().zip(self.objective.iter()).map(|(xi, ci)| xi * ci).sum();
        // Clean tiny numerical dust.
        if objective.abs() < 1e-12 {
            objective = 0.0;
        }
        LpOutcome::Optimal { x, objective }
    }
}

/// Runs simplex pivots until optimal. Returns `false` on unboundedness.
/// `z` is the reduced-cost row (maximization; entering column has z < 0).
fn simplex_iterate(tab: &mut [Vec<f64>], basis: &mut [usize], z: &mut [f64], total: usize) -> bool {
    const EPS: f64 = 1e-9;
    let m = tab.len();
    for _ in 0..200_000 {
        // Bland's rule: first column with negative reduced cost.
        let Some(col) = (0..total).find(|&c| z[c] < -EPS && z[c].is_finite()) else {
            return true; // optimal
        };
        // Ratio test (Bland: smallest basis index breaks ties).
        let mut pivot_row = None;
        let mut best = f64::INFINITY;
        for r in 0..m {
            if tab[r][col] > EPS {
                let ratio = tab[r][total] / tab[r][col];
                if ratio < best - EPS
                    || (ratio < best + EPS
                        && pivot_row.is_none_or(|pr: usize| basis[r] < basis[pr]))
                {
                    best = ratio;
                    pivot_row = Some(r);
                }
            }
        }
        let Some(row) = pivot_row else {
            return false; // unbounded
        };
        pivot_with_z(tab, basis, z, row, col, total);
    }
    true // iteration cap: treat as converged (safety net, not expected)
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let piv = tab[row][col];
    for cell in tab[row].iter_mut().take(total + 1) {
        *cell /= piv;
    }
    for r in 0..tab.len() {
        if r == row {
            continue;
        }
        // Split so the pivot row can be read while row `r` is written.
        let (pivot_row, target_row) = if r < row {
            let (head, tail) = tab.split_at_mut(row);
            (&tail[0], &mut head[r])
        } else {
            let (head, tail) = tab.split_at_mut(r);
            (&head[row], &mut tail[0])
        };
        let f = target_row[col];
        if f != 0.0 {
            for (cell, &p) in target_row.iter_mut().zip(pivot_row).take(total + 1) {
                *cell -= f * p;
            }
        }
    }
    basis[row] = col;
}

fn pivot_with_z(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    row: usize,
    col: usize,
    total: usize,
) {
    pivot(tab, basis, row, col, total);
    let f = z[col];
    if f != 0.0 && f.is_finite() {
        for c in 0..=total {
            if z[c].is_finite() {
                z[c] -= f * tab[row][c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(outcome: &LpOutcome, expect_obj: f64, tol: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal { x, objective } => {
                assert!(
                    (objective - expect_obj).abs() < tol,
                    "objective {objective}, expected {expect_obj}"
                );
                x.clone()
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn textbook_max_le() {
        // max 3x + 5y s.t. x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → obj 36 at (2,6).
        let mut lp = LinearProgram::new(2, Direction::Maximize);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], Sense::Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], Sense::Le, 18.0);
        let x = assert_optimal(&lp.solve(), 36.0, 1e-6);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10; x ≥ 2 → x=8,y=2? No: cost of x is
        // cheaper, so push x: min at y=0, x=10 → 20.
        let mut lp = LinearProgram::new(2, Direction::Minimize);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Ge, 10.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        let x = assert_optimal(&lp.solve(), 20.0, 1e-6);
        assert!((x[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5; x ≤ 3 → 5.
        let mut lp = LinearProgram::new(2, Direction::Maximize);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Le, 3.0);
        assert_optimal(&lp.solve(), 5.0, 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1, Direction::Maximize);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Ge, 2.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2, Direction::Maximize);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(1, 1.0)], Sense::Le, 1.0);
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x s.t. −x ≤ −2 (i.e. x ≥ 2); x ≤ 5 → 5.
        let mut lp = LinearProgram::new(1, Direction::Maximize);
        lp.set_objective(0, 1.0);
        lp.add_constraint(vec![(0, -1.0)], Sense::Le, -2.0);
        lp.add_constraint(vec![(0, 1.0)], Sense::Le, 5.0);
        let x = assert_optimal(&lp.solve(), 5.0, 1e-6);
        assert!(x[0] >= 2.0 - 1e-9);
    }

    #[test]
    fn degenerate_cycling_guard() {
        // The classic Beale cycling example; Bland's rule must terminate.
        let mut lp = LinearProgram::new(4, Direction::Maximize);
        lp.set_objective(0, 0.75);
        lp.set_objective(1, -150.0);
        lp.set_objective(2, 0.02);
        lp.set_objective(3, -6.0);
        lp.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Sense::Le, 0.0);
        lp.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Sense::Le, 0.0);
        lp.add_constraint(vec![(2, 1.0)], Sense::Le, 1.0);
        assert_optimal(&lp.solve(), 0.05, 1e-6);
    }

    /// Randomized cross-check against brute-force vertex enumeration on
    /// 2-variable programs.
    #[test]
    fn random_2d_vs_vertex_enumeration() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let c = [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)];
            let mut rows = Vec::new();
            for _ in 0..4 {
                rows.push((
                    [rng.gen_range(0.1..2.0), rng.gen_range(0.1..2.0)],
                    rng.gen_range(1.0..8.0),
                ));
            }
            let mut lp = LinearProgram::new(2, Direction::Maximize);
            lp.set_objective(0, c[0]);
            lp.set_objective(1, c[1]);
            for (a, b) in &rows {
                lp.add_constraint(vec![(0, a[0]), (1, a[1])], Sense::Le, *b);
            }
            // All constraints have positive coefficients and positive RHS,
            // so the feasible region is a bounded polytope containing 0.
            let LpOutcome::Optimal { objective, .. } = lp.solve() else {
                panic!("trial {trial}: expected optimal");
            };
            // Brute force: evaluate all constraint-pair intersections + axes.
            let mut best: f64 = 0.0; // origin is feasible
            let feasible = |x: f64, y: f64| -> bool {
                x >= -1e-9
                    && y >= -1e-9
                    && rows.iter().all(|(a, b)| a[0] * x + a[1] * y <= b + 1e-9)
            };
            let mut cands = vec![];
            for i in 0..rows.len() {
                let (a1, b1) = (&rows[i].0, rows[i].1);
                // Axis intersections.
                cands.push((b1 / a1[0], 0.0));
                cands.push((0.0, b1 / a1[1]));
                for (a2, b2) in rows.iter().skip(i + 1).map(|(a, b)| (a, *b)) {
                    let det = a1[0] * a2[1] - a1[1] * a2[0];
                    if det.abs() > 1e-9 {
                        let x = (b1 * a2[1] - a1[1] * b2) / det;
                        let y = (a1[0] * b2 - b1 * a2[0]) / det;
                        cands.push((x, y));
                    }
                }
            }
            for (x, y) in cands {
                if feasible(x, y) {
                    best = best.max(c[0] * x + c[1] * y);
                }
            }
            assert!(
                (objective - best).abs() < 1e-5,
                "trial {trial}: simplex {objective} vs brute {best}"
            );
        }
    }
}
