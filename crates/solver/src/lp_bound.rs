//! LP relaxation of the paper's MIP (Eq. 1–7) for lower bounds.
//!
//! Observation: because Eq. 4 forces every VM to be fully placed,
//! `Σ_{i,j,k} x_{k,i,j}·u_k/w_k` is a constant, and minimizing the total
//! X-core fragment (Eq. 1) is equivalent to **maximizing `Σ_{i,j} y_{i,j}`**
//! — the number of X-core slots carved out of the free capacity. Relaxing
//! the integrality of `x` and `y` yields a linear program whose optimum
//! lower-bounds the fragment rate achievable by *any* rescheduler under
//! the MNL budget, which the tests use to sanity-check branch-and-bound.
//!
//! Only the default single-NUMA FR objective is modeled; this is a
//! verification instrument for small instances, not a production solver.

use vmr_sim::cluster::ClusterState;
use vmr_sim::types::{NumaPlacement, NumaPolicy, PmId, NUMA_PER_PM};

use crate::simplex::{Direction, LinearProgram, LpOutcome, Sense};

/// Computes an LP lower bound on the X-core fragment *rate* reachable
/// within `mnl` migrations. Returns `None` if the LP is infeasible or
/// unbounded (which indicates a modeling bug; callers should treat it as
/// "no bound available").
pub fn fragment_rate_lower_bound(state: &ClusterState, x_cores: u32, mnl: usize) -> Option<f64> {
    let n = state.num_pms();
    let m = state.num_vms();

    // Variable layout:
    //   single-NUMA VM k -> 2N vars (one per (pm, numa))
    //   double-NUMA VM k -> N vars (one per pm; occupies both NUMAs)
    //   y -> 2N vars
    let mut var_of_vm: Vec<usize> = Vec::with_capacity(m); // first var index of VM k
    let mut next = 0usize;
    for vm in state.vms() {
        var_of_vm.push(next);
        next += match vm.numa {
            NumaPolicy::Single => 2 * n,
            NumaPolicy::Double => n,
        };
    }
    let y_base = next;
    let total_vars = y_base + 2 * n;

    let mut lp = LinearProgram::new(total_vars, Direction::Maximize);
    for j in 0..2 * n {
        lp.set_objective(y_base + j, 1.0);
    }

    // Capacity constraints per (pm, numa).
    for i in 0..n {
        let pm = state.pm(PmId(i as u32));
        for j in 0..NUMA_PER_PM {
            let mut cpu_row: Vec<(usize, f64)> = Vec::new();
            let mut mem_row: Vec<(usize, f64)> = Vec::new();
            for (k, vm) in state.vms().iter().enumerate() {
                match vm.numa {
                    NumaPolicy::Single => {
                        let v = var_of_vm[k] + 2 * i + j;
                        cpu_row.push((v, vm.cpu_per_numa() as f64));
                        mem_row.push((v, vm.mem_per_numa() as f64));
                    }
                    NumaPolicy::Double => {
                        let v = var_of_vm[k] + i;
                        cpu_row.push((v, vm.cpu_per_numa() as f64));
                        mem_row.push((v, vm.mem_per_numa() as f64));
                    }
                }
            }
            cpu_row.push((y_base + 2 * i + j, x_cores as f64));
            lp.add_constraint(cpu_row, Sense::Le, pm.numas[j].cpu_total as f64);
            lp.add_constraint(mem_row, Sense::Le, pm.numas[j].mem_total as f64);
        }
    }

    // Full placement of every VM.
    for (k, vm) in state.vms().iter().enumerate() {
        let width = match vm.numa {
            NumaPolicy::Single => 2 * n,
            NumaPolicy::Double => n,
        };
        let row: Vec<(usize, f64)> = (0..width).map(|o| (var_of_vm[k] + o, 1.0)).collect();
        lp.add_constraint(row, Sense::Eq, 1.0);
    }

    // MNL: at least M − MNL VMs stay on their original slot.
    if mnl < m {
        let mut row = Vec::with_capacity(m);
        for (k, _) in state.vms().iter().enumerate() {
            let pl = state.placement(vmr_sim::types::VmId(k as u32));
            let var = match pl.numa {
                NumaPlacement::Single(numa) => var_of_vm[k] + 2 * pl.pm.0 as usize + numa as usize,
                NumaPlacement::Double => var_of_vm[k] + pl.pm.0 as usize,
            };
            row.push((var, 1.0));
        }
        lp.add_constraint(row, Sense::Ge, (m - mnl) as f64);
    }

    match lp.solve() {
        LpOutcome::Optimal { objective, .. } => {
            let free = state.total_free_cpu() as f64;
            if free <= 0.0 {
                return Some(0.0);
            }
            let frag_lb = (free - (x_cores as f64) * objective).max(0.0);
            Some(frag_lb / free)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vmr_sim::constraints::ConstraintSet;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig, PmGroup};
    use vmr_sim::objective::Objective;

    use crate::bnb::{branch_and_bound, SolverConfig};

    fn tiny(seed: u64) -> ClusterState {
        let cfg = ClusterConfig {
            pm_groups: vec![PmGroup { count: 3, cpu_per_numa: 44, mem_per_numa: 128 }],
            ..ClusterConfig::tiny()
        };
        generate_mapping(&cfg, seed).unwrap()
    }

    #[test]
    fn bound_is_below_initial_fr() {
        let s = tiny(4);
        let lb = fragment_rate_lower_bound(&s, 16, 5).expect("lp solvable");
        assert!(lb <= s.fragment_rate(16) + 1e-9, "lb {lb} above initial");
        assert!(lb >= 0.0);
    }

    #[test]
    fn bound_lower_bounds_bnb() {
        let s = tiny(5);
        let lb = fragment_rate_lower_bound(&s, 16, 3).expect("lp solvable");
        let cs = ConstraintSet::new(s.num_vms());
        let res = branch_and_bound(
            &s,
            &cs,
            Objective::default(),
            3,
            &SolverConfig {
                time_limit: Duration::from_secs(2),
                beam_width: Some(24),
                ..Default::default()
            },
        );
        assert!(res.objective >= lb - 1e-6, "bnb {} beats the LP bound {lb}", res.objective);
    }

    #[test]
    fn zero_mnl_bound_matches_initial_state_possibilities() {
        let s = tiny(6);
        // With MNL = 0 every VM stays put; the only freedom is the
        // fractional y, so the bound equals the true current FR.
        let lb = fragment_rate_lower_bound(&s, 16, 0).expect("lp solvable");
        assert!(lb <= s.fragment_rate(16) + 1e-9);
        // And the bound is tight up to integrality of y: the relaxation can
        // only over-count usable slots, never under-count.
        let free = s.total_free_cpu() as f64;
        let y_int: u64 =
            s.pms().iter().flat_map(|p| p.numas.iter()).map(|nn| (nn.free_cpu() / 16) as u64).sum();
        let fr_int = (free - 16.0 * y_int as f64) / free;
        assert!(lb <= fr_int + 1e-9);
    }

    #[test]
    fn larger_mnl_never_raises_bound() {
        let s = tiny(7);
        let lb1 = fragment_rate_lower_bound(&s, 16, 1).unwrap();
        let lb5 = fragment_rate_lower_bound(&s, 16, 5).unwrap();
        assert!(lb5 <= lb1 + 1e-9);
    }
}
