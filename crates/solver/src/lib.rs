//! # vmr-solver — exact and approximate solvers for VM rescheduling
//!
//! The optimization-algorithm side of the paper's baseline spectrum:
//!
//! * [`simplex`] — a dense two-phase simplex LP solver (the in-repo stand-in
//!   for the LP machinery inside commercial MIP solvers),
//! * [`bnb`] — branch-and-bound over migration sequences with an admissible
//!   fragment bound, a deadline, and optional beam capping: the "MIP"
//!   baseline (exact when run without budgets; anytime otherwise),
//! * [`pop`] — Partitioned Optimization Problems: random subclustering +
//!   per-partition exact solving (the production baseline at ByteDance),
//! * [`lp_bound`] — the LP relaxation of Eq. 1–7, used to certify solver
//!   quality on small instances.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod bnb;
pub mod lp_bound;
pub mod pop;
pub mod simplex;

pub use bnb::{
    branch_and_bound, branch_and_bound_warmstart, max_gain_per_move, SolveResult, SolverConfig,
};
pub use lp_bound::fragment_rate_lower_bound;
pub use pop::{extract_subcluster, pop_solve, PopConfig, SubCluster, MIN_PARTITION_TIME};
pub use simplex::{Direction, LinearProgram, LpOutcome, Sense};
