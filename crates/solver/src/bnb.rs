//! Branch-and-bound search over migration sequences — the in-repo
//! replacement for the Gurobi MIP baseline (see DESIGN.md substitutions).
//!
//! The paper solves Eq. 1–7 with a commercial MIP solver; this module
//! searches the same solution space directly: a depth-≤MNL sequence of
//! single-VM migrations. Depth-first search with
//!
//! * an **admissible bound** (each move can reduce the fragment mass by at
//!   most a constant, so `F − r·G` bounds any completion of a node),
//! * **move ordering** by immediate fragment drop,
//! * optional **beam capping** of children (anytime mode), and
//! * a **deadline** / node budget, after which the incumbent is returned
//!   with `proved_optimal = false`.
//!
//! With no beam cap and no deadline the search is exhaustive, which the
//! test suite exploits to verify optimality against brute force on tiny
//! instances. With a cap it reproduces the paper's observed MIP behaviour:
//! excellent objective, runtime exploding with MNL.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::env::Action;
use vmr_sim::objective::Objective;
use vmr_sim::types::{PmId, VmId};

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Wall-clock budget. The search stops expanding at the deadline.
    pub time_limit: Duration,
    /// Maximum nodes expanded.
    pub node_limit: usize,
    /// Children kept per node (ordered by immediate gain); `None` = all.
    pub beam_width: Option<usize>,
    /// Skip children whose immediate gain is negative. Keeps the search
    /// monotone (good anytime behaviour) at the cost of missing
    /// sacrifice-now-win-later plans; exact runs should disable this.
    pub improving_only: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: Duration::from_secs(5),
            node_limit: 2_000_000,
            beam_width: Some(64),
            improving_only: false,
        }
    }
}

impl SolverConfig {
    /// Exhaustive configuration (tests, tiny instances).
    pub fn exact() -> Self {
        SolverConfig {
            time_limit: Duration::from_secs(3600),
            node_limit: usize::MAX,
            beam_width: None,
            improving_only: false,
        }
    }
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Best migration plan found (may be shorter than MNL).
    pub plan: Vec<Action>,
    /// Objective value after applying `plan` to the initial state.
    pub objective: f64,
    /// Nodes expanded during the search.
    pub nodes_expanded: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether the search completed without hitting a budget (and the
    /// returned plan is therefore optimal within the search space).
    pub proved_optimal: bool,
}

struct SearchCtx<'a> {
    state: ClusterState,
    constraints: &'a ConstraintSet,
    objective: Objective,
    cfg: SolverConfig,
    deadline: Instant,
    nodes: usize,
    budget_hit: bool,
    max_gain_per_move: f64,
    best_obj: f64,
    best_plan: Vec<Action>,
    path: Vec<Action>,
    visited: HashSet<u64>,
}

/// Solves a rescheduling instance by branch-and-bound.
pub fn branch_and_bound(
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &SolverConfig,
) -> SolveResult {
    branch_and_bound_warmstart(initial, constraints, objective, mnl, cfg, &[])
}

/// Branch-and-bound seeded with a heuristic incumbent (warm start).
///
/// Production MIP deployments rarely start cold: the paper's §2 notes
/// that current methods "rely on estimating feasible solutions using
/// proprietary heuristic methods" before branch-and-cut. Passing a plan
/// (e.g. from HA) installs its objective as the initial incumbent, so
/// the admissible bound prunes from the first node — same optimum,
/// often far fewer nodes.
///
/// Incumbent steps that do not replay (illegal under `constraints` or
/// beyond `mnl`) are skipped, mirroring footnote 7's drop semantics.
pub fn branch_and_bound_warmstart(
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &SolverConfig,
    incumbent: &[Action],
) -> SolveResult {
    let start = Instant::now();
    let max_gain = max_gain_per_move(initial, objective);
    let mut ctx = SearchCtx {
        state: initial.clone(),
        constraints,
        objective,
        cfg: *cfg,
        deadline: start + cfg.time_limit,
        nodes: 0,
        budget_hit: false,
        max_gain_per_move: max_gain,
        best_obj: objective.value(initial),
        best_plan: Vec::new(),
        path: Vec::new(),
        visited: HashSet::new(),
    };
    ctx.visited.insert(hash_state(&ctx.state));

    // Replay the incumbent on a scratch state; adopt it if it improves.
    if !incumbent.is_empty() {
        let mut scratch = initial.clone();
        let mut applied = Vec::new();
        for &a in incumbent.iter().take(mnl) {
            if constraints.migration_legal(&scratch, a.vm, a.pm).is_ok()
                && scratch.migrate(a.vm, a.pm, objective.frag_cores()).is_ok()
            {
                applied.push(a);
            }
        }
        let obj = objective.value(&scratch);
        if obj < ctx.best_obj - 1e-12 {
            ctx.best_obj = obj;
            ctx.best_plan = applied;
        }
    }

    dfs(&mut ctx, mnl);
    SolveResult {
        plan: ctx.best_plan,
        objective: ctx.best_obj,
        nodes_expanded: ctx.nodes,
        elapsed: start.elapsed(),
        proved_optimal: !ctx.budget_hit,
    }
}

fn dfs(ctx: &mut SearchCtx<'_>, remaining: usize) {
    if remaining == 0 {
        return;
    }
    if ctx.nodes >= ctx.cfg.node_limit || Instant::now() >= ctx.deadline {
        ctx.budget_hit = true;
        return;
    }
    let current = ctx.objective.value(&ctx.state);
    // Admissible bound: even if every remaining move achieved the maximum
    // possible gain, could this subtree beat the incumbent?
    let bound = (current - remaining as f64 * ctx.max_gain_per_move).max(0.0);
    if bound >= ctx.best_obj - 1e-12 {
        return;
    }
    let mut children = enumerate_moves(ctx);
    // Order by immediate gain, best first.
    children.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite gains"));
    if let Some(w) = ctx.cfg.beam_width {
        children.truncate(w);
    }
    for (action, gain) in children {
        if ctx.cfg.improving_only && gain < 0.0 {
            continue;
        }
        if ctx.nodes >= ctx.cfg.node_limit || Instant::now() >= ctx.deadline {
            ctx.budget_hit = true;
            return;
        }
        let Ok(rec) = ctx.state.migrate(action.vm, action.pm, ctx.objective.frag_cores()) else {
            continue; // raced legality (shouldn't happen; moves pre-checked)
        };
        ctx.nodes += 1;
        let h = hash_state(&ctx.state);
        if ctx.visited.insert(h) {
            ctx.path.push(action);
            let obj = ctx.objective.value(&ctx.state);
            if obj < ctx.best_obj - 1e-12 {
                ctx.best_obj = obj;
                ctx.best_plan = ctx.path.clone();
            }
            dfs(ctx, remaining - 1);
            ctx.path.pop();
        }
        ctx.state.undo(&rec).expect("undo of a just-applied migration");
    }
}

/// Enumerates legal `(action, immediate gain)` pairs from the current
/// state. Gain is the objective drop of applying the action.
fn enumerate_moves(ctx: &mut SearchCtx<'_>) -> Vec<(Action, f64)> {
    let state = &mut ctx.state;
    let n_vms = state.num_vms();
    let n_pms = state.num_pms();
    let mut out = Vec::new();
    let current = ctx.objective.value(state);
    for k in 0..n_vms {
        let vm = VmId(k as u32);
        if ctx.constraints.is_pinned(vm) {
            continue;
        }
        // Cheap prune: a VM on a fragment-free PM whose removal cannot help
        // still might enable double moves; keep enumeration honest and let
        // the bound prune instead.
        for i in 0..n_pms {
            let pm = PmId(i as u32);
            if ctx.constraints.migration_legal(state, vm, pm).is_err() {
                continue;
            }
            let Ok(rec) = state.migrate(vm, pm, ctx.objective.frag_cores()) else {
                continue;
            };
            let gain = current - ctx.objective.value(state);
            state.undo(&rec).expect("undo probe");
            out.push((Action { vm, pm }, gain));
        }
    }
    out
}

/// Maximum objective drop any single migration can achieve, used as the
/// admissible per-move bound. Fragment mass on each touched NUMA can drop
/// by at most `X − 1` (single-NUMA granularity) and a move touches at most
/// four NUMAs; rates divide by the total free capacity, which is invariant
/// under migrations.
pub fn max_gain_per_move(state: &ClusterState, objective: Objective) -> f64 {
    let free_cpu = state.total_free_cpu().max(1) as f64;
    let free_mem = state.total_free_mem().max(1) as f64;
    match objective {
        Objective::FragRate { cores } | Objective::MnlToGoal { cores, .. } => {
            4.0 * (cores.saturating_sub(1)) as f64 / free_cpu
        }
        Objective::MixedVmType { lambda, small_cores, large_cores } => {
            // Double-NUMA fragment on one PM is bounded by the PM's free
            // CPU; a conservative per-move bound uses the largest PM.
            let max_pm_free = state.pms().iter().map(|p| p.free_cpu()).max().unwrap_or(0) as f64;
            lambda * 2.0 * max_pm_free.max((large_cores - 1) as f64 * 4.0) / free_cpu
                + (1.0 - lambda) * 4.0 * (small_cores.saturating_sub(1)) as f64 / free_cpu
        }
        Objective::MixedResource { lambda, cpu_cores, mem_gib } => {
            lambda * 4.0 * (mem_gib.saturating_sub(1)) as f64 / free_mem
                + (1.0 - lambda) * 4.0 * (cpu_cores.saturating_sub(1)) as f64 / free_cpu
        }
    }
}

/// Order-sensitive 64-bit hash of the placement vector (FNV-1a).
fn hash_state(state: &ClusterState) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for pl in state.placements() {
        mix(pl.pm.0 as u64 + 1);
        let numa_code = match pl.numa {
            vmr_sim::types::NumaPlacement::Single(j) => j as u64 + 1,
            vmr_sim::types::NumaPlacement::Double => 3,
        };
        mix(numa_code);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig, PmGroup};
    use vmr_sim::env::ReschedEnv;

    fn tiny_state(seed: u64) -> ClusterState {
        let cfg = ClusterConfig {
            pm_groups: vec![PmGroup { count: 4, cpu_per_numa: 44, mem_per_numa: 128 }],
            ..ClusterConfig::tiny()
        };
        generate_mapping(&cfg, seed).unwrap()
    }

    #[test]
    fn bnb_never_worse_than_initial() {
        let s = tiny_state(1);
        let cs = ConstraintSet::new(s.num_vms());
        let res = branch_and_bound(
            &s,
            &cs,
            Objective::default(),
            3,
            &SolverConfig { time_limit: Duration::from_millis(500), ..Default::default() },
        );
        assert!(res.objective <= s.fragment_rate(16) + 1e-12);
        assert!(res.plan.len() <= 3);
    }

    #[test]
    fn plan_replays_to_reported_objective() {
        let s = tiny_state(2);
        let cs = ConstraintSet::new(s.num_vms());
        let res = branch_and_bound(
            &s,
            &cs,
            Objective::default(),
            4,
            &SolverConfig { time_limit: Duration::from_millis(500), ..Default::default() },
        );
        let mut env = ReschedEnv::new(s, cs, Objective::default(), 4).unwrap();
        for &a in &res.plan {
            env.step(a).unwrap();
        }
        assert!(
            (env.objective_value() - res.objective).abs() < 1e-12,
            "replayed {} vs reported {}",
            env.objective_value(),
            res.objective
        );
    }

    /// Exhaustive B&B must match plain brute-force enumeration on a tiny
    /// instance with MNL 2.
    #[test]
    fn exact_matches_brute_force() {
        let s = tiny_state(3);
        let cs = ConstraintSet::new(s.num_vms());
        let obj = Objective::default();
        let res = branch_and_bound(&s, &cs, obj, 2, &SolverConfig::exact());
        assert!(res.proved_optimal);

        // Brute force over all (≤2)-step sequences.
        let mut best = obj.value(&s);
        let mut state = s.clone();
        let n_vms = state.num_vms();
        let n_pms = state.num_pms();
        for k1 in 0..n_vms {
            for i1 in 0..n_pms {
                let a1 = Action { vm: VmId(k1 as u32), pm: PmId(i1 as u32) };
                if cs.migration_legal(&state, a1.vm, a1.pm).is_err() {
                    continue;
                }
                let Ok(r1) = state.migrate(a1.vm, a1.pm, 16) else { continue };
                best = best.min(obj.value(&state));
                for k2 in 0..n_vms {
                    for i2 in 0..n_pms {
                        let a2 = Action { vm: VmId(k2 as u32), pm: PmId(i2 as u32) };
                        if cs.migration_legal(&state, a2.vm, a2.pm).is_err() {
                            continue;
                        }
                        let Ok(r2) = state.migrate(a2.vm, a2.pm, 16) else { continue };
                        best = best.min(obj.value(&state));
                        state.undo(&r2).unwrap();
                    }
                }
                state.undo(&r1).unwrap();
            }
        }
        assert!(
            (res.objective - best).abs() < 1e-12,
            "bnb {} vs brute force {}",
            res.objective,
            best
        );
    }

    #[test]
    fn deadline_is_respected() {
        let s = generate_mapping(&ClusterConfig::tiny(), 8).unwrap();
        let cs = ConstraintSet::new(s.num_vms());
        let budget = Duration::from_millis(100);
        let res = branch_and_bound(
            &s,
            &cs,
            Objective::default(),
            20,
            &SolverConfig { time_limit: budget, beam_width: None, ..Default::default() },
        );
        assert!(res.elapsed < budget + Duration::from_millis(300), "overran deadline");
    }

    #[test]
    fn more_mnl_never_hurts() {
        let s = tiny_state(5);
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = SolverConfig {
            time_limit: Duration::from_millis(400),
            beam_width: Some(16),
            ..Default::default()
        };
        let r1 = branch_and_bound(&s, &cs, Objective::default(), 1, &cfg);
        let r3 = branch_and_bound(&s, &cs, Objective::default(), 3, &cfg);
        assert!(r3.objective <= r1.objective + 1e-9);
    }

    #[test]
    fn warmstart_never_worse_than_incumbent() {
        let s = tiny_state(7);
        let cs = ConstraintSet::new(s.num_vms());
        let obj = Objective::default();
        // A greedy incumbent: the single best immediate move, repeated.
        let mut scratch = s.clone();
        let mut incumbent = Vec::new();
        for _ in 0..3 {
            let mut best: Option<(Action, f64)> = None;
            let before = obj.value(&scratch);
            for k in 0..scratch.num_vms() {
                for i in 0..scratch.num_pms() {
                    let a = Action { vm: VmId(k as u32), pm: PmId(i as u32) };
                    let Ok(rec) = scratch.migrate(a.vm, a.pm, 16) else { continue };
                    let gain = before - obj.value(&scratch);
                    scratch.undo(&rec).unwrap();
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((a, gain));
                    }
                }
            }
            let Some((a, _)) = best else { break };
            scratch.migrate(a.vm, a.pm, 16).unwrap();
            incumbent.push(a);
        }
        let incumbent_obj = obj.value(&scratch);

        // Zero search budget: the result must still be the incumbent.
        let cold = SolverConfig {
            time_limit: Duration::from_millis(0),
            node_limit: 0,
            ..Default::default()
        };
        let seeded = branch_and_bound_warmstart(&s, &cs, obj, 3, &cold, &incumbent);
        assert!(seeded.objective <= incumbent_obj + 1e-12);
        assert_eq!(seeded.plan, incumbent);

        // With real budget the warm-started search can only improve.
        let warm = branch_and_bound_warmstart(
            &s,
            &cs,
            obj,
            3,
            &SolverConfig { time_limit: Duration::from_millis(400), ..Default::default() },
            &incumbent,
        );
        assert!(warm.objective <= incumbent_obj + 1e-12);
    }

    #[test]
    fn warmstart_matches_exact_optimum() {
        let s = tiny_state(3);
        let cs = ConstraintSet::new(s.num_vms());
        let obj = Objective::default();
        let cold = branch_and_bound(&s, &cs, obj, 2, &SolverConfig::exact());
        // Seed with cold's own plan: the optimum must be unchanged and
        // still proved.
        let warm = branch_and_bound_warmstart(&s, &cs, obj, 2, &SolverConfig::exact(), &cold.plan);
        assert!(warm.proved_optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-12);
    }

    #[test]
    fn warmstart_skips_illegal_incumbent_steps() {
        let s = tiny_state(4);
        let cs = ConstraintSet::new(s.num_vms());
        let bogus = Action { vm: VmId(0), pm: PmId(s.num_pms() as u32) };
        let cold = SolverConfig {
            time_limit: Duration::from_millis(0),
            node_limit: 0,
            ..Default::default()
        };
        let res = branch_and_bound_warmstart(&s, &cs, Objective::default(), 3, &cold, &[bogus]);
        assert!(res.plan.is_empty(), "illegal incumbent step must be dropped");
        assert!((res.objective - s.fragment_rate(16)).abs() < 1e-12);
    }

    #[test]
    fn respects_pinned_vms() {
        let s = tiny_state(6);
        let mut cs = ConstraintSet::new(s.num_vms());
        for k in 0..s.num_vms() {
            cs.pin(VmId(k as u32)).unwrap();
        }
        let res = branch_and_bound(&s, &cs, Objective::default(), 5, &SolverConfig::default());
        assert!(res.plan.is_empty(), "all VMs pinned: no legal plan");
        assert!((res.objective - s.fragment_rate(16)).abs() < 1e-12);
    }
}
