//! Partitioned Optimization Problems (POP, Narayanan et al., SOSP '21) —
//! the approximate-MIP baseline the paper reports ByteDance uses in
//! production (§2.2, §5.1).
//!
//! POP randomly partitions the cluster into `k` subclusters (PMs split
//! uniformly; VMs follow their host PM), solves each subproblem with the
//! exact solver under a share of the time budget and MNL, and concatenates
//! the sub-plans. Solutions are only locally optimal — cross-partition
//! moves are never considered — which is exactly the deficiency the paper
//! measures.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::env::Action;
use vmr_sim::machine::{Placement, Pm, Vm};
use vmr_sim::objective::Objective;
use vmr_sim::types::{PmId, VmId};

use crate::bnb::{branch_and_bound, SolveResult, SolverConfig};

/// POP configuration.
#[derive(Debug, Clone, Copy)]
pub struct PopConfig {
    /// Number of subproblems (the paper uses 16 on the Medium dataset).
    pub partitions: usize,
    /// Per-subproblem solver configuration. The time budget here is the
    /// *total* budget; it is divided evenly across partitions.
    pub sub: SolverConfig,
    /// RNG seed for the random partition.
    pub seed: u64,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig { partitions: 16, sub: SolverConfig::default(), seed: 0 }
    }
}

/// Solves by random partitioning + per-partition branch-and-bound.
pub fn pop_solve(
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &PopConfig,
) -> SolveResult {
    let start = std::time::Instant::now();
    let k = cfg.partitions.max(1).min(initial.num_pms().max(1));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pm_ids: Vec<u32> = (0..initial.num_pms() as u32).collect();
    pm_ids.shuffle(&mut rng);

    let mut plan = Vec::new();
    let mut nodes = 0;
    let mut all_proved = true;
    let per_part_time = cfg.sub.time_limit / k as u32;
    let total_vms = initial.num_vms().max(1);
    let mut state = initial.clone();

    for part in 0..k {
        let part_pms: Vec<u32> = pm_ids.iter().copied().skip(part).step_by(k).collect();
        if part_pms.is_empty() {
            continue;
        }
        let Some(sub) = extract_subcluster(&state, constraints, &part_pms) else {
            continue;
        };
        if sub.state.num_vms() == 0 {
            continue;
        }
        // MNL share proportional to the partition's VM population.
        let sub_mnl = ((mnl * sub.state.num_vms()) as f64 / total_vms as f64).round() as usize;
        let sub_mnl = sub_mnl.max(1);
        let sub_cfg = SolverConfig { time_limit: per_part_time, ..cfg.sub };
        let res = branch_and_bound(&sub.state, &sub.constraints, objective, sub_mnl, &sub_cfg);
        nodes += res.nodes_expanded;
        all_proved &= res.proved_optimal;
        for a in res.plan {
            let global =
                Action { vm: sub.vm_map[a.vm.0 as usize], pm: sub.pm_map[a.pm.0 as usize] };
            // Apply to the global state; POP sub-plans are disjoint in PMs
            // so these cannot conflict, but re-check defensively.
            if state.migrate(global.vm, global.pm, objective.frag_cores()).is_ok() {
                plan.push(global);
            }
        }
    }
    SolveResult {
        objective: objective.value(&state),
        plan,
        nodes_expanded: nodes,
        elapsed: start.elapsed(),
        proved_optimal: all_proved,
    }
}

/// A subcluster extracted from a global state, with id re-mappings.
pub struct SubCluster {
    /// The reindexed subcluster state.
    pub state: ClusterState,
    /// Constraints restricted to the subcluster's VMs.
    pub constraints: ConstraintSet,
    /// Sub VM id → global VM id.
    pub vm_map: Vec<VmId>,
    /// Sub PM id → global PM id.
    pub pm_map: Vec<PmId>,
}

/// Restricts a cluster to a subset of PMs (VMs follow their host PM).
/// Returns `None` if reconstruction fails (cannot happen for consistent
/// inputs; defensive).
pub fn extract_subcluster(
    state: &ClusterState,
    constraints: &ConstraintSet,
    pm_subset: &[u32],
) -> Option<SubCluster> {
    let mut pm_map = Vec::with_capacity(pm_subset.len());
    let mut pm_rev = vec![None; state.num_pms()];
    let mut pms: Vec<Pm> = Vec::with_capacity(pm_subset.len());
    for (new_id, &old) in pm_subset.iter().enumerate() {
        let mut pm = state.pm(PmId(old)).clone();
        pm.id = PmId(new_id as u32);
        pm_rev[old as usize] = Some(new_id as u32);
        pm_map.push(PmId(old));
        pms.push(pm);
    }
    let mut vms: Vec<Vm> = Vec::new();
    let mut placements: Vec<Placement> = Vec::new();
    let mut vm_map = Vec::new();
    let mut vm_rev = vec![None; state.num_vms()];
    for &old_pm in pm_subset {
        for &vm_id in state.vms_on(PmId(old_pm)) {
            let mut vm = *state.vm(vm_id);
            let old_pl = state.placement(vm_id);
            vm_rev[vm_id.0 as usize] = Some(vms.len() as u32);
            vm.id = VmId(vms.len() as u32);
            vm_map.push(vm_id);
            vms.push(vm);
            placements.push(Placement {
                pm: PmId(pm_rev[old_pl.pm.0 as usize].expect("host PM in subset")),
                numa: old_pl.numa,
            });
        }
    }
    let mut sub_cs = ConstraintSet::new(vms.len());
    for (new_idx, &old_id) in vm_map.iter().enumerate() {
        if constraints.is_pinned(old_id) {
            sub_cs.pin(VmId(new_idx as u32)).ok()?;
        }
        for &other in constraints.conflicts_of(old_id) {
            if let Some(new_other) = vm_rev[other.0 as usize] {
                sub_cs.add_conflict(VmId(new_idx as u32), VmId(new_other)).ok()?;
            }
        }
    }
    let state = ClusterState::new(pms, vms, placements).ok()?;
    Some(SubCluster { state, constraints: sub_cs, vm_map, pm_map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};

    fn state() -> ClusterState {
        generate_mapping(&ClusterConfig::tiny(), 21).unwrap()
    }

    #[test]
    fn subcluster_preserves_local_structure() {
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let sub = extract_subcluster(&s, &cs, &[0, 2, 4]).unwrap();
        sub.state.audit().unwrap();
        assert_eq!(sub.state.num_pms(), 3);
        // Every extracted VM keeps its flavor.
        for (new_idx, old_id) in sub.vm_map.iter().enumerate() {
            let a = sub.state.vm(VmId(new_idx as u32));
            let b = s.vm(*old_id);
            assert_eq!((a.cpu, a.mem, a.numa), (b.cpu, b.mem, b.numa));
        }
        // Fragment mass of the subcluster equals the sum over its PMs.
        let expect: u64 = [0u32, 2, 4].iter().map(|&i| s.pm(PmId(i)).cpu_fragment(16) as u64).sum();
        assert_eq!(sub.state.total_cpu_fragment(16), expect);
    }

    #[test]
    fn subcluster_restricts_constraints() {
        let s = state();
        let mut cs = ConstraintSet::new(s.num_vms());
        // Pin the first VM hosted on PM 0 and conflict the first two VMs there.
        let on0 = s.vms_on(PmId(0)).to_vec();
        if on0.len() >= 2 {
            cs.pin(on0[0]).unwrap();
            cs.add_conflict(on0[0], on0[1]).unwrap();
        }
        let sub = extract_subcluster(&s, &cs, &[0]).unwrap();
        if on0.len() >= 2 {
            let new0 = sub.vm_map.iter().position(|&v| v == on0[0]).unwrap();
            let new1 = sub.vm_map.iter().position(|&v| v == on0[1]).unwrap();
            assert!(sub.constraints.is_pinned(VmId(new0 as u32)));
            assert!(sub.constraints.conflicts_of(VmId(new0 as u32)).contains(&VmId(new1 as u32)));
        }
    }

    #[test]
    fn pop_plan_is_legal_and_improves() {
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = PopConfig {
            partitions: 3,
            sub: SolverConfig {
                time_limit: Duration::from_millis(600),
                beam_width: Some(16),
                ..Default::default()
            },
            seed: 7,
        };
        let res = pop_solve(&s, &cs, Objective::default(), 6, &cfg);
        // Replay the plan on a fresh copy: must be legal and reach the
        // reported objective.
        let mut replay = s.clone();
        for a in &res.plan {
            replay.migrate(a.vm, a.pm, 16).unwrap();
        }
        assert!((Objective::default().value(&replay) - res.objective).abs() < 1e-12);
        assert!(res.objective <= s.fragment_rate(16) + 1e-12);
        assert!(res.plan.len() <= 6 + cfg.partitions); // rounding slack
    }

    #[test]
    fn pop_respects_mnl_roughly() {
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = PopConfig {
            partitions: 2,
            sub: SolverConfig {
                time_limit: Duration::from_millis(400),
                beam_width: Some(8),
                ..Default::default()
            },
            seed: 3,
        };
        let res = pop_solve(&s, &cs, Objective::default(), 4, &cfg);
        assert!(res.plan.len() <= 4 + 2, "each partition may round up by one");
    }
}
