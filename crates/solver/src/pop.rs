//! Partitioned Optimization Problems (POP, Narayanan et al., SOSP '21) —
//! the approximate-MIP baseline the paper reports ByteDance uses in
//! production (§2.2, §5.1).
//!
//! POP randomly partitions the cluster into `k` subclusters (PMs split
//! uniformly; VMs follow their host PM), solves each subproblem with the
//! exact solver under a share of the time budget and MNL, and concatenates
//! the sub-plans. Solutions are only locally optimal — cross-partition
//! moves are never considered — which is exactly the deficiency the paper
//! measures.
//!
//! Since PR 5 the partitioning machinery lives in the shared
//! [`vmr_sim::shard`] layer (re-exported here for compatibility): POP is
//! `fleet_plan` with [`ShardStrategy::Random`], branch-and-bound as the
//! per-shard planner, sequential workers, and **no** cross-shard
//! refinement — faithfully the baseline, but with the global MNL honored
//! exactly. Sub-budgets come from largest-remainder apportionment
//! (`Σ sub_mnl ≤ mnl`; the old per-partition `round().max(1)` could
//! overdraw the operator's budget by up to the partition count) and the
//! stitched plan is additionally capped by the shared [`MnlLedger`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;
use vmr_sim::shard::{fleet_plan, FleetConfig, ShardStrategy};

// Compatibility re-exports: the extraction machinery was promoted from
// this module into the shared shard layer in PR 5.
pub use vmr_sim::shard::{extract_subcluster, SubCluster};

use crate::bnb::{branch_and_bound, SolveResult, SolverConfig};

/// Minimum wall-clock budget any partition receives. Dividing a small
/// total budget by a large partition count used to integer-divide to a
/// zero `Duration`, turning every subproblem into an instant deadline
/// miss; clamping keeps a 16-partition solve under a 1 ms total budget
/// well-defined (each partition gets a token slice and returns its best
/// anytime plan, possibly empty).
pub const MIN_PARTITION_TIME: Duration = Duration::from_millis(1);

/// POP configuration.
#[derive(Debug, Clone, Copy)]
pub struct PopConfig {
    /// Number of subproblems (the paper uses 16 on the Medium dataset).
    pub partitions: usize,
    /// Per-subproblem solver configuration. The time budget here is the
    /// *total* budget; it is divided evenly across partitions (clamped to
    /// [`MIN_PARTITION_TIME`] each).
    pub sub: SolverConfig,
    /// RNG seed for the random partition.
    pub seed: u64,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig { partitions: 16, sub: SolverConfig::default(), seed: 0 }
    }
}

/// Solves by random partitioning + per-partition branch-and-bound.
///
/// The returned plan never exceeds the global `mnl`: partition budgets
/// are apportioned by largest remainder over VM populations and the
/// stitched plan is routed through the shared global ledger.
pub fn pop_solve(
    initial: &ClusterState,
    constraints: &ConstraintSet,
    objective: Objective,
    mnl: usize,
    cfg: &PopConfig,
) -> SolveResult {
    let k = cfg.partitions.max(1).min(initial.num_pms().max(1));
    let per_part_time = (cfg.sub.time_limit / k as u32).max(MIN_PARTITION_TIME);
    let sub_cfg = SolverConfig { time_limit: per_part_time, ..cfg.sub };
    let nodes = AtomicUsize::new(0);
    let some_unproved = AtomicBool::new(false);
    let fleet_cfg = FleetConfig {
        shards: k,
        strategy: ShardStrategy::Random,
        seed: cfg.seed,
        // The baseline is sequential (its production deployments solve
        // partitions on one MIP license); parallel sharding is the fleet
        // planner's upgrade, not POP's.
        workers: 1,
        refine: false,
    };
    let out = fleet_plan(initial, constraints, objective, mnl, &fleet_cfg, |_, sub, sub_mnl| {
        let res = branch_and_bound(&sub.state, &sub.constraints, objective, sub_mnl, &sub_cfg);
        nodes.fetch_add(res.nodes_expanded, Ordering::Relaxed);
        if !res.proved_optimal {
            some_unproved.store(true, Ordering::Relaxed);
        }
        res.plan
    });
    SolveResult {
        objective: out.objective,
        plan: out.plan,
        nodes_expanded: nodes.into_inner(),
        elapsed: out.elapsed,
        proved_optimal: !some_unproved.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vmr_sim::dataset::{generate_mapping, ClusterConfig};

    fn state() -> ClusterState {
        generate_mapping(&ClusterConfig::tiny(), 21).unwrap()
    }

    #[test]
    fn pop_plan_is_legal_and_improves() {
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = PopConfig {
            partitions: 3,
            sub: SolverConfig {
                time_limit: Duration::from_millis(600),
                beam_width: Some(16),
                ..Default::default()
            },
            seed: 7,
        };
        let res = pop_solve(&s, &cs, Objective::default(), 6, &cfg);
        // Replay the plan on a fresh copy: must be legal and reach the
        // reported objective.
        let mut replay = s.clone();
        for a in &res.plan {
            replay.migrate(a.vm, a.pm, 16).unwrap();
        }
        assert!((Objective::default().value(&replay) - res.objective).abs() < 1e-12);
        assert!(res.objective <= s.fragment_rate(16) + 1e-12);
        // The global budget is exact — no per-partition rounding slack.
        assert!(res.plan.len() <= 6);
    }

    #[test]
    fn pop_respects_global_mnl_exactly() {
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = PopConfig {
            partitions: 2,
            sub: SolverConfig {
                time_limit: Duration::from_millis(400),
                beam_width: Some(8),
                ..Default::default()
            },
            seed: 3,
        };
        let res = pop_solve(&s, &cs, Objective::default(), 4, &cfg);
        assert!(res.plan.len() <= 4, "no partition round-up may overdraw the budget");
        // A budget smaller than the partition count stays exact too —
        // the old `.max(1)` floor made this case overdraw.
        let res = pop_solve(&s, &cs, Objective::default(), 1, &cfg);
        assert!(res.plan.len() <= 1);
    }

    #[test]
    fn pop_survives_zero_budget_partitions() {
        // 16 partitions sharing a 1 ms budget used to integer-divide to a
        // 0 ns per-partition deadline; the clamp keeps every subproblem
        // well-defined and the solve returns a (possibly empty) plan.
        let s = state();
        let cs = ConstraintSet::new(s.num_vms());
        let cfg = PopConfig {
            partitions: 16,
            sub: SolverConfig {
                time_limit: Duration::from_millis(1),
                beam_width: Some(4),
                ..Default::default()
            },
            seed: 5,
        };
        let res = pop_solve(&s, &cs, Objective::default(), 8, &cfg);
        assert!(res.plan.len() <= 8);
        let mut replay = s.clone();
        for a in &res.plan {
            replay.migrate(a.vm, a.pm, 16).unwrap();
        }
        assert!(res.objective <= s.fragment_rate(16) + 1e-12, "anytime result never regresses");
    }
}
