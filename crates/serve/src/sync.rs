//! Poison-recovering lock primitives for the daemon.
//!
//! Every mutex in the serving path used to be acquired with
//! `.lock().expect("...")` — correct only as long as no holder ever
//! panics, and a panic *anywhere* then cascades: the poisoned lock
//! panics the next acquirer, which poisons whatever *it* holds. These
//! helpers recover the guard from a [`PoisonError`] instead. That is
//! sound here because every critical section in this crate leaves its
//! data structurally valid at each step (the WAL's logged-then-acked
//! discipline means a half-applied delta is re-derived from the log on
//! restart, not trusted from memory), so the guard of a poisoned lock
//! is still safe to read and write. With these, the request path has no
//! panic sites left — the zero-panic contract holds by construction,
//! which the `vmr-analyze` P001 lint enforces.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Mutex acquisition that shrugs off poison.
pub(crate) trait LockExt<T> {
    /// Acquires the mutex, recovering the guard if a previous holder
    /// panicked.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`] with poison recovery.
pub(crate) fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with poison recovery. The timed-out flag
/// is dropped: callers here re-check their predicate and deadline in a
/// loop, which is the only robust pattern anyway.
pub(crate) fn cv_wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock_recover(), 7, "guard recovered despite poison");
        *m.lock_recover() = 8;
        assert_eq!(*m.lock_recover(), 8);
    }

    #[test]
    fn cv_wait_timeout_recovers() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (m, cv) = (&pair.0, &pair.1);
        let g = m.lock_recover();
        let g = cv_wait_timeout(cv, g, Duration::from_millis(1));
        assert!(!*g);
    }
}
