//! Cross-session GEMM batching for checkpoint-backed plan requests.
//!
//! PR 3's plan coalescing deduplicates *identical* requests within one
//! session; this module batches the policy work of *different* sessions.
//! Every decision step of an agent plan starts with the entity embedding
//! networks — purely row-wise GEMM chains — so concurrent plans can stack
//! their PM/VM feature matrices and run **one** batched GEMM
//! ([`vmr_core::model::Vmr2lModel::embed_batch`]) instead of k separate
//! ones. Row-wise ops make the split results bit-identical to solo
//! evaluation, so batching can never change a served plan (enforced by
//! `tests/batching.rs`).
//!
//! Protocol: submissions rendezvous on a mutex'd queue. The first
//! arrival of a round becomes the leader; it waits up to the batch
//! window for the other *active* plans to submit (when only one plan is
//! in flight it computes immediately — the single-tenant case pays zero
//! added latency), then claims the queue, computes the batch, and
//! publishes per-submission results under a round id. Arrivals during a
//! computation simply open the next round, so no submission can strand.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use vmr_core::model::{Vmr2lModel, Vmr2lModelF32};
use vmr_nn::tensor::Tensor;
use vmr_nn::tensor32::Tensor32;

use crate::sync::LockExt;

/// Default leader wait for peers (only paid when ≥ 2 plans are active).
pub const DEFAULT_WINDOW: Duration = Duration::from_micros(500);

/// Batch-occupancy histogram (`serve_embed_batch_occupancy`, unit
/// `count`, in the process-wide registry): one sample per computed round
/// with the number of submissions it carried — the distribution tells an
/// operator whether cross-session batching is actually firing (p50 > 1)
/// or every plan is running solo.
fn occupancy_hist() -> &'static std::sync::Arc<vmr_telemetry::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<vmr_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        vmr_telemetry::global().histogram("serve_embed_batch_occupancy", vmr_telemetry::Unit::Count)
    })
}

/// Aggregate batching counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batched GEMM rounds computed.
    pub batches: u64,
    /// Total submissions served across all rounds.
    pub items: u64,
    /// Largest round size observed.
    pub peak: u64,
}

#[derive(Default)]
struct RoundOut {
    results: Vec<Option<(Tensor, Tensor)>>,
    remaining: usize,
}

#[derive(Default)]
struct RoundOut32 {
    results: Vec<Option<(Tensor32, Tensor32)>>,
    remaining: usize,
}

#[derive(Default)]
struct Inner {
    /// Plans currently inside [`EmbedBatcher::plan_guard`] scopes.
    active: usize,
    /// Round id of the currently-collecting f64 queue.
    round: u64,
    /// Pending f64 submissions (feature matrices) of the current round.
    queue: Vec<(Tensor, Tensor)>,
    /// Published f64 results by round id.
    done: HashMap<u64, RoundOut>,
    /// Round id of the currently-collecting f32 queue. The two precision
    /// lanes never share a round: a batched GEMM runs entirely in one
    /// numeric type, so mixing submissions would force the leader to pick
    /// a precision some caller did not ask for.
    round32: u64,
    /// Pending f32-lane submissions (features are still f64 — the cast
    /// happens inside the batched forward).
    queue32: Vec<(Tensor, Tensor)>,
    /// Published f32 results by round id.
    done32: HashMap<u64, RoundOut32>,
}

/// The rendezvous point. One per policy registry; shared by every worker
/// thread serving an agent plan.
pub struct EmbedBatcher {
    window: Duration,
    inner: Mutex<Inner>,
    cv: Condvar,
    batches: AtomicU64,
    items: AtomicU64,
    peak: AtomicU64,
}

/// RAII marker for an in-flight agent plan (maintains the `active` gauge
/// the leader uses to decide whether waiting for peers is worthwhile).
pub struct PlanGuard<'a> {
    batcher: &'a EmbedBatcher,
}

impl Drop for PlanGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.batcher.inner.lock_recover();
        inner.active -= 1;
        drop(inner);
        // A leader may be waiting for this plan's next submission.
        self.batcher.cv.notify_all();
    }
}

impl EmbedBatcher {
    /// Batcher with the given peer-wait window.
    pub fn new(window: Duration) -> Self {
        EmbedBatcher {
            window,
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            batches: AtomicU64::new(0),
            items: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Marks a plan as in flight for the guard's lifetime.
    pub fn plan_guard(&self) -> PlanGuard<'_> {
        self.inner.lock_recover().active += 1;
        PlanGuard { batcher: self }
    }

    /// Counters so far.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed),
        }
    }

    /// Computes the entity embeddings for one decision step, batched with
    /// whatever other active plans submit within the window. Returns the
    /// `(pm_embeddings, vm_embeddings)` pair — bit-identical to
    /// `model.embed_fwd` run alone.
    pub fn embed(&self, model: &Vmr2lModel, pm: &Tensor, vm: &Tensor) -> (Tensor, Tensor) {
        let mut inner = self.inner.lock_recover();
        let round = inner.round;
        let idx = inner.queue.len();
        inner.queue.push((pm.clone(), vm.clone()));
        if idx == 0 {
            // Leader of this round: wait (bounded) for the other active
            // plans to submit — unless this is the only plan in flight,
            // in which case compute immediately (the single-tenant case
            // pays zero added latency).
            let deadline = Instant::now() + self.window;
            while inner.active > 1 && inner.queue.len() < inner.active {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let guard = crate::sync::cv_wait_timeout(&self.cv, inner, deadline - now);
                inner = guard;
            }
            let batch = std::mem::take(&mut inner.queue);
            inner.round += 1;
            drop(inner);

            // If the computation unwinds (a panicking kernel assert on a
            // malformed session), the guard publishes an all-`None` round
            // so followers fall back to solo evaluation instead of
            // blocking forever on the condvar.
            let mut abandon = AbandonGuard { batcher: self, round, followers: batch.len() - 1 };
            let refs: Vec<(&Tensor, &Tensor)> = batch.iter().map(|(p, v)| (p, v)).collect();
            let outs = model.embed_batch(&refs);
            abandon.followers = 0; // disarm: publish real results instead
            std::mem::forget(abandon);
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.items.fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.peak.fetch_max(batch.len() as u64, Ordering::Relaxed);
            if vmr_telemetry::enabled() {
                occupancy_hist().record(batch.len() as u64);
            }

            let remaining = outs.len();
            let results = outs.into_iter().map(Some).collect();
            let mut guard = self.inner.lock_recover();
            guard.done.insert(round, RoundOut { results, remaining });
            inner = guard;
        } else {
            // Wake a leader that may be waiting for this submission.
            self.cv.notify_all();
        }
        self.cv.notify_all();
        loop {
            if let Some(out) = inner.done.get_mut(&round) {
                let slot = out.results.get_mut(idx).and_then(Option::take);
                out.remaining -= 1;
                if out.remaining == 0 {
                    inner.done.remove(&round);
                }
                return match slot {
                    Some(result) => result,
                    None => {
                        // Abandoned round (leader panicked): evaluate solo.
                        drop(inner);
                        let mut outs = model.embed_batch(&[(pm, vm)]);
                        outs.remove(0)
                    }
                };
            }
            inner = crate::sync::cv_wait(&self.cv, inner);
        }
    }

    /// [`EmbedBatcher::embed`] on the f32 lane: batches only with other
    /// f32 submissions (rounds are per-precision) and returns the cast
    /// embeddings — bit-identical to `model32.embed_fwd` run alone.
    ///
    /// The `active` gauge counts in-flight plans of *both* precisions, so
    /// a leader here may wait out the window for peers that turn out to
    /// be on the f64 lane; that costs bounded latency, never correctness.
    pub fn embed_f32(
        &self,
        model32: &Vmr2lModelF32,
        pm: &Tensor,
        vm: &Tensor,
    ) -> (Tensor32, Tensor32) {
        let mut inner = self.inner.lock_recover();
        let round = inner.round32;
        let idx = inner.queue32.len();
        inner.queue32.push((pm.clone(), vm.clone()));
        if idx == 0 {
            let deadline = Instant::now() + self.window;
            while inner.active > 1 && inner.queue32.len() < inner.active {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let guard = crate::sync::cv_wait_timeout(&self.cv, inner, deadline - now);
                inner = guard;
            }
            let batch = std::mem::take(&mut inner.queue32);
            inner.round32 += 1;
            drop(inner);

            // Same unwind story as the f64 lane: publish an all-`None`
            // round on panic so followers fall back to solo evaluation.
            let mut abandon = AbandonGuard32 { batcher: self, round, followers: batch.len() - 1 };
            let refs: Vec<(&Tensor, &Tensor)> = batch.iter().map(|(p, v)| (p, v)).collect();
            let outs = model32.embed_batch(&refs);
            abandon.followers = 0; // disarm: publish real results instead
            std::mem::forget(abandon);
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.items.fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.peak.fetch_max(batch.len() as u64, Ordering::Relaxed);
            if vmr_telemetry::enabled() {
                occupancy_hist().record(batch.len() as u64);
            }

            let remaining = outs.len();
            let results = outs.into_iter().map(Some).collect();
            let mut guard = self.inner.lock_recover();
            guard.done32.insert(round, RoundOut32 { results, remaining });
            inner = guard;
        } else {
            // Wake a leader that may be waiting for this submission.
            self.cv.notify_all();
        }
        self.cv.notify_all();
        loop {
            if let Some(out) = inner.done32.get_mut(&round) {
                let slot = out.results.get_mut(idx).and_then(Option::take);
                out.remaining -= 1;
                if out.remaining == 0 {
                    inner.done32.remove(&round);
                }
                return match slot {
                    Some(result) => result,
                    None => {
                        // Abandoned round (leader panicked): evaluate solo.
                        drop(inner);
                        let mut outs = model32.embed_batch(&[(pm, vm)]);
                        outs.remove(0)
                    }
                };
            }
            inner = crate::sync::cv_wait(&self.cv, inner);
        }
    }
}

/// Publishes an abandoned round on unwind so followers never strand.
struct AbandonGuard<'a> {
    batcher: &'a EmbedBatcher,
    round: u64,
    followers: usize,
}

impl Drop for AbandonGuard<'_> {
    fn drop(&mut self) {
        if self.followers == 0 {
            return;
        }
        let mut inner = self.batcher.inner.lock_recover();
        inner.done.insert(self.round, RoundOut { results: Vec::new(), remaining: self.followers });
        drop(inner);
        self.batcher.cv.notify_all();
    }
}

/// [`AbandonGuard`] for the f32 lane.
struct AbandonGuard32<'a> {
    batcher: &'a EmbedBatcher,
    round: u64,
    followers: usize,
}

impl Drop for AbandonGuard32<'_> {
    fn drop(&mut self) {
        if self.followers == 0 {
            return;
        }
        let mut inner = self.batcher.inner.lock_recover();
        inner
            .done32
            .insert(self.round, RoundOut32 { results: Vec::new(), remaining: self.followers });
        drop(inner);
        self.batcher.cv.notify_all();
    }
}
