//! Per-session write-ahead log: the durable source of truth behind
//! `vmr serve --data-dir`.
//!
//! Every mutation a session acknowledges — an applied [`ClusterDelta`],
//! a committed plan — is first appended to the session's log as a
//! length-prefixed, CRC32-checksummed record carrying a monotone LSN,
//! and fsynced (group-commit: every [`DurabilityConfig::sync_every`]
//! records) before the response goes out. Periodically the log is
//! compacted: the committed state is serialized through the existing
//! [`SessionSnapshot`] shape into an atomically-renamed snapshot file,
//! and a fresh (empty) log replaces the old one. Recovery (see
//! [`crate::recovery`]) is snapshot + log tail.
//!
//! ## On-disk layout
//!
//! ```text
//! <data-dir>/sessions/<name>/snapshot.json   # SnapshotFile { lsn, snapshot }
//! <data-dir>/sessions/<name>/wal.log         # records with lsn > snapshot.lsn
//! ```
//!
//! ## Record format
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = serde_json(WalRecord { lsn, body })
//! ```
//!
//! A torn tail (crash mid-append: short header, short payload, or a
//! checksum mismatch running to end-of-file) is detected and *dropped
//! whole* — a record is either fully applied at recovery or not at all.
//! A checksum/framing failure with more bytes behind it is corruption,
//! not a crash artifact: the scan stops there, recovery serves the good
//! prefix, and the session degrades to read-only instead of guessing.
//!
//! All file writes go through the [`WalIo`] trait so the fault-injection
//! harness ([`FaultControl`]) can fail, short-write, or delay any append
//! or fsync on command — which is how the disk-full / torn-write /
//! corrupt-record recovery paths stay tested instead of theoretical.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use vmr_sim::env::ClusterDelta;
use vmr_telemetry::{Histogram, Timer};

use crate::proto::{DurabilityStats, SessionSnapshot, WireAction};

/// Optional phase histograms a [`SessionLog`] records into. `Default`
/// (all `None`) records nothing; the daemon hands every log its
/// pre-registered `serve_wal_*` handles so append, fsync, and compaction
/// time show up split out in the `metrics` op.
#[derive(Clone, Default)]
pub struct WalMetrics {
    /// Record encode + file append time (excludes the group-commit
    /// fsync, which has its own histogram).
    pub append: Option<Arc<Histogram>>,
    /// Group-commit fsync time.
    pub fsync: Option<Arc<Histogram>>,
    /// Snapshot compaction time (serialize + atomic rename + log swap).
    pub compact: Option<Arc<Histogram>>,
}

impl WalMetrics {
    fn observe(hist: &Option<Arc<Histogram>>, t: Timer) {
        if let Some(h) = hist {
            t.observe(h);
        }
    }
}

/// Sanity cap on one record's payload (far above any real delta; a
/// length field beyond this is treated as corruption, not allocation
/// advice).
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// One durable mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalBody {
    /// A [`ClusterDelta`] the session applied and acknowledged.
    Delta(ClusterDelta),
    /// A plan the session committed (replayed action by action at
    /// recovery, exactly like the live commit path).
    Commit(Vec<WireAction>),
}

/// One log record: monotone LSN plus the mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Log sequence number: strictly increasing within a session, never
    /// reset (compaction remembers it in the snapshot file).
    pub lsn: u64,
    /// The mutation.
    pub body: WalBody,
}

/// The snapshot file: the committed state as of `lsn` (log records with
/// `lsn` ≤ this are already folded in and skipped at replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// LSN the snapshot covers.
    pub lsn: u64,
    /// The state, in the existing wire-snapshot serialization.
    pub snapshot: SessionSnapshot,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table-driven, built at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c; // vmr-analyze: allow(P001) reason="const fn; i < 256 is the loop bound of the 256-slot table"
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // vmr-analyze: allow(P001) reason="index masked to 0..=255 against the 256-entry table"
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encodes one record into the on-disk framing.
pub fn encode_record(record: &WalRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let payload = payload.as_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// How a log scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailState {
    /// The file ends exactly on a record boundary.
    Clean,
    /// The file ends with an incomplete record (crash mid-append): the
    /// torn bytes were dropped whole.
    Torn {
        /// Bytes discarded after the last whole record.
        dropped_bytes: usize,
    },
    /// A record failed its checksum / framing / LSN-monotonicity check
    /// with more data behind it: real corruption. Everything from the
    /// bad record on is dropped and the session must not append again.
    Corrupt {
        /// Byte offset of the bad record.
        at_offset: usize,
        /// Why the record was rejected.
        reason: String,
    },
}

/// Result of scanning a log file.
#[derive(Debug)]
pub struct LogScan {
    /// The whole, checksummed, monotone records with `lsn > after_lsn`.
    pub records: Vec<WalRecord>,
    /// Highest LSN seen (including skipped pre-snapshot records);
    /// `after_lsn` if the log held none.
    pub last_lsn: u64,
    /// How the scan ended.
    pub tail: TailState,
}

/// Scans raw log bytes, validating framing, CRC, and LSN monotonicity.
///
/// Records with `lsn <= after_lsn` are validated but skipped — they are
/// already folded into the snapshot (a crash between the snapshot rename
/// and the log swap legitimately leaves them behind).
pub fn scan_log(bytes: &[u8], after_lsn: u64) -> LogScan {
    let mut records = Vec::new();
    let mut last_lsn = after_lsn;
    let mut offset = 0usize;
    let mut prev_lsn: Option<u64> = None;
    loop {
        // vmr-analyze: allow(P001) reason="offset advances by exactly the bytes consumed, so it never passes len"
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return LogScan { records, last_lsn, tail: TailState::Clean };
        }
        if rest.len() < 8 {
            return LogScan {
                records,
                last_lsn,
                tail: TailState::Torn { dropped_bytes: rest.len() },
            };
        }
        // vmr-analyze: allow(P001) reason="rest.len() >= 8 checked above; torn tails return before this"
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        // vmr-analyze: allow(P001) reason="rest.len() >= 8 checked above; torn tails return before this"
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES {
            return LogScan {
                records,
                last_lsn,
                tail: TailState::Corrupt {
                    at_offset: offset,
                    reason: format!("record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"),
                },
            };
        }
        if rest.len() - 8 < len {
            // The payload runs past end-of-file: a torn append.
            return LogScan {
                records,
                last_lsn,
                tail: TailState::Torn { dropped_bytes: rest.len() },
            };
        }
        // vmr-analyze: allow(P001) reason="rest.len() - 8 >= len checked above (torn-append branch)"
        let payload = &rest[8..8 + len];
        let reject = |reason: String, records: Vec<WalRecord>, last_lsn: u64| {
            // A bad record followed by nothing is indistinguishable from
            // a torn append; a bad record with data behind it is not.
            if offset + 8 + len == bytes.len() {
                LogScan {
                    records,
                    last_lsn,
                    tail: TailState::Torn { dropped_bytes: bytes.len() - offset },
                }
            } else {
                LogScan {
                    records,
                    last_lsn,
                    tail: TailState::Corrupt { at_offset: offset, reason },
                }
            }
        };
        if crc32(payload) != crc {
            return reject("checksum mismatch".into(), records, last_lsn);
        }
        let record: WalRecord = match serde_json::from_slice(payload) {
            Ok(r) => r,
            Err(e) => return reject(format!("unparseable payload: {e:?}"), records, last_lsn),
        };
        if let Some(prev) = prev_lsn {
            if record.lsn <= prev {
                return reject(
                    format!("LSN {} not monotone after {}", record.lsn, prev),
                    records,
                    last_lsn,
                );
            }
        }
        prev_lsn = Some(record.lsn);
        if record.lsn > after_lsn {
            last_lsn = record.lsn;
            records.push(record);
        }
        offset += 8 + len;
    }
}

// ---------------------------------------------------------------------------
// The write path: a pluggable file handle so faults can be injected.
// ---------------------------------------------------------------------------

/// A writable log/snapshot file. The factory always creates (or
/// truncates) the file at the given path — `SessionLog` never reopens a
/// file for append, so every handle starts at offset zero.
pub trait WalIo: Send {
    /// Appends bytes at the end of the file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Makes everything appended so far durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// Opens a [`WalIo`] handle (create-or-truncate) at a path.
pub type WalIoFactory = Arc<dyn Fn(&Path) -> io::Result<Box<dyn WalIo>> + Send + Sync>;

struct FileIo(File);

impl WalIo for FileIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

/// The production factory: plain `std::fs::File` with `sync_all`.
pub fn file_io_factory() -> WalIoFactory {
    Arc::new(|path: &Path| Ok(Box::new(FileIo(File::create(path)?)) as Box<dyn WalIo>))
}

/// Shared remote control for the fault-injection harness: flip a switch
/// here and the next I/O operation on any [`WalIo`] built by
/// [`FaultControl::factory`] misbehaves accordingly.
#[derive(Default)]
pub struct FaultControl {
    /// Fail the next N appends with `ENOSPC`-style errors (disk full).
    pub fail_appends: AtomicU32,
    /// Short-write the next N appends: write only the first half of the
    /// buffer but report success — the torn-write crash simulation.
    pub short_appends: AtomicU32,
    /// Fail the next N fsyncs.
    pub fail_syncs: AtomicU32,
    /// Delay every append by this many microseconds (slow-disk mode).
    pub delay_us: AtomicU64,
}

impl FaultControl {
    /// A fresh, all-healthy control.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Wraps the production file I/O with this control.
    pub fn factory(self: &Arc<Self>) -> WalIoFactory {
        let ctl = Arc::clone(self);
        let inner = file_io_factory();
        Arc::new(move |path: &Path| {
            let io = inner(path)?;
            Ok(Box::new(FaultyIo { inner: io, ctl: Arc::clone(&ctl) }) as Box<dyn WalIo>)
        })
    }

    fn take(counter: &AtomicU32) -> bool {
        counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }
}

struct FaultyIo {
    inner: Box<dyn WalIo>,
    ctl: Arc<FaultControl>,
}

impl WalIo for FaultyIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        // vmr-analyze: allow(A001) reason="fault-injection knob read by the test harness; no ordering contract with other memory"
        let delay = self.ctl.delay_us.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
        if FaultControl::take(&self.ctl.fail_appends) {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "injected: disk full"));
        }
        if FaultControl::take(&self.ctl.short_appends) {
            // Half the bytes land, success is reported: the record is
            // torn on disk but the writer does not know.
            // vmr-analyze: allow(P001) reason="len/2 <= len; deliberately short test-harness write"
            return self.inner.append(&buf[..buf.len() / 2]);
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        if FaultControl::take(&self.ctl.fail_syncs) {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "injected: fsync failed"));
        }
        self.inner.sync()
    }
}

// ---------------------------------------------------------------------------
// Durability configuration.
// ---------------------------------------------------------------------------

/// Durability settings for a daemon (carried in
/// [`crate::server::ServerConfig`]).
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Root directory; sessions live under `<data_dir>/sessions/<name>`.
    pub data_dir: PathBuf,
    /// Group-commit factor: fsync after every N appended records. 1 (the
    /// default) makes every acknowledged mutation durable before the
    /// response; N > 1 trades an (N−1)-record acked-but-unsynced crash
    /// window for throughput.
    pub sync_every: usize,
    /// Compact (snapshot + fresh log) after this many records.
    pub snapshot_every: usize,
    /// File I/O constructor — swap in [`FaultControl::factory`] to test
    /// failure paths.
    pub io: WalIoFactory,
}

impl DurabilityConfig {
    /// Production defaults rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            sync_every: 1,
            snapshot_every: 64,
            io: file_io_factory(),
        }
    }

    /// The directory holding all session subdirectories.
    pub fn sessions_dir(&self) -> PathBuf {
        self.data_dir.join("sessions")
    }
}

/// Maps a session name to its directory name, or `None` when the name is
/// not filesystem-safe (durable daemons reject such names at
/// `create_session`).
pub fn session_dir_name(name: &str) -> Option<&str> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    ok.then_some(name)
}

// ---------------------------------------------------------------------------
// SessionLog: one session's durable stream.
// ---------------------------------------------------------------------------

const SNAPSHOT_FILE: &str = "snapshot.json";
const WAL_FILE: &str = "wal.log";

/// The durable half of one live session: owns the log file handle, LSN
/// counters, the fsync discipline, and compaction. All methods are
/// called under the owning session's lock.
pub struct SessionLog {
    dir: PathBuf,
    io: WalIoFactory,
    sync_every: usize,
    snapshot_every: usize,
    writer: Option<Box<dyn WalIo>>,
    /// LSN of the last appended record (0 = none yet).
    appended_lsn: u64,
    /// LSN of the last record known fsynced.
    durable_lsn: u64,
    /// LSN the current snapshot file covers.
    snapshot_lsn: u64,
    unsynced: usize,
    since_snapshot: usize,
    log_bytes: u64,
    read_only: Option<String>,
    metrics: WalMetrics,
}

impl std::fmt::Debug for SessionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionLog")
            .field("dir", &self.dir)
            .field("appended_lsn", &self.appended_lsn)
            .field("durable_lsn", &self.durable_lsn)
            .field("snapshot_lsn", &self.snapshot_lsn)
            .field("read_only", &self.read_only)
            .finish()
    }
}

impl SessionLog {
    /// Creates the durable artifacts for a session whose committed state
    /// is `snapshot`, covering everything up to `at_lsn` (0 for a brand
    /// new session): snapshot file first (write-temp + fsync + rename),
    /// then a fresh empty log. Used at `create_session`, at `restore`,
    /// and to finish a recovery.
    pub fn install(
        dir: PathBuf,
        cfg: &DurabilityConfig,
        snapshot: &SessionSnapshot,
        at_lsn: u64,
    ) -> io::Result<SessionLog> {
        fs::create_dir_all(&dir)?;
        let mut log = SessionLog {
            dir,
            io: Arc::clone(&cfg.io),
            sync_every: cfg.sync_every.max(1),
            snapshot_every: cfg.snapshot_every.max(1),
            writer: None,
            appended_lsn: at_lsn,
            durable_lsn: at_lsn,
            snapshot_lsn: at_lsn,
            unsynced: 0,
            since_snapshot: 0,
            log_bytes: 0,
            read_only: None,
            metrics: WalMetrics::default(),
        };
        log.write_snapshot_and_reset(snapshot)?;
        Ok(log)
    }

    /// A stub for a session recovered from a corrupt log: state is
    /// served read-only, nothing is ever appended, the on-disk evidence
    /// is left untouched.
    pub fn read_only_stub(
        dir: PathBuf,
        cfg: &DurabilityConfig,
        at_lsn: u64,
        reason: String,
    ) -> Self {
        SessionLog {
            dir,
            io: Arc::clone(&cfg.io),
            sync_every: cfg.sync_every.max(1),
            snapshot_every: cfg.snapshot_every.max(1),
            writer: None,
            appended_lsn: at_lsn,
            durable_lsn: at_lsn,
            snapshot_lsn: at_lsn,
            unsynced: 0,
            since_snapshot: 0,
            log_bytes: 0,
            read_only: Some(reason),
            metrics: WalMetrics::default(),
        }
    }

    /// Attaches the daemon's WAL phase histograms (recording is skipped
    /// while unset, e.g. in unit tests).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// Why the session refuses mutations, if it does.
    pub fn read_only(&self) -> Option<&str> {
        self.read_only.as_deref()
    }

    /// Degrades the session to read-only (called when an append or fsync
    /// fails: memory may be ahead of disk, so no further mutation can be
    /// made durable truthfully).
    pub fn mark_read_only(&mut self, reason: impl Into<String>) {
        if self.read_only.is_none() {
            self.read_only = Some(reason.into());
            self.writer = None;
        }
    }

    /// Appends one record and applies the group-commit policy. Returns
    /// the record's LSN. On error the caller must degrade the session
    /// ([`SessionLog::mark_read_only`]).
    pub fn append(&mut self, body: &WalBody) -> io::Result<u64> {
        if let Some(reason) = &self.read_only {
            return Err(io::Error::new(io::ErrorKind::ReadOnlyFilesystem, reason.clone()));
        }
        let t = Timer::start();
        let lsn = self.appended_lsn + 1;
        let bytes = encode_record(&WalRecord { lsn, body: body.clone() })?;
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "log writer missing"))?;
        writer.append(&bytes)?;
        WalMetrics::observe(&self.metrics.append, t);
        self.appended_lsn = lsn;
        self.log_bytes += bytes.len() as u64;
        self.unsynced += 1;
        self.since_snapshot += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Fsyncs pending appends (no-op when nothing is pending).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "log writer missing"))?;
        let t = Timer::start();
        writer.sync()?;
        WalMetrics::observe(&self.metrics.fsync, t);
        self.durable_lsn = self.appended_lsn;
        self.unsynced = 0;
        Ok(())
    }

    /// Whether the next [`SessionLog::maybe_compact`] would compact —
    /// callers check this first so they only serialize the (possibly
    /// large) state when a compaction is actually due.
    pub fn compaction_due(&self) -> bool {
        self.read_only.is_none() && self.since_snapshot >= self.snapshot_every
    }

    /// Re-anchors the durable artifacts at `at_lsn`: fresh snapshot +
    /// empty log, regardless of `snapshot_every`. Used by the `restore`
    /// wire op, whose installed snapshot *is* the new history (the
    /// restore consumes an LSN like any other mutation, so session
    /// versions and LSNs stay aligned across recoveries).
    pub fn reanchor(&mut self, snapshot: &SessionSnapshot, at_lsn: u64) -> io::Result<()> {
        if let Some(reason) = &self.read_only {
            return Err(io::Error::new(io::ErrorKind::ReadOnlyFilesystem, reason.clone()));
        }
        self.sync()?;
        self.appended_lsn = at_lsn;
        self.write_snapshot_and_reset(snapshot)
    }

    /// Compacts when due. Failure is *safe to ignore*: the old snapshot
    /// plus the old log remain a complete recovery source (replay skips
    /// records at or below the snapshot LSN), so the caller just retries
    /// at the next append. Returns whether a compaction happened.
    pub fn maybe_compact(&mut self, snapshot: &SessionSnapshot) -> io::Result<bool> {
        if self.read_only.is_some() || self.since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        let t = Timer::start();
        self.sync()?;
        self.write_snapshot_and_reset(snapshot)?;
        WalMetrics::observe(&self.metrics.compact, t);
        Ok(true)
    }

    /// Writes the snapshot file atomically, then swaps in a fresh log.
    /// On any failure the previous writer (if any) stays active and the
    /// previous files stay authoritative.
    fn write_snapshot_and_reset(&mut self, snapshot: &SessionSnapshot) -> io::Result<()> {
        let file = SnapshotFile { lsn: self.appended_lsn, snapshot: snapshot.clone() };
        let body = serde_json::to_string(&file)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let tmp = self.dir.join("snapshot.json.tmp");
        {
            let mut io = (self.io)(&tmp)?;
            io.append(body.as_bytes())?;
            io.sync()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // New empty log via temp + rename; the renamed handle stays
        // valid (fd-based) and becomes the active writer.
        let wal_tmp = self.dir.join("wal.log.tmp");
        let mut writer = (self.io)(&wal_tmp)?;
        writer.sync()?;
        fs::rename(&wal_tmp, self.dir.join(WAL_FILE))?;
        // Make the renames themselves durable.
        File::open(&self.dir)?.sync_all()?;
        self.writer = Some(writer);
        self.snapshot_lsn = self.appended_lsn;
        self.durable_lsn = self.appended_lsn;
        self.unsynced = 0;
        self.since_snapshot = 0;
        self.log_bytes = 0;
        Ok(())
    }

    /// Wire-visible gauges.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            appended_lsn: self.appended_lsn,
            durable_lsn: self.durable_lsn,
            snapshot_lsn: self.snapshot_lsn,
            log_bytes: self.log_bytes,
            read_only: self.read_only.is_some(),
            reason: self.read_only.clone().unwrap_or_default(),
        }
    }

    /// The session's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of the snapshot and log files inside a session directory.
    pub fn files_of(dir: &Path) -> (PathBuf, PathBuf) {
        (dir.join(SNAPSHOT_FILE), dir.join(WAL_FILE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_sim::types::VmId;

    fn body(i: u32) -> WalBody {
        if i.is_multiple_of(3) {
            WalBody::Commit(vec![WireAction { vm: i, from_pm: 0, to_pm: 1 }])
        } else {
            WalBody::Delta(ClusterDelta::VmResize { vm: VmId(i), cpu: 4, mem: 8 })
        }
    }

    fn encode_stream(n: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend(encode_record(&WalRecord { lsn: (i + 1) as u64, body: body(i) }).unwrap());
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_roundtrips_and_skips_pre_snapshot_records() {
        let bytes = encode_stream(6);
        let scan = scan_log(&bytes, 0);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.records.len(), 6);
        assert_eq!(scan.last_lsn, 6);
        // Records folded into a snapshot at lsn 4 are skipped.
        let scan = scan_log(&bytes, 4);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].lsn, 5);
    }

    #[test]
    fn every_truncation_point_yields_a_whole_prefix() {
        let bytes = encode_stream(5);
        let full = scan_log(&bytes, 0);
        // Record boundaries, for cross-checking which prefix survives.
        let mut boundaries = vec![0usize];
        {
            let mut off = 0;
            while off < bytes.len() {
                let len = u32::from_le_bytes([
                    bytes[off],
                    bytes[off + 1],
                    bytes[off + 2],
                    bytes[off + 3],
                ]) as usize;
                off += 8 + len;
                boundaries.push(off);
            }
        }
        for cut in 0..bytes.len() {
            let scan = scan_log(&bytes[..cut], 0);
            let whole = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(scan.records[..], full.records[..whole], "cut at {cut}");
            if cut == *boundaries.last().unwrap() || boundaries.contains(&cut) {
                assert_eq!(scan.tail, TailState::Clean, "cut at {cut}");
            } else {
                assert!(
                    matches!(scan.tail, TailState::Torn { .. }),
                    "cut at {cut}: {:?}",
                    scan.tail
                );
            }
        }
    }

    #[test]
    fn mid_log_corruption_is_distinguished_from_a_torn_tail() {
        let mut bytes = encode_stream(4);
        // Flip one payload byte inside record 2 (there is data behind it).
        let len0 = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        bytes[8 + len0 + 12] ^= 0x40;
        let scan = scan_log(&bytes, 0);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, TailState::Corrupt { .. }), "{:?}", scan.tail);
        // The same flip in the *last* record reads as a torn tail.
        let mut bytes = encode_stream(2);
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        let scan = scan_log(&bytes, 0);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, TailState::Torn { .. }), "{:?}", scan.tail);
    }

    #[test]
    fn non_monotone_lsn_is_corruption() {
        let mut bytes = Vec::new();
        bytes.extend(encode_record(&WalRecord { lsn: 3, body: body(1) }).unwrap());
        bytes.extend(encode_record(&WalRecord { lsn: 3, body: body(2) }).unwrap());
        bytes.extend(encode_record(&WalRecord { lsn: 4, body: body(4) }).unwrap());
        let scan = scan_log(&bytes, 0);
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, TailState::Corrupt { .. }));
    }

    #[test]
    fn session_dir_names_are_filesystem_safe() {
        assert!(session_dir_name("prod-eu_1.a").is_some());
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a b", "naïve", &"x".repeat(200)] {
            assert!(session_dir_name(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn fault_control_counts_down() {
        let ctl = FaultControl::new();
        ctl.fail_appends.store(2, Ordering::SeqCst);
        assert!(FaultControl::take(&ctl.fail_appends));
        assert!(FaultControl::take(&ctl.fail_appends));
        assert!(!FaultControl::take(&ctl.fail_appends));
        assert!(!FaultControl::take(&ctl.fail_appends));
    }
}
