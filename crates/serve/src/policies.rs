//! The plan-policy registry: every way this repo knows how to produce a
//! rescheduling plan — the trained VMR2L agent, the HA filtering
//! heuristic, swap-aware local search, MCTS, the branch-and-bound
//! solver, and the shard-parallel fleet planner — behind one
//! [`PlanPolicy`] trait, selected by request policy name plus latency
//! budget.
//!
//! The contract: a policy receives the session's live environment
//! (rewound to the committed state, MNL already set) and returns a
//! *sequential* migration plan. It may step the environment while
//! searching — the incremental observation engine makes that cheap — but
//! the session rewinds afterwards and re-validates the plan by replay, so
//! a policy can never corrupt a session or serve an illegal plan.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_baselines::ha::ha_solve;
use vmr_baselines::mcts::{mcts_solve, MctsConfig};
use vmr_baselines::swap::{swap_search_solve, SwapMove, SwapSearchConfig};
use vmr_core::agent::{DecideOpts, InferCtx};
use vmr_core::config::PrecisionConfig;
use vmr_core::infer::SharedAgent;
use vmr_sim::env::{Action, ReschedEnv};
use vmr_sim::error::SimResult;
use vmr_sim::shard::{FleetConfig, ShardStrategy};
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

use crate::batch::{BatchStats, EmbedBatcher, DEFAULT_WINDOW};
use crate::sync::LockExt;

/// Per-shard fleet-plan latency (`serve_fleet_shard` in the process-wide
/// registry): one sample per sub-cluster solve, across all worker
/// threads — the spread between p50 and max shows shard imbalance.
fn fleet_shard_hist() -> &'static Arc<vmr_telemetry::Histogram> {
    static H: std::sync::OnceLock<Arc<vmr_telemetry::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        vmr_telemetry::global().histogram("serve_fleet_shard", vmr_telemetry::Unit::Nanos)
    })
}

/// Per-request planning parameters a policy sees.
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest {
    /// Migration number limit for this plan. A *global* budget: the
    /// fleet policy apportions it across shards under one ledger.
    pub mnl: usize,
    /// Sampling seed (stochastic policies must be deterministic given it).
    pub seed: u64,
    /// Wall-clock budget for anytime policies.
    pub budget: Duration,
    /// Shard count for the fleet policy (0 = sized from the cluster).
    pub shards: usize,
    /// Shard-solver worker threads for the fleet policy (0 = all cores).
    /// Plans are byte-identical for any value; only latency changes.
    pub workers: usize,
    /// Inference numerics for checkpoint-backed policies (`agent`, and
    /// `fleet` when it wraps the agent). Heuristic policies ignore it.
    pub precision: PrecisionConfig,
}

/// A way to produce a rescheduling plan for a live session.
pub trait PlanPolicy: Send + Sync {
    /// Registry name.
    fn name(&self) -> &'static str;
    /// Produces a sequential migration plan for the environment's current
    /// (committed) state. May step `env`; the caller rewinds afterwards.
    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>>;
}

/// The trained VMR2L agent, rolled out step by step against the session's
/// incremental observation engine (no featurization rebuild per request)
/// on the tape-free fast path. Each decision's embedding GEMM goes
/// through the shared [`EmbedBatcher`], so concurrent plans from
/// *different* sessions share one batched GEMM per step — bit-identical
/// to solo evaluation, batching never changes a plan.
pub struct AgentPolicy {
    handle: SharedAgent,
    batcher: Arc<EmbedBatcher>,
}

impl AgentPolicy {
    /// Wraps a shared inference handle with the default batch window.
    pub fn new(handle: SharedAgent) -> Self {
        Self::with_batcher(handle, Arc::new(EmbedBatcher::new(DEFAULT_WINDOW)))
    }

    /// Wraps a shared inference handle around an explicit batcher (tests
    /// use a long window to make the rendezvous deterministic).
    pub fn with_batcher(handle: SharedAgent, batcher: Arc<EmbedBatcher>) -> Self {
        AgentPolicy { handle, batcher }
    }

    /// The shared batcher (stats inspection).
    pub fn batcher(&self) -> &Arc<EmbedBatcher> {
        &self.batcher
    }
}

impl PlanPolicy for AgentPolicy {
    fn name(&self) -> &'static str {
        "agent"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let agent = self.handle.agent();
        let mut rng = StdRng::seed_from_u64(req.seed);
        let opts = DecideOpts::default();
        let mut ictx = InferCtx::new();
        let mut plan = Vec::new();
        let _in_flight = self.batcher.plan_guard();
        let fast32 = req.precision == PrecisionConfig::Fast32;
        while !env.is_done() {
            ictx.prepare_from_env(env);
            // Stage-1 embeddings: one batched GEMM shared with every
            // other in-flight agent plan (per-precision rounds).
            let decision = if fast32 {
                let m32 = self.handle.model32();
                let (pm_emb, vm_emb) = self.batcher.embed_f32(m32, &ictx.feats.pm, &ictx.feats.vm);
                let pm_v = ictx.ctx32.input32(&pm_emb);
                let vm_v = ictx.ctx32.input32(&vm_emb);
                let s1 = m32.stage1_from_embeds_fwd(
                    &mut ictx.ctx32,
                    pm_v,
                    vm_v,
                    Some(&ictx.tree.groups),
                );
                agent.act_core_f32(m32, env, &mut ictx, &s1, &mut rng, &opts)?
            } else {
                let (pm_emb, vm_emb) =
                    self.batcher.embed(&agent.policy, &ictx.feats.pm, &ictx.feats.vm);
                let pm_v = ictx.ctx.input(&pm_emb);
                let vm_v = ictx.ctx.input(&vm_emb);
                let s1 = agent.policy.stage1_from_embeds_fwd(
                    &mut ictx.ctx,
                    pm_v,
                    vm_v,
                    Some(&ictx.tree.groups),
                );
                agent.act_core(env, &mut ictx, &s1, &mut rng, &opts)?
            };
            let Some(decision) = decision else {
                break;
            };
            env.step(decision.action)?;
            plan.push(decision.action);
        }
        Ok(plan)
    }
}

/// The filtering-based heuristic (HA) — the microsecond-budget fallback.
pub struct HaPolicy;

impl PlanPolicy for HaPolicy {
    fn name(&self) -> &'static str {
        "ha"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        Ok(ha_solve(env.state(), env.constraints(), env.objective(), req.mnl).plan)
    }
}

/// Swap-aware local search, flattened to a sequential plan: atomic
/// exchanges are emitted only when some sequential order of their two
/// migrations is feasible (the wire protocol ships executable sequences);
/// the search stops at the first non-sequenceable exchange.
pub struct SwapPolicy;

impl PlanPolicy for SwapPolicy {
    fn name(&self) -> &'static str {
        "swap"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let result = swap_search_solve(
            env.state(),
            env.constraints(),
            env.objective(),
            req.mnl,
            &SwapSearchConfig::default(),
        );
        // Sequence the moves on the live env (rewound by the session).
        let mut plan = Vec::new();
        'moves: for mv in &result.moves {
            match *mv {
                SwapMove::Single(action) => {
                    if env.step(action).is_err() {
                        break 'moves;
                    }
                    plan.push(action);
                }
                SwapMove::Swap(a, b) => {
                    let (pa, pb) = (env.state().placement(a).pm, env.state().placement(b).pm);
                    let orders = [
                        [Action { vm: a, pm: pb }, Action { vm: b, pm: pa }],
                        [Action { vm: b, pm: pa }, Action { vm: a, pm: pb }],
                    ];
                    let mut sequenced = false;
                    for order in orders {
                        // vmr-analyze: allow(P001) reason="order is a fixed [Action; 2]; indices 0 and 1 are total"
                        if env.step(order[0]).is_err() {
                            continue;
                        }
                        // vmr-analyze: allow(P001) reason="order is a fixed [Action; 2]; indices 0 and 1 are total"
                        if env.step(order[1]).is_ok() {
                            plan.extend_from_slice(&order);
                            sequenced = true;
                            break;
                        }
                        // Roll back the half-applied attempt and restore
                        // the already-sequenced prefix.
                        env.rewind();
                        for &act in &plan {
                            env.step(act)?;
                        }
                    }
                    if !sequenced {
                        break 'moves;
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// Monte-Carlo tree search under the request's latency budget.
pub struct MctsPolicy;

impl PlanPolicy for MctsPolicy {
    fn name(&self) -> &'static str {
        "mcts"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let cfg = MctsConfig { time_limit: req.budget, seed: req.seed, ..Default::default() };
        Ok(mcts_solve(env.state(), env.constraints(), env.objective(), req.mnl, &cfg).plan)
    }
}

/// Branch-and-bound ("MIP") under the request's latency budget.
pub struct SolverPolicy;

impl PlanPolicy for SolverPolicy {
    fn name(&self) -> &'static str {
        "solver"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let cfg =
            SolverConfig { time_limit: req.budget, beam_width: Some(24), ..Default::default() };
        Ok(branch_and_bound(env.state(), env.constraints(), env.objective(), req.mnl, &cfg).plan)
    }
}

/// Shard-parallel fleet planning: partitions the session's cluster with
/// the shared [`vmr_sim::shard`] layer, runs the wrapped policy per
/// shard on scoped worker threads, stitches sub-plans under one global
/// MNL ledger, and spends leftover budget on cross-shard refinement.
/// This is the 10k-PM path: per-shard planning cost scales with the
/// shard, not the fleet, and shards solve concurrently.
///
/// The served plan is byte-identical for any worker count (enforced by
/// `crates/solver/tests/prop_fleet.rs`), so plan coalescing and the
/// session memo stay sound.
pub struct FleetPolicy {
    inner: Arc<dyn PlanPolicy>,
}

/// PMs per shard the fleet policy targets when the request leaves the
/// shard count to the server (`shards == 0`).
const PMS_PER_SHARD: usize = 256;

impl FleetPolicy {
    /// Wraps a per-shard policy.
    pub fn new(inner: Arc<dyn PlanPolicy>) -> Self {
        FleetPolicy { inner }
    }

    /// Deterministic per-shard seed derivation (SplitMix64 over the
    /// request seed and shard index) so shards sample independently but
    /// reproducibly.
    fn shard_seed(seed: u64, shard: usize) -> u64 {
        let mut z = seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl PlanPolicy for FleetPolicy {
    fn name(&self) -> &'static str {
        "fleet"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let shards = if req.shards == 0 {
            (env.state().num_pms() / PMS_PER_SHARD).clamp(2, 64)
        } else {
            req.shards
        };
        let cfg = FleetConfig {
            shards,
            strategy: ShardStrategy::FragBalanced,
            seed: req.seed,
            workers: req.workers,
            refine: true,
        };
        // Shards solve concurrently, so each gets the full wall-clock
        // budget (bounded below so huge shard counts stay well-defined).
        // Deliberately NOT divided by the worker count: the registered
        // inner policies (agent, HA) are not deadline-bound, and scaling
        // a deadline by `workers` would make plan bytes depend on it —
        // breaking the worker-invariance guarantee.
        let shard_budget = req.budget.max(Duration::from_millis(1));
        let objective = env.objective();
        let inner = &self.inner;
        // A failing shard fails the whole request with its typed error
        // (lowest shard index wins, deterministically) — silently
        // dropping a sub-plan would serve a quietly degraded fleet plan
        // as a success, against the registry's typed-error contract.
        let first_err: std::sync::Mutex<Option<(usize, vmr_sim::SimError)>> =
            std::sync::Mutex::new(None);
        let record_err = |i: usize, e: vmr_sim::SimError| {
            let mut slot = first_err.lock_recover();
            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                *slot = Some((i, e));
            }
        };
        let out = vmr_sim::shard::fleet_plan(
            env.state(),
            env.constraints(),
            objective,
            req.mnl,
            &cfg,
            |i, sub, sub_mnl| {
                let t = vmr_telemetry::Timer::start();
                let mut shard_env = match ReschedEnv::new(
                    sub.state.clone(),
                    sub.constraints.clone(),
                    objective,
                    sub_mnl,
                ) {
                    Ok(env) => env,
                    Err(e) => {
                        record_err(i, e);
                        return Vec::new();
                    }
                };
                let shard_req = PlanRequest {
                    mnl: sub_mnl,
                    seed: Self::shard_seed(req.seed, i),
                    budget: shard_budget,
                    shards: 0,
                    workers: 0,
                    precision: req.precision,
                };
                let plan = match inner.plan(&mut shard_env, &shard_req) {
                    Ok(plan) => plan,
                    Err(e) => {
                        record_err(i, e);
                        Vec::new()
                    }
                };
                t.observe(fleet_shard_hist());
                plan
            },
        );
        let first_err = first_err.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(out.plan)
    }
}

/// Latency budget below which `auto` refuses anything slower than HA.
const AUTO_HA_BUDGET: Duration = Duration::from_millis(10);
/// Latency budget above which `auto` escalates from the agent to search.
const AUTO_SEARCH_BUDGET: Duration = Duration::from_secs(2);

/// Maps request `policy` names (plus the latency budget, for `auto`) onto
/// registered [`PlanPolicy`] implementations.
pub struct PolicyRegistry {
    by_name: BTreeMap<&'static str, Arc<dyn PlanPolicy>>,
    has_agent: bool,
    batcher: Option<Arc<EmbedBatcher>>,
}

impl PolicyRegistry {
    /// The standard registry: HA, swap search, MCTS, the solver, and the
    /// shard-parallel `fleet` planner are always available; `agent`
    /// requires a loaded checkpoint handle. `fleet` runs the trained
    /// agent per shard when a checkpoint is loaded and HA otherwise.
    pub fn standard(agent: Option<SharedAgent>) -> Self {
        let mut by_name: BTreeMap<&'static str, Arc<dyn PlanPolicy>> = BTreeMap::new();
        by_name.insert("ha", Arc::new(HaPolicy));
        by_name.insert("swap", Arc::new(SwapPolicy));
        by_name.insert("mcts", Arc::new(MctsPolicy));
        by_name.insert("solver", Arc::new(SolverPolicy));
        let has_agent = agent.is_some();
        let mut batcher = None;
        let mut fleet_inner: Arc<dyn PlanPolicy> = Arc::new(HaPolicy);
        if let Some(handle) = agent {
            let policy = AgentPolicy::new(handle);
            batcher = Some(Arc::clone(policy.batcher()));
            let policy: Arc<dyn PlanPolicy> = Arc::new(policy);
            fleet_inner = Arc::clone(&policy);
            by_name.insert("agent", policy);
        }
        by_name.insert("fleet", Arc::new(FleetPolicy::new(fleet_inner)));
        PolicyRegistry { by_name, has_agent, batcher }
    }

    /// Cross-session embed-batching counters (None without a checkpoint).
    pub fn batch_stats(&self) -> Option<BatchStats> {
        self.batcher.as_ref().map(|b| b.stats())
    }

    /// Registered policy names (sorted).
    pub fn names(&self) -> Vec<&'static str> {
        self.by_name.keys().copied().collect()
    }

    /// Resolves a request's policy. `auto` picks by latency budget:
    /// microsecond budgets get HA, interactive budgets get the agent
    /// (when a checkpoint is loaded), generous budgets get MCTS.
    pub fn resolve(&self, name: &str, budget: Duration) -> Option<Arc<dyn PlanPolicy>> {
        let effective = match name {
            "auto" => {
                if budget < AUTO_HA_BUDGET || (!self.has_agent && budget < AUTO_SEARCH_BUDGET) {
                    "ha"
                } else if budget < AUTO_SEARCH_BUDGET {
                    "agent"
                } else {
                    "mcts"
                }
            }
            other => other,
        };
        self.by_name.get(effective).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_without_agent() {
        let reg = PolicyRegistry::standard(None);
        assert_eq!(reg.names(), vec!["fleet", "ha", "mcts", "solver", "swap"]);
        assert!(reg.resolve("agent", Duration::from_millis(1)).is_none());
        assert!(reg.resolve("nonsense", Duration::from_millis(1)).is_none());
        // auto degrades to HA when no checkpoint is loaded and the budget
        // is tight, and escalates to MCTS when generous.
        assert_eq!(reg.resolve("auto", Duration::from_millis(1)).unwrap().name(), "ha");
        assert_eq!(reg.resolve("auto", Duration::from_millis(500)).unwrap().name(), "ha");
        assert_eq!(reg.resolve("auto", Duration::from_secs(10)).unwrap().name(), "mcts");
    }

    #[test]
    fn fleet_policy_respects_global_mnl_and_worker_invariance() {
        use vmr_sim::dataset::{generate_mapping, ClusterConfig};
        use vmr_sim::objective::Objective;
        let state = generate_mapping(&ClusterConfig::small_train(), 11).unwrap();
        let n = state.num_vms();
        let mk_env = || {
            ReschedEnv::new(state.clone(), vmr_sim::ConstraintSet::new(n), Objective::default(), 6)
                .unwrap()
        };
        let fleet = FleetPolicy::new(Arc::new(HaPolicy));
        let base = PlanRequest {
            mnl: 6,
            seed: 3,
            budget: Duration::from_millis(100),
            shards: 4,
            workers: 1,
            precision: PrecisionConfig::Exact64,
        };
        let plan1 = fleet.plan(&mut mk_env(), &base).unwrap();
        assert!(plan1.len() <= 6, "fleet must honor the global MNL");
        // Replays legally on the committed state.
        let mut replay = state.clone();
        for a in &plan1 {
            replay.migrate(a.vm, a.pm, 16).unwrap();
        }
        // Worker count changes wall-clock, never the plan bytes.
        for workers in [2, 4, 7] {
            let req = PlanRequest { workers, ..base };
            assert_eq!(fleet.plan(&mut mk_env(), &req).unwrap(), plan1, "workers={workers}");
        }
        // Repeated requests through a *session* must also be identical:
        // every request's validation replay permutes the state's
        // `vms_on` reverse indexes — exactly the hidden order the
        // refinement pass's equal-gain tie-breaking once leaked (the
        // first and second identical wire request served different
        // final refinement moves). This instance (small_train seed 4,
        // request seed 0) reproduced that divergence before the
        // canonical candidate ordering in `refine_cross_shard`.
        use crate::session::Session;
        let tie_state = generate_mapping(&ClusterConfig::small_train(), 4).unwrap();
        let tn = tie_state.num_vms();
        let mut session =
            Session::new("s", tie_state, vmr_sim::ConstraintSet::new(tn), 8).expect("session");
        let tie_req = PlanRequest {
            mnl: 6,
            seed: 0,
            budget: Duration::from_millis(200),
            shards: 4,
            workers: 1,
            precision: PrecisionConfig::Exact64,
        };
        let p1 = session.plan(&fleet, &tie_req, false).unwrap().plan;
        for workers in [1, 4] {
            let req = PlanRequest { workers, ..tie_req };
            let again = session.plan(&fleet, &req, false).unwrap().plan;
            assert_eq!(again, p1, "repeat request, workers={workers}");
        }
    }

    #[test]
    fn fleet_agent_plans_are_invariant_across_workers_and_repeat_calls() {
        // Regression for the extraction-order bug: `vms_on` reverse
        // indexes are permuted by migrate/undo cycles, and an extraction
        // that iterated them leaked that hidden state into sub-VM ids —
        // the agent (order-sensitive featurization) then returned
        // *different plans for identical repeated requests* on a rewound
        // session env. Plans must be identical across worker counts AND
        // across repeated calls on the same session.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
        use vmr_core::model::Vmr2lModel;
        use vmr_core::Vmr2lAgent;

        use crate::session::{preset_config, Session};
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
        let handle = SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage));
        let fleet = FleetPolicy::new(Arc::new(AgentPolicy::new(handle)));
        let mut session = Session::from_preset("s", &preset_config("tiny").unwrap(), 9, 8).unwrap();
        let mut plans = Vec::new();
        for workers in [1usize, 4, 1, 4] {
            let req = PlanRequest {
                mnl: 5,
                seed: 2,
                budget: Duration::from_millis(200),
                shards: 2,
                workers,
                precision: PrecisionConfig::Exact64,
            };
            plans.push(session.plan(&fleet, &req, false).unwrap().plan);
        }
        assert_eq!(plans[0], plans[1], "1 vs 4 workers");
        assert_eq!(plans[0], plans[2], "repeat call on the rewound session");
        assert_eq!(plans[0], plans[3], "repeat at 4 workers");
    }

    #[test]
    fn agent_policy_f32_plans_are_legal_and_deterministic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
        use vmr_core::model::Vmr2lModel;
        use vmr_core::Vmr2lAgent;

        use crate::session::{preset_config, Session};
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
        let handle = SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage));
        let policy = AgentPolicy::new(handle);
        let mut session = Session::from_preset("s", &preset_config("tiny").unwrap(), 5, 6).unwrap();
        let req = PlanRequest {
            mnl: 5,
            seed: 8,
            budget: Duration::from_millis(200),
            shards: 0,
            workers: 0,
            precision: PrecisionConfig::Fast32,
        };
        // The session replays the plan against the committed state, so a
        // successful `plan` call already proves legality end to end.
        let p1 = session.plan(&policy, &req, false).unwrap().plan;
        let p2 = session.plan(&policy, &req, false).unwrap().plan;
        assert_eq!(p1, p2, "f32 planning must be deterministic given the seed");
        assert!(p1.len() <= 5);
    }

    #[test]
    fn auto_prefers_agent_at_interactive_budgets() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
        use vmr_core::model::Vmr2lModel;
        use vmr_core::Vmr2lAgent;
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
        let handle = SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage));
        let reg = PolicyRegistry::standard(Some(handle));
        assert_eq!(reg.resolve("auto", Duration::from_millis(100)).unwrap().name(), "agent");
        assert_eq!(reg.resolve("auto", Duration::from_millis(1)).unwrap().name(), "ha");
    }
}
