//! The plan-policy registry: every way this repo knows how to produce a
//! rescheduling plan — the trained VMR2L agent, the HA filtering
//! heuristic, swap-aware local search, MCTS, and the branch-and-bound
//! solver — behind one [`PlanPolicy`] trait, selected by request policy
//! name plus latency budget.
//!
//! The contract: a policy receives the session's live environment
//! (rewound to the committed state, MNL already set) and returns a
//! *sequential* migration plan. It may step the environment while
//! searching — the incremental observation engine makes that cheap — but
//! the session rewinds afterwards and re-validates the plan by replay, so
//! a policy can never corrupt a session or serve an illegal plan.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_baselines::ha::ha_solve;
use vmr_baselines::mcts::{mcts_solve, MctsConfig};
use vmr_baselines::swap::{swap_search_solve, SwapMove, SwapSearchConfig};
use vmr_core::agent::{DecideOpts, InferCtx};
use vmr_core::infer::SharedAgent;
use vmr_sim::env::{Action, ReschedEnv};
use vmr_sim::error::SimResult;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

use crate::batch::{BatchStats, EmbedBatcher, DEFAULT_WINDOW};

/// Per-request planning parameters a policy sees.
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest {
    /// Migration number limit for this plan.
    pub mnl: usize,
    /// Sampling seed (stochastic policies must be deterministic given it).
    pub seed: u64,
    /// Wall-clock budget for anytime policies.
    pub budget: Duration,
}

/// A way to produce a rescheduling plan for a live session.
pub trait PlanPolicy: Send + Sync {
    /// Registry name.
    fn name(&self) -> &'static str;
    /// Produces a sequential migration plan for the environment's current
    /// (committed) state. May step `env`; the caller rewinds afterwards.
    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>>;
}

/// The trained VMR2L agent, rolled out step by step against the session's
/// incremental observation engine (no featurization rebuild per request)
/// on the tape-free fast path. Each decision's embedding GEMM goes
/// through the shared [`EmbedBatcher`], so concurrent plans from
/// *different* sessions share one batched GEMM per step — bit-identical
/// to solo evaluation, batching never changes a plan.
pub struct AgentPolicy {
    handle: SharedAgent,
    batcher: Arc<EmbedBatcher>,
}

impl AgentPolicy {
    /// Wraps a shared inference handle with the default batch window.
    pub fn new(handle: SharedAgent) -> Self {
        Self::with_batcher(handle, Arc::new(EmbedBatcher::new(DEFAULT_WINDOW)))
    }

    /// Wraps a shared inference handle around an explicit batcher (tests
    /// use a long window to make the rendezvous deterministic).
    pub fn with_batcher(handle: SharedAgent, batcher: Arc<EmbedBatcher>) -> Self {
        AgentPolicy { handle, batcher }
    }

    /// The shared batcher (stats inspection).
    pub fn batcher(&self) -> &Arc<EmbedBatcher> {
        &self.batcher
    }
}

impl PlanPolicy for AgentPolicy {
    fn name(&self) -> &'static str {
        "agent"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let agent = self.handle.agent();
        let mut rng = StdRng::seed_from_u64(req.seed);
        let opts = DecideOpts::default();
        let mut ictx = InferCtx::new();
        let mut plan = Vec::new();
        let _in_flight = self.batcher.plan_guard();
        while !env.is_done() {
            ictx.prepare_from_env(env);
            // Stage-1 embeddings: one batched GEMM shared with every
            // other in-flight agent plan.
            let (pm_emb, vm_emb) =
                self.batcher.embed(&agent.policy, &ictx.feats.pm, &ictx.feats.vm);
            let pm_v = ictx.ctx.input(&pm_emb);
            let vm_v = ictx.ctx.input(&vm_emb);
            let s1 = agent.policy.stage1_from_embeds_fwd(
                &mut ictx.ctx,
                pm_v,
                vm_v,
                Some(&ictx.tree.groups),
            );
            let Some(decision) = agent.act_core(env, &mut ictx, &s1, &mut rng, &opts)? else {
                break;
            };
            env.step(decision.action)?;
            plan.push(decision.action);
        }
        Ok(plan)
    }
}

/// The filtering-based heuristic (HA) — the microsecond-budget fallback.
pub struct HaPolicy;

impl PlanPolicy for HaPolicy {
    fn name(&self) -> &'static str {
        "ha"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        Ok(ha_solve(env.state(), env.constraints(), env.objective(), req.mnl).plan)
    }
}

/// Swap-aware local search, flattened to a sequential plan: atomic
/// exchanges are emitted only when some sequential order of their two
/// migrations is feasible (the wire protocol ships executable sequences);
/// the search stops at the first non-sequenceable exchange.
pub struct SwapPolicy;

impl PlanPolicy for SwapPolicy {
    fn name(&self) -> &'static str {
        "swap"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let result = swap_search_solve(
            env.state(),
            env.constraints(),
            env.objective(),
            req.mnl,
            &SwapSearchConfig::default(),
        );
        // Sequence the moves on the live env (rewound by the session).
        let mut plan = Vec::new();
        'moves: for mv in &result.moves {
            match *mv {
                SwapMove::Single(action) => {
                    if env.step(action).is_err() {
                        break 'moves;
                    }
                    plan.push(action);
                }
                SwapMove::Swap(a, b) => {
                    let (pa, pb) = (env.state().placement(a).pm, env.state().placement(b).pm);
                    let orders = [
                        [Action { vm: a, pm: pb }, Action { vm: b, pm: pa }],
                        [Action { vm: b, pm: pa }, Action { vm: a, pm: pb }],
                    ];
                    let mut sequenced = false;
                    for order in orders {
                        if env.step(order[0]).is_err() {
                            continue;
                        }
                        if env.step(order[1]).is_ok() {
                            plan.extend_from_slice(&order);
                            sequenced = true;
                            break;
                        }
                        // Roll back the half-applied attempt and restore
                        // the already-sequenced prefix.
                        env.rewind();
                        for &act in &plan {
                            env.step(act)?;
                        }
                    }
                    if !sequenced {
                        break 'moves;
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// Monte-Carlo tree search under the request's latency budget.
pub struct MctsPolicy;

impl PlanPolicy for MctsPolicy {
    fn name(&self) -> &'static str {
        "mcts"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let cfg = MctsConfig { time_limit: req.budget, seed: req.seed, ..Default::default() };
        Ok(mcts_solve(env.state(), env.constraints(), env.objective(), req.mnl, &cfg).plan)
    }
}

/// Branch-and-bound ("MIP") under the request's latency budget.
pub struct SolverPolicy;

impl PlanPolicy for SolverPolicy {
    fn name(&self) -> &'static str {
        "solver"
    }

    fn plan(&self, env: &mut ReschedEnv, req: &PlanRequest) -> SimResult<Vec<Action>> {
        let cfg =
            SolverConfig { time_limit: req.budget, beam_width: Some(24), ..Default::default() };
        Ok(branch_and_bound(env.state(), env.constraints(), env.objective(), req.mnl, &cfg).plan)
    }
}

/// Latency budget below which `auto` refuses anything slower than HA.
const AUTO_HA_BUDGET: Duration = Duration::from_millis(10);
/// Latency budget above which `auto` escalates from the agent to search.
const AUTO_SEARCH_BUDGET: Duration = Duration::from_secs(2);

/// Maps request `policy` names (plus the latency budget, for `auto`) onto
/// registered [`PlanPolicy`] implementations.
pub struct PolicyRegistry {
    by_name: BTreeMap<&'static str, Arc<dyn PlanPolicy>>,
    has_agent: bool,
    batcher: Option<Arc<EmbedBatcher>>,
}

impl PolicyRegistry {
    /// The standard registry: HA, swap search, MCTS, and the solver are
    /// always available; `agent` requires a loaded checkpoint handle.
    pub fn standard(agent: Option<SharedAgent>) -> Self {
        let mut by_name: BTreeMap<&'static str, Arc<dyn PlanPolicy>> = BTreeMap::new();
        by_name.insert("ha", Arc::new(HaPolicy));
        by_name.insert("swap", Arc::new(SwapPolicy));
        by_name.insert("mcts", Arc::new(MctsPolicy));
        by_name.insert("solver", Arc::new(SolverPolicy));
        let has_agent = agent.is_some();
        let mut batcher = None;
        if let Some(handle) = agent {
            let policy = AgentPolicy::new(handle);
            batcher = Some(Arc::clone(policy.batcher()));
            by_name.insert("agent", Arc::new(policy));
        }
        PolicyRegistry { by_name, has_agent, batcher }
    }

    /// Cross-session embed-batching counters (None without a checkpoint).
    pub fn batch_stats(&self) -> Option<BatchStats> {
        self.batcher.as_ref().map(|b| b.stats())
    }

    /// Registered policy names (sorted).
    pub fn names(&self) -> Vec<&'static str> {
        self.by_name.keys().copied().collect()
    }

    /// Resolves a request's policy. `auto` picks by latency budget:
    /// microsecond budgets get HA, interactive budgets get the agent
    /// (when a checkpoint is loaded), generous budgets get MCTS.
    pub fn resolve(&self, name: &str, budget: Duration) -> Option<Arc<dyn PlanPolicy>> {
        let effective = match name {
            "auto" => {
                if budget < AUTO_HA_BUDGET || (!self.has_agent && budget < AUTO_SEARCH_BUDGET) {
                    "ha"
                } else if budget < AUTO_SEARCH_BUDGET {
                    "agent"
                } else {
                    "mcts"
                }
            }
            other => other,
        };
        self.by_name.get(effective).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_without_agent() {
        let reg = PolicyRegistry::standard(None);
        assert_eq!(reg.names(), vec!["ha", "mcts", "solver", "swap"]);
        assert!(reg.resolve("agent", Duration::from_millis(1)).is_none());
        assert!(reg.resolve("nonsense", Duration::from_millis(1)).is_none());
        // auto degrades to HA when no checkpoint is loaded and the budget
        // is tight, and escalates to MCTS when generous.
        assert_eq!(reg.resolve("auto", Duration::from_millis(1)).unwrap().name(), "ha");
        assert_eq!(reg.resolve("auto", Duration::from_millis(500)).unwrap().name(), "ha");
        assert_eq!(reg.resolve("auto", Duration::from_secs(10)).unwrap().name(), "mcts");
    }

    #[test]
    fn auto_prefers_agent_at_interactive_budgets() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
        use vmr_core::model::Vmr2lModel;
        use vmr_core::Vmr2lAgent;
        let mut rng = StdRng::seed_from_u64(0);
        let model =
            Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
        let handle = SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage));
        let reg = PolicyRegistry::standard(Some(handle));
        assert_eq!(reg.resolve("auto", Duration::from_millis(100)).unwrap().name(), "agent");
        assert_eq!(reg.resolve("auto", Duration::from_millis(1)).unwrap().name(), "ha");
    }
}
