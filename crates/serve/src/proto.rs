//! The versioned wire protocol: JSON lines over a loopback TCP stream.
//!
//! Framing is one JSON document per `\n`-terminated line in each
//! direction. Every request carries the protocol version and a caller
//! request id that the response echoes, so a client can pipeline. The
//! server never trusts the peer: malformed JSON gets a structured
//! [`WireError`] (code [`codes::BAD_REQUEST`]) and the connection keeps
//! serving; a line exceeding [`MAX_LINE_BYTES`] gets
//! [`codes::OVERSIZED`] and the connection is closed (the stream can no
//! longer be resynchronized).

use std::io::{self, BufRead, Read, Write};

use serde::{Deserialize, Serialize};

use vmr_core::config::PrecisionConfig;
use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::env::ClusterDelta;

/// Protocol version spoken by this build. Requests with a different `v`
/// are rejected with [`codes::UNSUPPORTED_VERSION`].
///
/// v2 (PR 5): [`PlanParams`] grew required `shards`/`workers` fields for
/// the fleet policy — a v1 plan request no longer parses, so the version
/// was bumped rather than silently changing the v1 shape.
///
/// v3 (PR 6): [`PlanParams`] grew a required `precision` field selecting
/// the inference numerics (`"f64"` exact / `"f32"` SIMD fast path). The
/// field is typed and has no serde default by design: a v2 request would
/// otherwise silently plan at a precision the caller never chose.
///
/// v4 (PR 7): [`StatsReply`] grew required durability fields
/// (`recoveries`, `degraded_sessions`, `durability`) for the
/// write-ahead-log layer, and invalid `restore` snapshots now answer
/// [`codes::BAD_REQUEST`] instead of [`codes::SIM`] — a v3 client would
/// misparse the stats reply, so the version was bumped.
///
/// v5 (PR 8): the telemetry layer. A new [`Op::Metrics`] op exports the
/// metrics registry (JSON + Prometheus text), [`Response`] grew a
/// required `trace` field (the per-request trace id correlating replies
/// with slow-request JSONL records), and [`StatsReply`] grew required
/// observability fields (`errors_by_code`, `uptime_ms`, `queue_depth`,
/// `sessions_detail`) — a v4 client would misparse both envelopes, so
/// the version was bumped.
pub const PROTO_VERSION: u32 = 5;

/// Hard cap on one framed line (requests *and* responses). Snapshots of
/// paper-scale clusters are ~1 MiB of JSON; 32 MiB leaves headroom while
/// bounding what a hostile peer can make the daemon buffer.
pub const MAX_LINE_BYTES: usize = 32 * 1024 * 1024;

/// Structured error codes (the `code` field of [`WireError`]).
pub mod codes {
    /// The line was not a valid request document.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request's `v` is not [`super::PROTO_VERSION`].
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// The line exceeded [`super::MAX_LINE_BYTES`]; the connection closes.
    pub const OVERSIZED: &str = "oversized";
    /// `create_session` with a name that is already live.
    pub const SESSION_EXISTS: &str = "session_exists";
    /// The named session does not exist.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
    /// The named policy is not registered (or needs a missing checkpoint).
    pub const UNKNOWN_POLICY: &str = "unknown_policy";
    /// The named dataset preset does not exist.
    pub const UNKNOWN_PRESET: &str = "unknown_preset";
    /// A simulator-level rejection (typed `SimError` rendered in
    /// `message`); the session state is unchanged.
    pub const SIM: &str = "sim";
    /// The session (or an operation against it) is degraded: its durable
    /// log could not be written or its state could not be recovered. The
    /// daemon keeps serving other sessions.
    pub const DEGRADED: &str = "degraded";
    /// The session serves reads but refuses mutations: a durability
    /// failure (failed append/fsync, corrupt recovered log) froze its
    /// write path.
    pub const READ_ONLY: &str = "read_only";
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version ([`PROTO_VERSION`]).
    pub v: u32,
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// The operations a daemon serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Register a new live cluster under a name.
    CreateSession(CreateSession),
    /// Mutate a session's cluster with a typed delta.
    ApplyDelta(ApplyDelta),
    /// Request a rescheduling plan.
    Plan(PlanParams),
    /// Server and (optionally) per-session counters.
    Stats(StatsParams),
    /// Capture a session's full state for offline storage.
    Snapshot(SessionRef),
    /// Replace a session's state from a snapshot.
    Restore(Restore),
    /// Export the daemon's metrics registry (counters, gauges, latency
    /// histograms with p50/p99/p999 per request phase).
    Metrics(MetricsParams),
}

/// Parameters of [`Op::CreateSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateSession {
    /// Session name (the key every later request uses).
    pub name: String,
    /// Synthetic dataset preset to seed the cluster from
    /// (`tiny|small|medium|large|multi|low|mid|high`).
    pub preset: String,
    /// Generation seed.
    pub seed: u64,
    /// Default migration number limit for plan requests.
    pub mnl: usize,
}

/// Parameters of [`Op::ApplyDelta`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyDelta {
    /// Target session.
    pub session: String,
    /// The mutation.
    pub delta: ClusterDelta,
}

/// Parameters of [`Op::Plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanParams {
    /// Target session.
    pub session: String,
    /// Policy name (`agent|ha|swap|mcts|solver|fleet|auto`).
    pub policy: String,
    /// Migration number limit for this plan (0 = the session default).
    /// Always a *global* budget: the `fleet` policy apportions it across
    /// shards and never serves a longer plan.
    pub mnl: usize,
    /// Sampling seed (stochastic policies are deterministic given it).
    pub seed: u64,
    /// Latency budget in milliseconds; bounds anytime policies (MCTS,
    /// solver) and steers `auto` policy selection. 0 = policy default.
    pub budget_ms: u64,
    /// Shard count for the `fleet` policy (0 = sized from the cluster).
    /// Ignored by non-partitioned policies.
    pub shards: usize,
    /// Worker threads for the `fleet` policy (0 = all cores). Changes
    /// wall-clock only — the served plan is byte-identical for any value.
    pub workers: usize,
    /// Inference numerics for the `agent`/`fleet` policies: `Exact64`
    /// plans bit-identically to training, `Fast32` runs the SIMD f32
    /// fast path (tolerance-equivalent decisions). Heuristic policies
    /// ignore it.
    pub precision: PrecisionConfig,
    /// Deploy the plan into the session's live state on success.
    pub commit: bool,
}

/// Parameters of [`Op::Metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsParams {
    /// Also render the snapshot as Prometheus text exposition (the JSON
    /// snapshot is always included).
    pub prometheus: bool,
}

/// Payload of [`Reply::Metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// The structured export: daemon-scoped request/WAL metrics merged
    /// with the process-wide hot-path metrics (simulator repair,
    /// per-precision forward, embed batching, fleet shards).
    pub snapshot: vmr_telemetry::MetricsSnapshot,
    /// Prometheus text exposition of the same snapshot (when requested).
    pub prometheus: Option<String>,
}

/// Parameters of [`Op::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsParams {
    /// Session to include detail for; empty = server-wide counters only.
    pub session: String,
}

/// A bare session reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRef {
    /// Target session.
    pub session: String,
}

/// Parameters of [`Op::Restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Restore {
    /// Target session (must exist).
    pub session: String,
    /// The snapshot to install.
    pub snapshot: SessionSnapshot,
}

/// A session's full transferable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The committed cluster mapping.
    pub state: ClusterState,
    /// Hard service constraints.
    pub constraints: ConstraintSet,
    /// Default migration number limit.
    pub mnl: usize,
    /// Session version at capture time.
    pub version: u64,
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version.
    pub v: u32,
    /// Echo of the request id (0 when the request was unparseable).
    pub id: u64,
    /// Per-request trace id (daemon-assigned, never 0 for dispatched
    /// requests): quote it to correlate this reply with the daemon's
    /// slow-request JSONL records and coalesced-follower spans. 0 when
    /// the request never reached dispatch (unparseable / oversized).
    pub trace: u64,
    /// Outcome.
    pub body: ReplyBody,
}

/// Success-or-error envelope.
// A ReplyBody is built, serialized onto the wire, and dropped — never
// stored in collections — so the size asymmetry between Ok and Err
// costs one stack frame, and boxing would add an allocation per reply.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplyBody {
    /// The operation succeeded.
    Ok(Reply),
    /// The operation failed; the session (if any) is unchanged.
    Err(WireError),
}

/// A structured failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable code (see [`codes`]).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// Success payloads, one per [`Op`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Session registered.
    Created(SessionInfo),
    /// Delta applied.
    DeltaApplied(DeltaApplied),
    /// Plan computed (or served from the coalescing cache).
    Planned(Planned),
    /// Counters.
    Stats(StatsReply),
    /// Captured state.
    Snapshot(SnapshotReply),
    /// Snapshot installed.
    Restored(SessionInfo),
    /// Metrics export.
    Metrics(MetricsReply),
}

/// Shared session summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// Session name.
    pub session: String,
    /// PM count.
    pub pms: usize,
    /// VM count.
    pub vms: usize,
    /// Monotone state version (bumped by every delta / commit / restore).
    pub version: u64,
    /// Current objective value (fragment rate).
    pub objective: f64,
}

/// Payload of [`Reply::DeltaApplied`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaApplied {
    /// Post-delta session summary.
    pub info: SessionInfo,
    /// Id of a created VM.
    pub created_vm: Option<u32>,
    /// Old id of a VM renumbered by a delete.
    pub renumbered_from: Option<u32>,
    /// Its new id.
    pub renumbered_to: Option<u32>,
    /// Migrations performed by a drain.
    pub migrations: usize,
}

/// One migration of a served plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireAction {
    /// VM to migrate.
    pub vm: u32,
    /// Its host at plan time.
    pub from_pm: u32,
    /// Destination PM.
    pub to_pm: u32,
}

/// Payload of [`Reply::Planned`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Planned {
    /// Session name.
    pub session: String,
    /// Policy that produced the plan (post-`auto` resolution).
    pub policy: String,
    /// Objective before the plan.
    pub objective_before: f64,
    /// Objective after the plan (validated by replay).
    pub objective_after: f64,
    /// The migrations, in execution order.
    pub plan: Vec<WireAction>,
    /// `false` when this response was answered from the session's
    /// coalescing cache (same state version, same parameters) instead of
    /// a fresh policy invocation.
    pub computed: bool,
    /// Session version the plan was computed against.
    pub version: u64,
}

/// Payload of [`Reply::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Live sessions.
    pub sessions: usize,
    /// Requests parsed (any op).
    pub requests: u64,
    /// Plan responses returned.
    pub plans_served: u64,
    /// Plan responses that ran a policy (≤ `plans_served`; the difference
    /// was answered from one batched invocation).
    pub plans_computed: u64,
    /// Deltas applied.
    pub deltas: u64,
    /// Error responses returned.
    pub errors: u64,
    /// `errors`, broken out by [`WireError`] code (sums to `errors`).
    pub errors_by_code: ErrorBreakdown,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Connections waiting in the worker queue right now (admitted but
    /// not being served — the backpressure gauge).
    pub queue_depth: u64,
    /// Sessions recovered from the data dir at boot (0 when the daemon
    /// runs without `--data-dir`).
    pub recoveries: u64,
    /// Sessions registered on disk but unrecoverable (every request
    /// against them answers [`codes::DEGRADED`]).
    pub degraded_sessions: usize,
    /// One row per live session (lock-free best effort: a session busy
    /// computing reports `busy` with its detail omitted rather than
    /// blocking the stats op behind a minutes-long plan).
    pub sessions_detail: Vec<SessionDetail>,
    /// Per-session detail when requested.
    pub session: Option<SessionInfo>,
    /// Durability gauges of the requested session (`None` when the
    /// daemon is not durable or no session was named).
    pub durability: Option<DurabilityStats>,
}

/// Error responses by [`WireError`] code (see [`StatsReply::errors_by_code`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBreakdown {
    /// [`codes::BAD_REQUEST`] responses.
    pub bad_request: u64,
    /// [`codes::UNSUPPORTED_VERSION`] responses.
    pub unsupported_version: u64,
    /// [`codes::OVERSIZED`] responses.
    pub oversized: u64,
    /// [`codes::SESSION_EXISTS`] responses.
    pub session_exists: u64,
    /// [`codes::UNKNOWN_SESSION`] responses.
    pub unknown_session: u64,
    /// [`codes::UNKNOWN_POLICY`] responses.
    pub unknown_policy: u64,
    /// [`codes::UNKNOWN_PRESET`] responses.
    pub unknown_preset: u64,
    /// [`codes::SIM`] responses.
    pub sim: u64,
    /// [`codes::DEGRADED`] responses.
    pub degraded: u64,
    /// [`codes::READ_ONLY`] responses.
    pub read_only: u64,
    /// Responses with a code this build does not know (future-proofing;
    /// always 0 today).
    pub other: u64,
}

/// One session row of [`StatsReply::sessions_detail`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDetail {
    /// Session name.
    pub session: String,
    /// Monotone state version.
    pub version: u64,
    /// Whether the session lock was held (a plan in flight) when stats
    /// were sampled; `info` is `None` in that case.
    pub busy: bool,
    /// Entity counts and objective (omitted while `busy`).
    pub info: Option<SessionInfo>,
    /// Whether the session refuses mutations (durability degradation).
    pub read_only: bool,
    /// Durability gauges (`None` on a non-durable daemon).
    pub durability: Option<DurabilityStats>,
}

/// Durability gauges of one session (see [`StatsReply::durability`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityStats {
    /// LSN of the last record appended to the write-ahead log.
    pub appended_lsn: u64,
    /// LSN of the last record known fsynced (≤ `appended_lsn`; equal
    /// under the default every-record group-commit policy).
    pub durable_lsn: u64,
    /// LSN the current snapshot file covers (compaction floor).
    pub snapshot_lsn: u64,
    /// Bytes in the live log segment (since the last compaction).
    pub log_bytes: u64,
    /// Whether the session refuses mutations.
    pub read_only: bool,
    /// Why it refuses them (empty when healthy).
    pub reason: String,
}

/// Payload of [`Reply::Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotReply {
    /// The captured state.
    pub snapshot: SessionSnapshot,
}

/// Outcome of reading one frame.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `buf` holds one complete line (without the terminator).
    Line,
    /// The peer closed the stream cleanly.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`]; the stream cannot be
    /// resynchronized and must be closed after an error response.
    Oversized,
}

/// Reads one `\n`-framed line into `buf`, enforcing [`MAX_LINE_BYTES`].
///
/// The caller clears `buf` between frames. Bytes are *appended*: if the
/// underlying stream has a read timeout and this returns an
/// `Err(WouldBlock | TimedOut)`, everything read so far stays in `buf`
/// and a retry resumes accumulating the same frame — which is how the
/// server keeps idle connections from pinning a worker forever.
pub fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<ReadOutcome> {
    let had = buf.len();
    let remaining = (MAX_LINE_BYTES + 1).saturating_sub(had);
    if remaining == 0 {
        return Ok(ReadOutcome::Oversized);
    }
    let mut limited = reader.by_ref().take(remaining as u64);
    let n = limited.read_until(b'\n', buf)?;
    if n == 0 && had == 0 {
        return Ok(ReadOutcome::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        if buf.len() > MAX_LINE_BYTES {
            return Ok(ReadOutcome::Oversized);
        }
        return Ok(ReadOutcome::Line);
    }
    // No terminator: either EOF mid-line (treat as a final line) or the
    // cap was hit with more bytes pending.
    if buf.len() > MAX_LINE_BYTES {
        return Ok(ReadOutcome::Oversized);
    }
    Ok(ReadOutcome::Line)
}

/// Writes one value as a `\n`-framed JSON line and flushes.
pub fn write_frame<T: Serialize>(writer: &mut impl Write, value: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Convenience constructor for an error response (trace 0 — dispatch
/// stamps the request's trace id before writing).
pub fn error_response(id: u64, code: &str, message: impl Into<String>) -> Response {
    Response {
        v: PROTO_VERSION,
        id,
        trace: 0,
        body: ReplyBody::Err(WireError { code: code.to_string(), message: message.into() }),
    }
}

/// Convenience constructor for a success response (trace 0 — dispatch
/// stamps the request's trace id before writing).
pub fn ok_response(id: u64, reply: Reply) -> Response {
    Response { v: PROTO_VERSION, id, trace: 0, body: ReplyBody::Ok(reply) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            v: PROTO_VERSION,
            id: 7,
            op: Op::Plan(PlanParams {
                session: "prod".into(),
                policy: "agent".into(),
                mnl: 10,
                seed: 3,
                budget_ms: 50,
                shards: 0,
                workers: 0,
                precision: PrecisionConfig::Fast32,
                commit: false,
            }),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn delta_ops_roundtrip() {
        use vmr_sim::env::ClusterDelta;
        use vmr_sim::types::{NumaPolicy, PmId, VmId};
        for delta in [
            ClusterDelta::VmCreate { cpu: 4, mem: 8, numa: NumaPolicy::Single },
            ClusterDelta::VmDelete { vm: VmId(3) },
            ClusterDelta::VmResize { vm: VmId(1), cpu: 8, mem: 16 },
            ClusterDelta::PmAdd { cpu_per_numa: 44, mem_per_numa: 128 },
            ClusterDelta::PmDrain { pm: PmId(2) },
        ] {
            let req = Request {
                v: PROTO_VERSION,
                id: 1,
                op: Op::ApplyDelta(ApplyDelta { session: "s".into(), delta }),
            };
            let back: Request =
                serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = ok_response(
            9,
            Reply::Planned(Planned {
                session: "s".into(),
                policy: "ha".into(),
                objective_before: 0.5,
                objective_after: 0.25,
                plan: vec![WireAction { vm: 1, from_pm: 0, to_pm: 2 }],
                computed: true,
                version: 4,
            }),
        );
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);
        let err = error_response(0, codes::BAD_REQUEST, "nope");
        let back: Response = serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert_eq!(err, back);
    }

    #[test]
    fn metrics_op_and_reply_roundtrip() {
        let req = Request {
            v: PROTO_VERSION,
            id: 3,
            op: Op::Metrics(MetricsParams { prometheus: true }),
        };
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(req, back);

        let mut snapshot = vmr_telemetry::MetricsSnapshot::default();
        snapshot.push_counter("serve_requests", 9);
        snapshot.push_gauge("serve_queue_depth", 1);
        let resp = ok_response(
            3,
            Reply::Metrics(MetricsReply { prometheus: Some(snapshot.to_prometheus()), snapshot }),
        );
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn stats_reply_roundtrips_with_observability_fields() {
        let reply = Reply::Stats(StatsReply {
            sessions: 1,
            requests: 10,
            plans_served: 4,
            plans_computed: 2,
            deltas: 3,
            errors: 2,
            errors_by_code: ErrorBreakdown {
                bad_request: 1,
                unknown_session: 1,
                ..ErrorBreakdown::default()
            },
            uptime_ms: 1234,
            queue_depth: 2,
            recoveries: 0,
            degraded_sessions: 0,
            sessions_detail: vec![SessionDetail {
                session: "prod".into(),
                version: 7,
                busy: false,
                info: Some(SessionInfo {
                    session: "prod".into(),
                    pms: 40,
                    vms: 200,
                    version: 7,
                    objective: 0.25,
                }),
                read_only: false,
                durability: None,
            }],
            session: None,
            durability: None,
        });
        let mut resp = ok_response(1, reply);
        resp.trace = 99;
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn read_frame_handles_lines_eof_and_crlf() {
        let mut cur = Cursor::new(b"abc\r\ndef\nrest".to_vec());
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut cur, &mut buf).unwrap(), ReadOutcome::Line);
        assert_eq!(buf, b"abc");
        buf.clear();
        assert_eq!(read_frame(&mut cur, &mut buf).unwrap(), ReadOutcome::Line);
        assert_eq!(buf, b"def");
        // Unterminated final line is still delivered.
        buf.clear();
        assert_eq!(read_frame(&mut cur, &mut buf).unwrap(), ReadOutcome::Line);
        assert_eq!(buf, b"rest");
        buf.clear();
        assert_eq!(read_frame(&mut cur, &mut buf).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn read_frame_caps_line_length() {
        let mut big = vec![b'x'; MAX_LINE_BYTES + 10];
        big.push(b'\n');
        let mut cur = Cursor::new(big);
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut cur, &mut buf).unwrap(), ReadOutcome::Oversized);
    }

    /// A reader that times out between chunks, like a socket with
    /// `SO_RCVTIMEO` receiving a frame in pieces.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        next: usize,
    }

    impl io::Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.chunks.len() {
                return Ok(0);
            }
            if self.chunks[self.next].is_empty() {
                self.next += 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            let chunk = &mut self.chunks[self.next];
            let n = chunk.len().min(out.len());
            out[..n].copy_from_slice(&chunk[..n]);
            chunk.drain(..n);
            if chunk.is_empty() {
                self.next += 1;
            }
            Ok(n)
        }
    }

    #[test]
    fn read_frame_resumes_after_timeouts() {
        let reader =
            Chunked { chunks: vec![b"par".to_vec(), Vec::new(), b"tial\n".to_vec()], next: 0 };
        let mut reader = io::BufReader::new(reader);
        let mut buf = Vec::new();
        let err = read_frame(&mut reader, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(buf, b"par", "partial bytes survive the timeout");
        // The retry resumes the same frame.
        assert_eq!(read_frame(&mut reader, &mut buf).unwrap(), ReadOutcome::Line);
        assert_eq!(buf, b"partial");
    }
}
