//! Blocking client for the `vmr-serve` wire protocol — the library behind
//! `vmr request`, the loopback e2e suites, and the serving benches.
//!
//! ## Retry discipline
//!
//! [`ServeClient::connect_with_retry`] retries the initial TCP connect,
//! and a client built that way transparently retries **idempotent**
//! requests (`plan` without commit, `stats`, `snapshot`) across
//! transport failures, reconnecting with full-jitter exponential
//! backoff. Mutating requests (`create_session`, `apply_delta`,
//! committing `plan`, `restore`) are **never** retried automatically:
//! a transport error after the frame was sent leaves the mutation's
//! fate unknown, and replaying it could double-apply. Callers see the
//! original [`ClientError`] and decide (e.g. re-check via `stats`).

use std::fmt;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use vmr_sim::env::ClusterDelta;

use crate::proto::{
    self, ApplyDelta, CreateSession, DeltaApplied, MetricsParams, MetricsReply, Op, PlanParams,
    Planned, ReadOutcome, Reply, ReplyBody, Request, Response, Restore, SessionInfo, SessionRef,
    SessionSnapshot, SnapshotReply, StatsParams, StatsReply, WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent something that is not a valid response (or closed
    /// mid-exchange).
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// Bounded retry with full-jitter exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter seed (deterministic for tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based): full jitter —
    /// uniform in `[0, min(cap, base * 2^retry)]` — so a thundering herd
    /// of reconnecting clients spreads out instead of stampeding.
    pub fn backoff(&mut self, retry: u32) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.cap)
            .as_nanos() as u64;
        Duration::from_nanos(if ceil == 0 { 0 } else { self.next_rand() % (ceil + 1) })
    }

    /// SplitMix64 step (no external RNG dependency; deterministic).
    fn next_rand(&mut self) -> u64 {
        self.seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One connection to a daemon. Requests are serial (send, then read the
/// echoing response); open one client per thread for concurrency.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    buf: Vec<u8>,
    /// Set by [`ServeClient::connect_with_retry`]: enables transparent
    /// reconnect + retry for idempotent requests.
    retry: Option<(SocketAddr, RetryPolicy)>,
}

impl ServeClient {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { writer: stream, reader, next_id: 0, buf: Vec::new(), retry: None })
    }

    /// Connects with bounded retry (the daemon may still be booting —
    /// e.g. replaying a long recovery log). The returned client keeps the
    /// policy and transparently retries *idempotent* requests over
    /// reconnects; see the module docs for what is never retried.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        mut policy: RetryPolicy,
    ) -> io::Result<Self> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut retry = 0u32;
        loop {
            match Self::connect(resolved) {
                Ok(mut client) => {
                    client.retry = Some((resolved, policy));
                    return Ok(client);
                }
                Err(e) => {
                    retry += 1;
                    if retry >= policy.attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(retry - 1));
                }
            }
        }
    }

    /// Drops the current socket and dials the remembered address again.
    fn reconnect(&mut self, addr: SocketAddr) -> io::Result<()> {
        let fresh = Self::connect(addr)?;
        self.writer = fresh.writer;
        self.reader = fresh.reader;
        Ok(())
    }

    /// Sets a read timeout on the underlying socket (useful in tests so
    /// a hung server fails an assertion instead of blocking forever).
    pub fn stream_timeout(&mut self, timeout: std::time::Duration) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }

    /// Whether a request may be replayed after a transport failure of
    /// unknown outcome: reads, and plans that do not commit.
    fn idempotent(op: &Op) -> bool {
        match op {
            Op::Plan(p) => !p.commit,
            Op::Stats(_) | Op::Snapshot(_) | Op::Metrics(_) => true,
            Op::CreateSession(_) | Op::ApplyDelta(_) | Op::Restore(_) => false,
        }
    }

    /// Sends one operation and reads its reply. Clients built via
    /// [`ServeClient::connect_with_retry`] transparently reconnect and
    /// retry transport failures — but only for idempotent operations.
    pub fn request(&mut self, op: Op) -> ClientResult<Reply> {
        let Some((addr, mut policy)) = self.retry.clone().filter(|_| Self::idempotent(&op)) else {
            return self.request_once(op);
        };
        let mut retry = 0u32;
        loop {
            let transient = match self.request_once(op.clone()) {
                Ok(reply) => return Ok(reply),
                // A structured server error is an answer, not a failure.
                Err(ClientError::Server(e)) => return Err(ClientError::Server(e)),
                Err(e) => e,
            };
            retry += 1;
            if retry >= policy.attempts.max(1) {
                return Err(transient);
            }
            std::thread::sleep(policy.backoff(retry - 1));
            // A dead socket poisons every later exchange; reconnect (or
            // keep backing off until the daemon is reachable again).
            let _ = self.reconnect(addr);
        }
    }

    fn request_once(&mut self, op: Op) -> ClientResult<Reply> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Request { v: proto::PROTO_VERSION, id, op };
        proto::write_frame(&mut self.writer, &req)?;
        self.buf.clear();
        match proto::read_frame(&mut self.reader, &mut self.buf)? {
            ReadOutcome::Eof => {
                return Err(ClientError::Protocol("server closed the connection".into()))
            }
            ReadOutcome::Oversized => {
                return Err(ClientError::Protocol("oversized response frame".into()))
            }
            ReadOutcome::Line => {}
        }
        let resp: Response = serde_json::from_slice(&self.buf)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e:?}")))?;
        if resp.id != id && resp.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        match resp.body {
            ReplyBody::Ok(reply) => Ok(reply),
            ReplyBody::Err(e) => Err(ClientError::Server(e)),
        }
    }

    /// `create_session`.
    pub fn create_session(
        &mut self,
        name: &str,
        preset: &str,
        seed: u64,
        mnl: usize,
    ) -> ClientResult<SessionInfo> {
        match self.request(Op::CreateSession(CreateSession {
            name: name.into(),
            preset: preset.into(),
            seed,
            mnl,
        }))? {
            Reply::Created(info) => Ok(info),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// `apply_delta`.
    pub fn apply_delta(
        &mut self,
        session: &str,
        delta: ClusterDelta,
    ) -> ClientResult<DeltaApplied> {
        match self.request(Op::ApplyDelta(ApplyDelta { session: session.into(), delta }))? {
            Reply::DeltaApplied(d) => Ok(d),
            other => Err(unexpected("DeltaApplied", &other)),
        }
    }

    /// `plan` with explicit parameters.
    pub fn plan(&mut self, params: PlanParams) -> ClientResult<Planned> {
        match self.request(Op::Plan(params))? {
            Reply::Planned(p) => Ok(p),
            other => Err(unexpected("Planned", &other)),
        }
    }

    /// `stats` (empty session name = server-wide only).
    pub fn stats(&mut self, session: &str) -> ClientResult<StatsReply> {
        match self.request(Op::Stats(StatsParams { session: session.into() }))? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// `metrics` (`prometheus: true` additionally requests the text
    /// exposition rendering).
    pub fn metrics(&mut self, prometheus: bool) -> ClientResult<MetricsReply> {
        match self.request(Op::Metrics(MetricsParams { prometheus }))? {
            Reply::Metrics(m) => Ok(m),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// `snapshot`.
    pub fn snapshot(&mut self, session: &str) -> ClientResult<SnapshotReply> {
        match self.request(Op::Snapshot(SessionRef { session: session.into() }))? {
            Reply::Snapshot(s) => Ok(s),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// `restore`.
    pub fn restore(
        &mut self,
        session: &str,
        snapshot: SessionSnapshot,
    ) -> ClientResult<SessionInfo> {
        match self.request(Op::Restore(Restore { session: session.into(), snapshot }))? {
            Reply::Restored(info) => Ok(info),
            other => Err(unexpected("Restored", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    let kind = match got {
        Reply::Created(_) => "Created",
        Reply::DeltaApplied(_) => "DeltaApplied",
        Reply::Planned(_) => "Planned",
        Reply::Stats(_) => "Stats",
        Reply::Snapshot(_) => "Snapshot",
        Reply::Restored(_) => "Restored",
        Reply::Metrics(_) => "Metrics",
    };
    ClientError::Protocol(format!("expected {wanted} reply, got {kind}"))
}
