//! Blocking client for the `vmr-serve` wire protocol — the library behind
//! `vmr request`, the loopback e2e suites, and the serving benches.

use std::fmt;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use vmr_sim::env::ClusterDelta;

use crate::proto::{
    self, ApplyDelta, CreateSession, DeltaApplied, Op, PlanParams, Planned, ReadOutcome, Reply,
    ReplyBody, Request, Response, Restore, SessionInfo, SessionRef, SessionSnapshot, SnapshotReply,
    StatsParams, StatsReply, WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent something that is not a valid response (or closed
    /// mid-exchange).
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// One connection to a daemon. Requests are serial (send, then read the
/// echoing response); open one client per thread for concurrency.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { writer: stream, reader, next_id: 0, buf: Vec::new() })
    }

    /// Sets a read timeout on the underlying socket (useful in tests so
    /// a hung server fails an assertion instead of blocking forever).
    pub fn stream_timeout(&mut self, timeout: std::time::Duration) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }

    /// Sends one operation and reads its reply.
    pub fn request(&mut self, op: Op) -> ClientResult<Reply> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Request { v: proto::PROTO_VERSION, id, op };
        proto::write_frame(&mut self.writer, &req)?;
        self.buf.clear();
        match proto::read_frame(&mut self.reader, &mut self.buf)? {
            ReadOutcome::Eof => {
                return Err(ClientError::Protocol("server closed the connection".into()))
            }
            ReadOutcome::Oversized => {
                return Err(ClientError::Protocol("oversized response frame".into()))
            }
            ReadOutcome::Line => {}
        }
        let resp: Response = serde_json::from_slice(&self.buf)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e:?}")))?;
        if resp.id != id && resp.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        match resp.body {
            ReplyBody::Ok(reply) => Ok(reply),
            ReplyBody::Err(e) => Err(ClientError::Server(e)),
        }
    }

    /// `create_session`.
    pub fn create_session(
        &mut self,
        name: &str,
        preset: &str,
        seed: u64,
        mnl: usize,
    ) -> ClientResult<SessionInfo> {
        match self.request(Op::CreateSession(CreateSession {
            name: name.into(),
            preset: preset.into(),
            seed,
            mnl,
        }))? {
            Reply::Created(info) => Ok(info),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// `apply_delta`.
    pub fn apply_delta(
        &mut self,
        session: &str,
        delta: ClusterDelta,
    ) -> ClientResult<DeltaApplied> {
        match self.request(Op::ApplyDelta(ApplyDelta { session: session.into(), delta }))? {
            Reply::DeltaApplied(d) => Ok(d),
            other => Err(unexpected("DeltaApplied", &other)),
        }
    }

    /// `plan` with explicit parameters.
    pub fn plan(&mut self, params: PlanParams) -> ClientResult<Planned> {
        match self.request(Op::Plan(params))? {
            Reply::Planned(p) => Ok(p),
            other => Err(unexpected("Planned", &other)),
        }
    }

    /// `stats` (empty session name = server-wide only).
    pub fn stats(&mut self, session: &str) -> ClientResult<StatsReply> {
        match self.request(Op::Stats(StatsParams { session: session.into() }))? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// `snapshot`.
    pub fn snapshot(&mut self, session: &str) -> ClientResult<SnapshotReply> {
        match self.request(Op::Snapshot(SessionRef { session: session.into() }))? {
            Reply::Snapshot(s) => Ok(s),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// `restore`.
    pub fn restore(
        &mut self,
        session: &str,
        snapshot: SessionSnapshot,
    ) -> ClientResult<SessionInfo> {
        match self.request(Op::Restore(Restore { session: session.into(), snapshot }))? {
            Reply::Restored(info) => Ok(info),
            other => Err(unexpected("Restored", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    let kind = match got {
        Reply::Created(_) => "Created",
        Reply::DeltaApplied(_) => "DeltaApplied",
        Reply::Planned(_) => "Planned",
        Reply::Stats(_) => "Stats",
        Reply::Snapshot(_) => "Snapshot",
        Reply::Restored(_) => "Restored",
    };
    ClientError::Protocol(format!("expected {wanted} reply, got {kind}"))
}
