//! # vmr-serve — the online rescheduling service
//!
//! The offline stack (train → eval binaries) exercises the paper's agent
//! one episode at a time; this crate makes the whole repo *servable*: a
//! long-running daemon that holds live clusters in memory, ingests typed
//! state deltas, and answers rescheduling plan requests over a versioned
//! JSON-lines TCP protocol — the subsystem every later scale-out PR
//! (sharding, replication, multi-cluster) builds on.
//!
//! * [`session`] — named live clusters, each a [`vmr_sim::env::ReschedEnv`]
//!   whose PR 2 incremental observation engine stays warm across
//!   requests: deltas repair O(touched entities), plan rollouts rewind
//!   instead of resetting, and **no request pays an O(cluster)
//!   featurization rebuild**.
//! * [`proto`] — the wire protocol: `create_session`, `apply_delta`,
//!   `plan`, `stats`, `snapshot`, `restore`; malformed input yields
//!   structured errors, oversized frames are rejected with a bounded
//!   buffer.
//! * [`server`] — `std::net` listener + worker thread pool; identical
//!   concurrent `plan` requests against one session are **coalesced**
//!   into a single policy invocation and memoized until a delta bumps
//!   the state version.
//! * [`policies`] — one [`policies::PlanPolicy`] trait over the trained
//!   VMR2L checkpoint (via [`vmr_core::infer::SharedAgent`]), HA, swap
//!   local search, MCTS, and the branch-and-bound solver; `auto` picks by
//!   the request's latency budget.
//! * [`client`] — the blocking client library behind `vmr request`, the
//!   e2e suites, and the serving benches; bounded retry with full-jitter
//!   exponential backoff for idempotent requests.
//! * [`wal`] — per-session write-ahead log: length-prefixed,
//!   CRC32-checksummed records with monotone LSNs, group-commit fsync,
//!   snapshot compaction, and a fault-injection harness.
//! * [`recovery`] — boot-time crash recovery: snapshot + log-tail replay,
//!   bit-identical to a never-crashed twin; torn tails dropped whole,
//!   corruption degrades to read-only, dead sessions never take down the
//!   daemon.
//! * telemetry (via [`vmr_telemetry`]) — every request carries a trace id
//!   and per-phase span timings (decode, lock wait, plan compute/wait,
//!   WAL append/fsync, response write) recorded into lock-free
//!   histograms; the `metrics` wire op exports them as JSON or Prometheus
//!   text, slow requests emit leveled JSONL events, and `vmr top` renders
//!   the live picture.
//!
//! ## Quick loopback example
//!
//! ```
//! use vmr_serve::client::ServeClient;
//! use vmr_serve::proto::PlanParams;
//! use vmr_serve::server::{serve, ServerConfig};
//!
//! let handle = serve(ServerConfig::default()).unwrap();
//! let mut client = ServeClient::connect(handle.addr()).unwrap();
//! client.create_session("prod", "tiny", 42, 8).unwrap();
//! let planned = client
//!     .plan(PlanParams {
//!         session: "prod".into(),
//!         policy: "ha".into(),
//!         mnl: 4,
//!         seed: 0,
//!         budget_ms: 50, shards: 0, workers: 0,
//!         precision: vmr_core::config::PrecisionConfig::Exact64,
//!         commit: false,
//!     })
//!     .unwrap();
//! assert!(planned.objective_after <= planned.objective_before);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod policies;
pub mod proto;
pub mod recovery;
pub mod server;
pub mod session;
pub(crate) mod sync;
pub mod wal;

pub use client::{ClientError, RetryPolicy, ServeClient};
pub use policies::{PlanPolicy, PlanRequest, PolicyRegistry};
pub use proto::{Op, Reply, Request, Response, PROTO_VERSION};
pub use server::{serve, ServerConfig, ServerHandle};
pub use session::Session;
pub use wal::{DurabilityConfig, FaultControl, SessionLog};
