//! Live rescheduling sessions: one named cluster per session, backed by a
//! [`ReschedEnv`] whose incremental observation engine ([`vmr_sim::ObsEngine`])
//! stays warm across every request. Deltas mutate the committed state in
//! O(touched entities); plan requests roll out speculatively and rewind,
//! so no request ever pays an O(cluster) featurization rebuild.

use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::{Action, ClusterDelta, DeltaOutcome, ReschedEnv};
use vmr_sim::error::{SimError, SimResult};
use vmr_sim::objective::Objective;
use vmr_sim::ClusterState;
use vmr_sim::ConstraintSet;

use crate::policies::{PlanPolicy, PlanRequest};
use crate::proto::{SessionInfo, SessionSnapshot, WireAction};

/// Resolves a dataset preset name (the same vocabulary as `vmr gen`).
pub fn preset_config(name: &str) -> Option<ClusterConfig> {
    Some(match name {
        "tiny" => ClusterConfig::tiny(),
        "small" => ClusterConfig::small_train(),
        "medium" => ClusterConfig::medium(),
        "large" => ClusterConfig::large(),
        "multi" => ClusterConfig::multi_resource(),
        "low" => ClusterConfig::workload_low(),
        "mid" => ClusterConfig::workload_mid(),
        "high" => ClusterConfig::workload_high(),
        "xxl" => ClusterConfig::xxl(),
        _ => return None,
    })
}

/// A validated, scored plan ready to serialize.
#[derive(Debug, Clone)]
pub struct PlanResult {
    /// The migrations in execution order.
    pub plan: Vec<WireAction>,
    /// Objective at the committed state.
    pub objective_before: f64,
    /// Objective after replaying the plan.
    pub objective_after: f64,
}

/// One live cluster: name, environment (state + constraints + engine),
/// and a default MNL for plan requests that do not carry one.
#[derive(Debug)]
pub struct Session {
    name: String,
    env: ReschedEnv,
    default_mnl: usize,
}

impl Session {
    /// Builds a session around an initial mapping.
    pub fn new(
        name: impl Into<String>,
        state: ClusterState,
        constraints: ConstraintSet,
        mnl: usize,
    ) -> SimResult<Self> {
        let env = ReschedEnv::new(state, constraints, Objective::default(), mnl)?;
        Ok(Session { name: name.into(), env, default_mnl: mnl })
    }

    /// Builds a session from a dataset preset (see [`preset_config`]).
    pub fn from_preset(
        name: impl Into<String>,
        config: &ClusterConfig,
        seed: u64,
        mnl: usize,
    ) -> SimResult<Self> {
        let state = generate_mapping(config, seed)?;
        let constraints = ConstraintSet::new(state.num_vms());
        Self::new(name, state, constraints, mnl)
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session's default migration number limit.
    pub fn default_mnl(&self) -> usize {
        self.default_mnl
    }

    /// Direct environment access (benches and tests).
    pub fn env_mut(&mut self) -> &mut ReschedEnv {
        &mut self.env
    }

    /// Summary for wire responses.
    pub fn info(&self, version: u64) -> SessionInfo {
        SessionInfo {
            session: self.name.clone(),
            pms: self.env.state().num_pms(),
            vms: self.env.state().num_vms(),
            version,
            objective: self.env.objective_value(),
        }
    }

    /// Applies a typed delta to the committed state. Incremental: the
    /// observation engine is repaired, never rebuilt.
    pub fn apply_delta(&mut self, delta: &ClusterDelta) -> SimResult<DeltaOutcome> {
        self.env.apply_delta(delta)
    }

    /// Produces, validates, and scores a plan with `policy`.
    ///
    /// The policy may step the environment while searching; the session
    /// rewinds and then *replays* the returned plan step by step — every
    /// served migration is re-checked against the live [`ConstraintSet`],
    /// so an ill-behaved policy yields an error, never an illegal plan.
    /// With `commit` the replayed state becomes the new committed state.
    pub fn plan(
        &mut self,
        policy: &dyn PlanPolicy,
        req: &PlanRequest,
        commit: bool,
    ) -> SimResult<PlanResult> {
        let mnl = if req.mnl == 0 { self.default_mnl } else { req.mnl };
        let req = PlanRequest { mnl, ..*req };
        self.env.rewind();
        self.env.set_mnl(mnl);
        let objective_before = self.env.objective_value();
        let raw = policy.plan(&mut self.env, &req);
        self.env.rewind();
        let raw = raw?;
        // Validation replay: record source hosts as we go.
        let mut wire = Vec::with_capacity(raw.len());
        for &action in &raw {
            let from = self.env.state().placement(action.vm).pm;
            if let Err(e) = self.env.step(action) {
                self.env.rewind();
                return Err(e);
            }
            wire.push(WireAction { vm: action.vm.0, from_pm: from.0, to_pm: action.pm.0 });
        }
        let objective_after = self.env.objective_value();
        if commit {
            self.env.commit();
        } else {
            self.env.rewind();
        }
        Ok(PlanResult { plan: wire, objective_before, objective_after })
    }

    /// Replays and commits an externally-chosen plan (used by restore
    /// tooling and tests).
    pub fn commit_plan(&mut self, plan: &[Action]) -> SimResult<()> {
        self.env.rewind();
        self.env.set_mnl(plan.len().max(self.default_mnl));
        for &action in plan {
            if let Err(e) = self.env.step(action) {
                self.env.rewind();
                return Err(e);
            }
        }
        self.env.commit();
        Ok(())
    }

    /// Captures the committed state for offline storage.
    pub fn snapshot(&mut self, version: u64) -> SessionSnapshot {
        self.env.rewind();
        SessionSnapshot {
            state: self.env.state().clone(),
            constraints: self.env.constraints().clone(),
            mnl: self.default_mnl,
            version,
        }
    }

    /// Builds a session directly from a snapshot (the recovery path).
    ///
    /// The snapshot is *untrusted*: it goes through the same validation
    /// as the live delta path ([`ClusterState::audit_strict`] — no
    /// zero-resource VMs or PMs, even CPU/memory on double-NUMA VMs,
    /// in-range placements) before anything is installed.
    pub fn from_snapshot(name: impl Into<String>, snapshot: SessionSnapshot) -> SimResult<Self> {
        snapshot.state.audit_strict()?;
        if snapshot.constraints.num_vms() != snapshot.state.num_vms() {
            return Err(SimError::InvalidMapping(
                "snapshot constraint set does not cover the cluster".into(),
            ));
        }
        Self::new(name, snapshot.state, snapshot.constraints, snapshot.mnl)
    }

    /// Replaces the session's state from a snapshot (validated like
    /// [`Session::from_snapshot`]; on error the session is unchanged).
    pub fn restore(&mut self, snapshot: SessionSnapshot) -> SimResult<()> {
        let fresh = Self::from_snapshot(self.name.clone(), snapshot)?;
        self.env = fresh.env;
        self.default_mnl = fresh.default_mnl;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::HaPolicy;
    use std::time::Duration;
    use vmr_sim::types::{NumaPolicy, VmId};

    fn session() -> Session {
        Session::from_preset("t", &preset_config("tiny").unwrap(), 3, 6).unwrap()
    }

    fn req(mnl: usize) -> PlanRequest {
        PlanRequest {
            mnl,
            seed: 0,
            budget: Duration::from_millis(100),
            shards: 0,
            workers: 0,
            precision: vmr_core::config::PrecisionConfig::Exact64,
        }
    }

    #[test]
    fn preset_vocabulary() {
        for p in ["tiny", "small", "medium", "large", "multi", "low", "mid", "high", "xxl"] {
            assert!(preset_config(p).is_some(), "{p}");
        }
        assert!(preset_config("nope").is_none());
    }

    #[test]
    fn plan_does_not_disturb_committed_state() {
        let mut s = session();
        let before = s.env_mut().state().clone();
        let out = s.plan(&HaPolicy, &req(4), false).unwrap();
        assert!(out.objective_after <= out.objective_before + 1e-12);
        // The reverse index is an unordered set; compare the canonical
        // parts (placements + accounting) after the rewind.
        assert_eq!(s.env_mut().state().placements(), before.placements());
        assert_eq!(s.env_mut().state().pms(), before.pms());
        // Served actions carry the true source host.
        for a in &out.plan {
            assert_eq!(before.placement(VmId(a.vm)).pm.0, a.from_pm);
        }
    }

    #[test]
    fn plan_commit_advances_state() {
        let mut s = session();
        let fr0 = s.info(0).objective;
        let out = s.plan(&HaPolicy, &req(6), true).unwrap();
        let fr1 = s.info(1).objective;
        assert!((fr1 - out.objective_after).abs() < 1e-12);
        if !out.plan.is_empty() {
            assert!(fr1 < fr0, "HA commits an improving plan");
        }
    }

    #[test]
    fn deltas_then_plan_stay_consistent() {
        let mut s = session();
        s.apply_delta(&ClusterDelta::VmCreate { cpu: 2, mem: 4, numa: NumaPolicy::Single })
            .unwrap();
        s.apply_delta(&ClusterDelta::VmDelete { vm: VmId(0) }).unwrap();
        let out = s.plan(&HaPolicy, &req(4), false).unwrap();
        assert!(out.objective_after <= out.objective_before + 1e-12);
        s.env_mut().state().audit().unwrap();
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = session();
        let snap = s.snapshot(5);
        s.apply_delta(&ClusterDelta::VmCreate { cpu: 4, mem: 8, numa: NumaPolicy::Single })
            .unwrap();
        let mutated = s.env_mut().state().num_vms();
        s.restore(snap.clone()).unwrap();
        assert_eq!(s.env_mut().state().num_vms(), mutated - 1);
        assert_eq!(s.env_mut().state(), &snap.state);
        // A corrupt snapshot is rejected.
        let mut bad = snap;
        bad.constraints = ConstraintSet::new(1);
        assert!(s.restore(bad).is_err());
    }

    #[test]
    fn zero_mnl_uses_session_default() {
        let mut s = session();
        let out = s.plan(&HaPolicy, &req(0), false).unwrap();
        assert!(out.plan.len() <= s.default_mnl());
    }
}
