//! Boot-time crash recovery: rebuild every durable session from its
//! snapshot file plus write-ahead-log tail.
//!
//! The contract (enforced by `tests/prop_wal.rs`): for *any* prefix of
//! the on-disk byte stream — i.e. a crash at any point of any append —
//! recovery yields a session whose state and warm
//! [`vmr_sim::obs_cache::ObsEngine`] observation are **bit-identical**
//! to a never-crashed twin that applied exactly the acknowledged
//! mutations. Torn tails are dropped whole by the CRC scan; mid-log
//! corruption degrades the session to read-only on its recovered good
//! prefix; a missing or invalid snapshot leaves the session registered
//! but dead (every request answers a structured `degraded` error) while
//! the daemon keeps serving everything else.

use std::fs;
use std::path::Path;

use crate::session::Session;
use crate::wal::{scan_log, DurabilityConfig, SessionLog, SnapshotFile, TailState, WalBody};
use vmr_sim::env::Action;
use vmr_sim::types::{PmId, VmId};

/// How one session came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryNote {
    /// Snapshot + whole log tail replayed; read-write service resumes.
    Clean,
    /// A torn final record (crash mid-append) was detected by CRC and
    /// dropped whole; read-write service resumes from the good prefix.
    TornTailDropped {
        /// Bytes discarded after the last whole record.
        dropped_bytes: usize,
    },
    /// Mid-log corruption: the good prefix was recovered and is served
    /// **read-only**; the on-disk evidence is left untouched.
    CorruptReadOnly {
        /// Why the log was rejected.
        reason: String,
    },
}

/// One successfully (possibly partially) recovered session.
pub struct RecoveredSession {
    /// Session name (the directory name).
    pub name: String,
    /// The rebuilt live session, observation engine already warm.
    pub session: Session,
    /// Its durable stream, ready for further appends (or a read-only
    /// stub after corruption).
    pub log: SessionLog,
    /// LSN the session resumed at.
    pub lsn: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed: usize,
    /// How the recovery went.
    pub note: RecoveryNote,
}

/// A session that could not be brought back at all.
#[derive(Debug, Clone)]
pub struct DeadSession {
    /// Session name.
    pub name: String,
    /// Why recovery failed.
    pub reason: String,
}

/// Everything found under a data dir.
pub struct Recovery {
    /// Sessions serving again (read-write or read-only).
    pub live: Vec<RecoveredSession>,
    /// Sessions registered but unrecoverable.
    pub dead: Vec<DeadSession>,
}

impl Recovery {
    /// A human-readable per-session report (what `vmr serve --data-dir`
    /// prints at boot).
    pub fn report(&self) -> String {
        let mut out = String::new();
        for s in &self.live {
            let status = match &s.note {
                RecoveryNote::Clean => "ok".to_string(),
                RecoveryNote::TornTailDropped { dropped_bytes } => {
                    format!("ok (torn tail: {dropped_bytes} bytes dropped)")
                }
                RecoveryNote::CorruptReadOnly { reason } => format!("READ-ONLY ({reason})"),
            };
            out.push_str(&format!(
                "recovered '{}': lsn {}, {} records replayed — {}\n",
                s.name, s.lsn, s.replayed, status
            ));
        }
        for d in &self.dead {
            out.push_str(&format!("DEGRADED '{}': {}\n", d.name, d.reason));
        }
        if self.live.is_empty() && self.dead.is_empty() {
            out.push_str("no durable sessions found\n");
        }
        out
    }
}

/// Converts a logged wire plan back into simulator actions.
pub fn wire_plan_actions(plan: &[crate::proto::WireAction]) -> Vec<Action> {
    plan.iter().map(|a| Action { vm: VmId(a.vm), pm: PmId(a.to_pm) }).collect()
}

/// Rebuilds the durable state of a session directory without writing
/// anything: snapshot plus the intact log prefix. The server uses this
/// to re-align its in-memory state after a failed WAL append — the
/// refused mutation was already applied in memory, and the read-only
/// session must serve exactly the acknowledged history, not the
/// refused tail.
pub fn replay_durable(name: &str, dir: &Path) -> Result<(Session, u64), String> {
    let (snap_path, wal_path) = SessionLog::files_of(dir);
    let snap_bytes = fs::read(&snap_path)
        .map_err(|e| format!("missing or unreadable snapshot {}: {e}", snap_path.display()))?;
    let snap: SnapshotFile = serde_json::from_slice(&snap_bytes)
        .map_err(|e| format!("unparseable snapshot {}: {e:?}", snap_path.display()))?;
    let mut session = Session::from_snapshot(name, snap.snapshot)
        .map_err(|e| format!("snapshot failed validation: {e}"))?;
    let wal_bytes = fs::read(&wal_path).unwrap_or_default();
    let scan = scan_log(&wal_bytes, snap.lsn);
    let mut lsn = snap.lsn;
    for record in &scan.records {
        let result = match &record.body {
            WalBody::Delta(delta) => session.apply_delta(delta).map(|_| ()),
            WalBody::Commit(plan) => session.commit_plan(&wire_plan_actions(plan)),
        };
        if result.is_err() {
            break;
        }
        lsn = record.lsn;
    }
    warm(&mut session);
    Ok((session, lsn))
}

/// Recovers one session directory. `Err(reason)` means the session is
/// dead (nothing trustworthy to serve).
pub fn recover_session(
    name: &str,
    dir: &Path,
    cfg: &DurabilityConfig,
) -> Result<RecoveredSession, String> {
    let (snap_path, wal_path) = SessionLog::files_of(dir);
    let snap_bytes = fs::read(&snap_path)
        .map_err(|e| format!("missing or unreadable snapshot {}: {e}", snap_path.display()))?;
    let snap: SnapshotFile = serde_json::from_slice(&snap_bytes)
        .map_err(|e| format!("unparseable snapshot {}: {e:?}", snap_path.display()))?;
    let mut session = Session::from_snapshot(name, snap.snapshot)
        .map_err(|e| format!("snapshot failed validation: {e}"))?;

    // A missing log with a healthy snapshot is a legal crash window
    // (between the snapshot rename and the fresh-log swap): empty tail.
    let wal_bytes = fs::read(&wal_path).unwrap_or_default();
    let scan = scan_log(&wal_bytes, snap.lsn);

    let mut replayed = 0usize;
    for record in &scan.records {
        let result = match &record.body {
            WalBody::Delta(delta) => session.apply_delta(delta).map(|_| ()),
            WalBody::Commit(plan) => session.commit_plan(&wire_plan_actions(plan)),
        };
        if let Err(e) = result {
            // Only acknowledged (hence once-successful, deterministic)
            // mutations are logged, so a replay failure means the log
            // does not describe this snapshot: stop at the good prefix
            // and degrade to read-only rather than guess.
            let reason = format!("replay of lsn {} failed: {e}", record.lsn);
            // vmr-analyze: allow(P001) reason="replayed > 0 in this branch and replayed <= records.len() by the loop bound"
            let lsn = if replayed == 0 { snap.lsn } else { scan.records[replayed - 1].lsn };
            warm(&mut session);
            return Ok(RecoveredSession {
                name: name.to_string(),
                session,
                log: SessionLog::read_only_stub(dir.to_path_buf(), cfg, lsn, reason.clone()),
                lsn,
                replayed,
                note: RecoveryNote::CorruptReadOnly { reason },
            });
        }
        replayed += 1;
    }

    let lsn = scan.last_lsn;
    warm(&mut session);
    match scan.tail {
        TailState::Corrupt { at_offset, reason } => {
            let reason = format!("wal corrupt at byte {at_offset}: {reason}");
            Ok(RecoveredSession {
                name: name.to_string(),
                session,
                log: SessionLog::read_only_stub(dir.to_path_buf(), cfg, lsn, reason.clone()),
                lsn,
                replayed,
                note: RecoveryNote::CorruptReadOnly { reason },
            })
        }
        tail => {
            let note = match tail {
                TailState::Torn { dropped_bytes } => {
                    RecoveryNote::TornTailDropped { dropped_bytes }
                }
                _ => RecoveryNote::Clean,
            };
            // Re-anchor durability at the recovered state: fresh
            // snapshot + empty log. If even that fails (e.g. the disk is
            // still broken), serve read-only instead of dying.
            let version = lsn;
            let snapshot = session.snapshot(version);
            let log = match SessionLog::install(dir.to_path_buf(), cfg, &snapshot, lsn) {
                Ok(log) => log,
                Err(e) => SessionLog::read_only_stub(
                    dir.to_path_buf(),
                    cfg,
                    lsn,
                    format!("cannot re-anchor log after recovery: {e}"),
                ),
            };
            Ok(RecoveredSession { name: name.to_string(), session, log, lsn, replayed, note })
        }
    }
}

/// Rebuilds the warm observation engine so the first request after boot
/// pays no O(cluster) featurization.
fn warm(session: &mut Session) {
    let _ = session.env_mut().observe();
}

/// Scans `<data_dir>/sessions/*` and recovers everything found.
pub fn recover_dir(cfg: &DurabilityConfig) -> std::io::Result<Recovery> {
    let mut live = Vec::new();
    let mut dead = Vec::new();
    let sessions = cfg.sessions_dir();
    if !sessions.exists() {
        return Ok(Recovery { live, dead });
    }
    let mut names: Vec<String> = fs::read_dir(&sessions)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        let dir = sessions.join(&name);
        match recover_session(&name, &dir, cfg) {
            Ok(s) => live.push(s),
            Err(reason) => dead.push(DeadSession { name, reason }),
        }
    }
    Ok(Recovery { live, dead })
}
