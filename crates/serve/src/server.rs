//! The daemon: a `std::net` loopback listener, a worker thread pool, and
//! per-session plan coalescing.
//!
//! Concurrency model: an acceptor thread pushes connections onto a
//! bounded channel; `threads` workers each own one connection at a time
//! and serve its request stream to EOF. Sessions live behind per-session
//! locks, so requests against *different* sessions never contend.
//!
//! Plan coalescing: identical `plan` requests (same session, parameters,
//! and state version) are answered from **one** policy invocation — the
//! first requester computes while concurrent duplicates wait on a
//! condvar, and later duplicates hit the memoized result until a delta
//! bumps the version. The `computed` field of each response records
//! whether it ran a policy, and the `stats` op exposes the aggregate
//! (`plans_served` vs `plans_computed`).

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use vmr_core::infer::SharedAgent;
use vmr_sim::error::SimError;

use crate::policies::{PlanRequest, PolicyRegistry};
use crate::proto::{
    self, codes, ApplyDelta, CreateSession, Op, PlanParams, Planned, ReadOutcome, Reply, Request,
    Response, Restore, SessionRef, SnapshotReply, StatsParams, StatsReply,
};
use crate::recovery;
use crate::session::{preset_config, PlanResult, Session};
use crate::wal::{self, DurabilityConfig, SessionLog, WalBody};

/// Daemon configuration.
#[derive(Default)]
pub struct ServerConfig {
    /// Bind address; empty = `127.0.0.1:0` (loopback, ephemeral port).
    pub addr: String,
    /// Worker threads (0 = 4).
    pub threads: usize,
    /// Inference handle for the `agent` policy (e.g. from
    /// [`SharedAgent::load`]); without it only the classical policies are
    /// registered.
    pub agent: Option<SharedAgent>,
    /// Durable sessions: with a data dir every acknowledged mutation is
    /// written ahead to a per-session CRC32-checksummed log (group-commit
    /// fsync), compacted into snapshot files, and recovered on boot.
    /// `None` keeps the PR 3 in-memory behavior.
    pub durability: Option<DurabilityConfig>,
}

/// Default latency budget for anytime policies when a request says 0.
const DEFAULT_BUDGET: Duration = Duration::from_millis(200);

/// Server-wide counters (see [`StatsReply`]).
#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    plans_served: AtomicU64,
    plans_computed: AtomicU64,
    deltas: AtomicU64,
    errors: AtomicU64,
}

/// Key identifying one coalescable plan computation.
#[derive(Clone, PartialEq, Eq)]
/// `workers` is deliberately absent: fleet plans are byte-identical for
/// any worker count (enforced by `prop_fleet`), so requests differing
/// only in `workers` coalesce onto one computation and share the memo.
struct PlanKey {
    policy: String,
    mnl: usize,
    seed: u64,
    budget_ms: u64,
    shards: usize,
    precision: vmr_core::config::PrecisionConfig,
    version: u64,
}

/// Coalescing slot state for one session.
enum PlanCacheState {
    /// No computation in flight, nothing memoized.
    Idle,
    /// A worker is computing a plan; everyone else waits on the condvar
    /// (same-key waiters then adopt the memoized result, different-key
    /// waiters claim the slot next).
    InFlight,
    /// The last computation's result, valid while the key (incl. state
    /// version) matches.
    Ready(PlanKey, PlanResult),
}

struct SessionSlot {
    session: Mutex<Session>,
    /// Monotone state version: bumped by deltas, commits, and restores.
    version: AtomicU64,
    cache: Mutex<PlanCacheState>,
    cache_cv: Condvar,
    /// The session's durable stream (`None` on a non-durable daemon).
    /// Lock order: `session` before `log`; never the reverse.
    log: Mutex<Option<SessionLog>>,
}

struct Shared {
    sessions: Mutex<HashMap<String, Arc<SessionSlot>>>,
    policies: PolicyRegistry,
    stats: ServerStats,
    stop: AtomicBool,
    /// Live connection sockets, keyed by a monotone id, so shutdown can
    /// unblock workers parked in blocking reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Durability settings (for sessions created after boot).
    durable: Option<DurabilityConfig>,
    /// Sessions present on disk but unrecoverable: every request against
    /// them answers a structured `degraded` error while the rest of the
    /// daemon serves normally.
    dead: Mutex<HashMap<String, String>>,
    /// Sessions recovered at boot.
    recoveries: u64,
}

/// A running daemon; dropping the handle leaves it running (detached) —
/// call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    recovery_report: Option<String>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The boot-time recovery report (`None` on a non-durable daemon).
    pub fn recovery_report(&self) -> Option<&str> {
        self.recovery_report.as_deref()
    }

    /// Stops accepting, drains workers, and joins all threads. In-flight
    /// connections are served to completion of their current request
    /// stream.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Unblock workers parked in blocking reads on live connections.
        for (_, stream) in self.shared.conns.lock().expect("conn map lock").iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Starts the daemon and returns its handle.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let addr = if config.addr.is_empty() { "127.0.0.1:0" } else { &config.addr };
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let threads = if config.threads == 0 { 4 } else { config.threads };

    // Durable boot: recover every session found under the data dir
    // before accepting a single connection.
    let mut sessions = HashMap::new();
    let mut dead = HashMap::new();
    let mut recoveries = 0u64;
    let mut recovery_report = None;
    if let Some(cfg) = &config.durability {
        let recovered = recovery::recover_dir(cfg)?;
        recovery_report = Some(recovered.report());
        recoveries = recovered.live.len() as u64;
        for d in recovered.dead {
            dead.insert(d.name, d.reason);
        }
        for s in recovered.live {
            sessions.insert(
                s.name.clone(),
                Arc::new(SessionSlot {
                    session: Mutex::new(s.session),
                    version: AtomicU64::new(s.lsn),
                    cache: Mutex::new(PlanCacheState::Idle),
                    cache_cv: Condvar::new(),
                    log: Mutex::new(Some(s.log)),
                }),
            );
        }
    }

    let shared = Arc::new(Shared {
        sessions: Mutex::new(sessions),
        policies: PolicyRegistry::standard(config.agent),
        stats: ServerStats::default(),
        stop: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        durable: config.durability,
        dead: Mutex::new(dead),
        recoveries,
    });

    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(threads * 4);
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = Arc::clone(&rx);
        let requeue = tx.clone();
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().expect("worker queue lock");
                // A bounded wait (instead of a blocking recv) lets the
                // worker notice shutdown even though its own requeue
                // sender keeps the channel alive.
                guard.recv_timeout(READ_POLL)
            };
            match stream {
                Ok(stream) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        continue; // drain the queue without serving
                    }
                    let mut current = Some(stream);
                    while let Some(stream) = current.take() {
                        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            shared.conns.lock().expect("conn map lock").insert(conn_id, clone);
                        }
                        let outcome = handle_connection(&shared, stream);
                        shared.conns.lock().expect("conn map lock").remove(&conn_id);
                        if let Ok(Some(idle)) = outcome {
                            // Idle between frames: hand the connection
                            // back to the queue so this worker can serve
                            // others — a few silent peers must not pin
                            // the whole pool. If the queue is full, keep
                            // serving it here.
                            match requeue.try_send(idle) {
                                Ok(()) => {}
                                Err(std::sync::mpsc::TrySendError::Full(s)) => current = Some(s),
                                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {}
                            }
                        }
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }));
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping `tx` terminates the workers' recv loops.
        })
    };

    Ok(ServerHandle { addr, shared, acceptor: Some(acceptor), workers, recovery_report })
}

/// How often a worker parked on an idle connection wakes to check the
/// stop flag (and to stay preemptible by shutdown).
const READ_POLL: Duration = Duration::from_millis(500);

/// Serves one connection's request stream until EOF (`Ok(None)`) or an
/// idle pause between frames (`Ok(Some(stream))` — the caller requeues
/// the connection so silent peers cannot pin workers).
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<Option<TcpStream>> {
    // A read timeout keeps a silent peer from pinning this worker: on
    // each timeout the partial frame is preserved, the stop flag is
    // re-checked, and a connection idle *between* frames is yielded back
    // to the queue.
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let outcome = loop {
            match proto::read_frame(&mut reader, &mut buf) {
                Ok(outcome) => break outcome,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    if buf.is_empty() {
                        // Idle between frames: nothing buffered (a
                        // partial frame would have been drained into
                        // `buf`), so the raw stream can be handed off.
                        return Ok(Some(reader.into_inner()));
                    }
                    // Mid-frame: keep accumulating on this worker.
                }
                Err(e) => return Err(e),
            }
        };
        match outcome {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Oversized => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let resp = proto::error_response(
                    0,
                    codes::OVERSIZED,
                    format!("line exceeds {} bytes; closing", proto::MAX_LINE_BYTES),
                );
                let _ = proto::write_frame(&mut writer, &resp);
                return Ok(None);
            }
            ReadOutcome::Line => {
                if buf.iter().all(|b| b.is_ascii_whitespace()) {
                    continue; // tolerate blank keep-alive lines
                }
                let resp = match serde_json::from_slice::<Request>(&buf) {
                    Err(e) => {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        proto::error_response(0, codes::BAD_REQUEST, format!("{e:?}"))
                    }
                    Ok(req) => dispatch(shared, req),
                };
                proto::write_frame(&mut writer, &resp)?;
            }
        }
    }
}

/// Routes one parsed request.
fn dispatch(shared: &Shared, req: Request) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    if req.v != proto::PROTO_VERSION {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        return proto::error_response(
            req.id,
            codes::UNSUPPORTED_VERSION,
            format!("this daemon speaks v{}", proto::PROTO_VERSION),
        );
    }
    let id = req.id;
    let result = match req.op {
        Op::CreateSession(p) => op_create(shared, p),
        Op::ApplyDelta(p) => op_delta(shared, p),
        Op::Plan(p) => op_plan(shared, p),
        Op::Stats(p) => op_stats(shared, p),
        Op::Snapshot(p) => op_snapshot(shared, p),
        Op::Restore(p) => op_restore(shared, p),
    };
    match result {
        Ok(reply) => proto::ok_response(id, reply),
        Err((code, message)) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            proto::error_response(id, code, message)
        }
    }
}

type OpResult = Result<Reply, (&'static str, String)>;

fn sim_err(e: SimError) -> (&'static str, String) {
    (codes::SIM, e.to_string())
}

fn slot_of(shared: &Shared, name: &str) -> Result<Arc<SessionSlot>, (&'static str, String)> {
    if let Some(slot) = shared.sessions.lock().expect("session map lock").get(name).cloned() {
        return Ok(slot);
    }
    // A session that exists on disk but failed recovery answers with a
    // structured degradation, not "unknown".
    if let Some(reason) = shared.dead.lock().expect("dead map lock").get(name) {
        return Err((codes::DEGRADED, format!("session {name:?} is unrecoverable: {reason}")));
    }
    Err((codes::UNKNOWN_SESSION, format!("no session named {name:?}")))
}

/// Refuses mutations against a read-only (degraded) session up front.
fn check_writable(slot: &SessionSlot) -> Result<(), (&'static str, String)> {
    let log = slot.log.lock().expect("log lock");
    if let Some(reason) = log.as_ref().and_then(|l| l.read_only()) {
        return Err((codes::READ_ONLY, format!("session is read-only: {reason}")));
    }
    Ok(())
}

/// Makes one acknowledged mutation durable: append + group-commit fsync,
/// then compaction when due. Called with the session lock held (lock
/// order: session before log). The mutation is already applied in
/// memory; on a write failure the session degrades to read-only and the
/// client gets a `degraded` error instead of an ack — so the set of
/// *acknowledged* mutations always matches the durable log.
fn durable_append(
    slot: &SessionSlot,
    session: &mut Session,
    name: &str,
    version: u64,
    body: WalBody,
) -> Result<(), (&'static str, String)> {
    let mut guard = slot.log.lock().expect("log lock");
    let Some(log) = guard.as_mut() else { return Ok(()) };
    if let Err(e) = log.append(&body) {
        // The mutation was applied in memory before the append. It is
        // being refused, so the read-only session must serve exactly the
        // acknowledged history: re-align from the durable files (reads
        // usually still work on a disk whose writes fail).
        let reason = match recovery::replay_durable(name, log.dir()) {
            Ok((rebuilt, lsn)) => {
                *session = rebuilt;
                slot.version.store(lsn, Ordering::SeqCst);
                format!("wal append failed: {e}")
            }
            // Unreadable too: keep serving, flag the divergence.
            Err(r) => {
                format!("wal append failed: {e}; state may include the refused mutation ({r})")
            }
        };
        log.mark_read_only(reason);
        return Err((
            codes::DEGRADED,
            format!(
                "durable log append failed ({e}); the mutation was rolled back and the session \
                 is now read-only"
            ),
        ));
    }
    if log.compaction_due() {
        // Compaction failure is safe to skip: the old snapshot + log
        // remain a complete recovery source.
        let snapshot = session.snapshot(version);
        let _ = log.maybe_compact(&snapshot);
    }
    Ok(())
}

fn op_create(shared: &Shared, p: CreateSession) -> OpResult {
    if p.name.is_empty() {
        return Err((codes::BAD_REQUEST, "session name must be non-empty".into()));
    }
    if shared.durable.is_some() && wal::session_dir_name(&p.name).is_none() {
        return Err((
            codes::BAD_REQUEST,
            format!(
                "session name {:?} is not filesystem-safe (durable daemons allow up to 128 \
                 ASCII alphanumerics, '-', '_', '.'; no leading dot)",
                p.name
            ),
        ));
    }
    let config = preset_config(&p.preset)
        .ok_or_else(|| (codes::UNKNOWN_PRESET, format!("no preset named {:?}", p.preset)))?;
    let mnl = if p.mnl == 0 { 10 } else { p.mnl };
    let mut session = Session::from_preset(&p.name, &config, p.seed, mnl).map_err(sim_err)?;
    let info = session.info(0);
    // The existence check is done under the map lock *before* any disk
    // write so two racing creates cannot both install artifacts.
    let mut sessions = shared.sessions.lock().expect("session map lock");
    if sessions.contains_key(&p.name)
        || shared.dead.lock().expect("dead map lock").contains_key(&p.name)
    {
        return Err((codes::SESSION_EXISTS, format!("session {:?} already exists", p.name)));
    }
    let log = match &shared.durable {
        None => None,
        Some(cfg) => {
            let dir = cfg.sessions_dir().join(&p.name);
            let snapshot = session.snapshot(0);
            match SessionLog::install(dir, cfg, &snapshot, 0) {
                Ok(log) => Some(log),
                Err(e) => {
                    return Err((
                        codes::DEGRADED,
                        format!("cannot create durable session artifacts: {e}"),
                    ))
                }
            }
        }
    };
    let slot = Arc::new(SessionSlot {
        session: Mutex::new(session),
        version: AtomicU64::new(0),
        cache: Mutex::new(PlanCacheState::Idle),
        cache_cv: Condvar::new(),
        log: Mutex::new(log),
    });
    sessions.insert(p.name, slot);
    Ok(Reply::Created(info))
}

fn op_delta(shared: &Shared, p: ApplyDelta) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    check_writable(&slot)?;
    let mut session = slot.session.lock().expect("session lock");
    let outcome = session.apply_delta(&p.delta).map_err(sim_err)?;
    let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
    durable_append(&slot, &mut session, &p.session, version, WalBody::Delta(p.delta))?;
    shared.stats.deltas.fetch_add(1, Ordering::Relaxed);
    Ok(Reply::DeltaApplied(proto::DeltaApplied {
        info: session.info(version),
        created_vm: outcome.created.map(|v| v.0),
        renumbered_from: outcome.renumbered.map(|r| r.from.0),
        renumbered_to: outcome.renumbered.map(|r| r.to.0),
        migrations: outcome.migrations.len(),
    }))
}

fn op_plan(shared: &Shared, p: PlanParams) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    let budget = if p.budget_ms == 0 { DEFAULT_BUDGET } else { Duration::from_millis(p.budget_ms) };
    let policy = shared
        .policies
        .resolve(&p.policy, budget)
        .ok_or_else(|| (codes::UNKNOWN_POLICY, format!("no policy named {:?}", p.policy)))?;
    let req = PlanRequest {
        mnl: p.mnl,
        seed: p.seed,
        budget,
        shards: p.shards,
        workers: p.workers,
        precision: p.precision,
    };

    // Committing plans mutate state: no coalescing, straight through.
    if p.commit {
        check_writable(&slot)?;
        let mut session = slot.session.lock().expect("session lock");
        let result = session.plan(policy.as_ref(), &req, true).map_err(sim_err)?;
        let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
        durable_append(
            &slot,
            &mut session,
            &p.session,
            version,
            WalBody::Commit(result.plan.clone()),
        )?;
        shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
        shared.stats.plans_computed.fetch_add(1, Ordering::Relaxed);
        return Ok(planned_reply(&p, policy.name(), result, true, version));
    }

    // The version is only ever bumped while the session lock is held, so
    // the read here is a *tentative* key: after claiming the cache slot
    // and taking the session lock we re-read it, and restart if a delta
    // slipped in between — otherwise a plan computed against the newer
    // state would be memoized and served under the stale version.
    loop {
        let version = slot.version.load(Ordering::SeqCst);
        let key = PlanKey {
            policy: p.policy.clone(),
            mnl: p.mnl,
            seed: p.seed,
            budget_ms: p.budget_ms,
            shards: p.shards,
            precision: p.precision,
            version,
        };

        // Coalesce: adopt a memoized result or claim the slot.
        let mut cache = slot.cache.lock().expect("plan cache lock");
        loop {
            match &*cache {
                PlanCacheState::Ready(k, result) if *k == key => {
                    let result = result.clone();
                    drop(cache);
                    shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
                    return Ok(planned_reply(&p, policy.name(), result, false, version));
                }
                PlanCacheState::InFlight => {
                    // Someone is computing (this key or another): wait,
                    // then re-evaluate the cache.
                    cache = slot.cache_cv.wait(cache).expect("plan cache lock");
                }
                PlanCacheState::Idle | PlanCacheState::Ready(..) => {
                    *cache = PlanCacheState::InFlight;
                    break;
                }
            }
        }
        drop(cache);

        let mut session = slot.session.lock().expect("session lock");
        if slot.version.load(Ordering::SeqCst) != version {
            // A delta won the race between keying and locking: release
            // the claim and restart against the fresh version.
            drop(session);
            *slot.cache.lock().expect("plan cache lock") = PlanCacheState::Idle;
            slot.cache_cv.notify_all();
            continue;
        }
        let computed = session.plan(policy.as_ref(), &req, false);
        drop(session);

        let mut cache = slot.cache.lock().expect("plan cache lock");
        let reply = match computed {
            Ok(result) => {
                *cache = PlanCacheState::Ready(key, result.clone());
                shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
                shared.stats.plans_computed.fetch_add(1, Ordering::Relaxed);
                Ok(planned_reply(&p, policy.name(), result, true, version))
            }
            Err(e) => {
                *cache = PlanCacheState::Idle;
                Err(sim_err(e))
            }
        };
        drop(cache);
        slot.cache_cv.notify_all();
        return reply;
    }
}

fn planned_reply(
    p: &PlanParams,
    policy: &str,
    result: PlanResult,
    computed: bool,
    version: u64,
) -> Reply {
    Reply::Planned(Planned {
        session: p.session.clone(),
        policy: policy.to_string(),
        objective_before: result.objective_before,
        objective_after: result.objective_after,
        plan: result.plan,
        computed,
        version,
    })
}

fn op_stats(shared: &Shared, p: StatsParams) -> OpResult {
    let (session, durability) = if p.session.is_empty() {
        (None, None)
    } else {
        let slot = slot_of(shared, &p.session)?;
        let session = slot.session.lock().expect("session lock");
        let info = session.info(slot.version.load(Ordering::SeqCst));
        let durability = slot.log.lock().expect("log lock").as_ref().map(|l| l.stats());
        drop(session);
        (Some(info), durability)
    };
    let s = &shared.stats;
    let read_only_sessions = {
        let sessions = shared.sessions.lock().expect("session map lock");
        sessions
            .values()
            .filter(|slot| {
                slot.log.lock().expect("log lock").as_ref().is_some_and(|l| l.read_only().is_some())
            })
            .count()
    };
    Ok(Reply::Stats(StatsReply {
        sessions: shared.sessions.lock().expect("session map lock").len(),
        requests: s.requests.load(Ordering::Relaxed),
        plans_served: s.plans_served.load(Ordering::Relaxed),
        plans_computed: s.plans_computed.load(Ordering::Relaxed),
        deltas: s.deltas.load(Ordering::Relaxed),
        errors: s.errors.load(Ordering::Relaxed),
        recoveries: shared.recoveries,
        degraded_sessions: shared.dead.lock().expect("dead map lock").len() + read_only_sessions,
        session,
        durability,
    }))
}

fn op_snapshot(shared: &Shared, p: SessionRef) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    let mut session = slot.session.lock().expect("session lock");
    let snapshot = session.snapshot(slot.version.load(Ordering::SeqCst));
    Ok(Reply::Snapshot(SnapshotReply { snapshot }))
}

fn op_restore(shared: &Shared, p: Restore) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    check_writable(&slot)?;
    let mut session = slot.session.lock().expect("session lock");
    // The snapshot is untrusted input: it goes through the same
    // validation as the live delta path, and a rejection is the client's
    // fault (`bad_request`), not a simulator failure.
    session
        .restore(p.snapshot)
        .map_err(|e| (codes::BAD_REQUEST, format!("snapshot rejected: {e}")))?;
    let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
    // Durable daemons re-anchor: the installed snapshot becomes the new
    // history (snapshot file at the bumped LSN + fresh empty log).
    {
        let mut guard = slot.log.lock().expect("log lock");
        if let Some(log) = guard.as_mut() {
            let snapshot = session.snapshot(version);
            if let Err(e) = log.reanchor(&snapshot, version) {
                log.mark_read_only(format!("restore re-anchor failed: {e}"));
                return Err((
                    codes::DEGRADED,
                    format!("restored in memory but not durably ({e}); session is now read-only"),
                ));
            }
        }
    }
    Ok(Reply::Restored(session.info(version)))
}
