//! The daemon: a `std::net` loopback listener, a worker thread pool, and
//! per-session plan coalescing.
//!
//! Concurrency model: an acceptor thread pushes connections onto a
//! bounded channel; `threads` workers each own one connection at a time
//! and serve its request stream to EOF. Sessions live behind per-session
//! locks, so requests against *different* sessions never contend.
//!
//! Plan coalescing: identical `plan` requests (same session, parameters,
//! and state version) are answered from **one** policy invocation — the
//! first requester computes while concurrent duplicates wait on a
//! condvar, and later duplicates hit the memoized result until a delta
//! bumps the version. The `computed` field of each response records
//! whether it ran a policy, and the `stats` op exposes the aggregate
//! (`plans_served` vs `plans_computed`).

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde_json::json;

use vmr_core::infer::SharedAgent;
use vmr_sim::error::SimError;
use vmr_telemetry::{Counter, EventLog, Gauge, Histogram, Level, Registry, Timer, Unit};

use crate::policies::{PlanRequest, PolicyRegistry};
use crate::proto::{
    self, codes, ApplyDelta, CreateSession, ErrorBreakdown, MetricsParams, MetricsReply, Op,
    PlanParams, Planned, ReadOutcome, Reply, Request, Response, Restore, SessionDetail, SessionRef,
    SnapshotReply, StatsParams, StatsReply,
};
use crate::recovery;
use crate::session::{preset_config, PlanResult, Session};
use crate::sync::LockExt;
use crate::wal::{self, DurabilityConfig, SessionLog, WalBody, WalMetrics};

/// Daemon configuration.
pub struct ServerConfig {
    /// Bind address; empty = `127.0.0.1:0` (loopback, ephemeral port).
    pub addr: String,
    /// Worker threads (0 = 4).
    pub threads: usize,
    /// Inference handle for the `agent` policy (e.g. from
    /// [`SharedAgent::load`]); without it only the classical policies are
    /// registered.
    pub agent: Option<SharedAgent>,
    /// Durable sessions: with a data dir every acknowledged mutation is
    /// written ahead to a per-session CRC32-checksummed log (group-commit
    /// fsync), compacted into snapshot files, and recovered on boot.
    /// `None` keeps the PR 3 in-memory behavior.
    pub durability: Option<DurabilityConfig>,
    /// Span timing switch, on by default (instrumentation is cheap
    /// enough to leave on — the `telemetry_overhead` bench gates it at
    /// <3%). Sets the *process-wide* [`vmr_telemetry::set_enabled`]
    /// flag at boot; request counters and the `metrics` op work either
    /// way, but latency histograms and slow-request records need it on.
    pub telemetry: bool,
    /// Slow-request threshold in milliseconds: a dispatched request
    /// slower than this emits a leveled JSONL record (level `error`
    /// at ≥ 10×) correlated by trace id. 0 disables slow records.
    pub slow_ms: u64,
    /// Sink for JSONL event records (boot, recovery, slow requests).
    /// `None` with `slow_ms > 0` falls back to stderr.
    pub events: Option<Arc<EventLog>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: String::new(),
            threads: 0,
            agent: None,
            durability: None,
            telemetry: true,
            slow_ms: 0,
            events: None,
        }
    }
}

/// Default latency budget for anytime policies when a request says 0.
const DEFAULT_BUDGET: Duration = Duration::from_millis(200);

/// [`WireError`](proto::WireError) codes with a dedicated error-counter
/// bucket, in [`ErrorBreakdown`] field order. Codes outside this list
/// land in the trailing `other` bucket.
const ERROR_CODES: [&str; 10] = [
    codes::BAD_REQUEST,
    codes::UNSUPPORTED_VERSION,
    codes::OVERSIZED,
    codes::SESSION_EXISTS,
    codes::UNKNOWN_SESSION,
    codes::UNKNOWN_POLICY,
    codes::UNKNOWN_PRESET,
    codes::SIM,
    codes::DEGRADED,
    codes::READ_ONLY,
];

/// Server-wide counters (see [`StatsReply`]).
#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    plans_served: AtomicU64,
    plans_computed: AtomicU64,
    deltas: AtomicU64,
    errors: AtomicU64,
    /// Per-code error counters ([`ERROR_CODES`] order, then `other`).
    errors_by_code: [AtomicU64; ERROR_CODES.len() + 1],
}

impl ServerStats {
    /// Counts one error response: the compatibility total plus the
    /// code's bucket.
    fn note_error(&self, code: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let idx = ERROR_CODES.iter().position(|&c| c == code).unwrap_or(ERROR_CODES.len());
        // vmr-analyze: allow(P001) reason="idx clamped to ERROR_CODES.len(), the array's last slot, by unwrap_or above"
        self.errors_by_code[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The wire-shaped per-code breakdown.
    fn breakdown(&self) -> ErrorBreakdown {
        // vmr-analyze: allow(P001) reason="called with literal indices 0..=10 against the ERROR_CODES.len()+1 = 11 slot array"
        let at = |i: usize| self.errors_by_code[i].load(Ordering::Relaxed);
        ErrorBreakdown {
            bad_request: at(0),
            unsupported_version: at(1),
            oversized: at(2),
            session_exists: at(3),
            unknown_session: at(4),
            unknown_policy: at(5),
            unknown_preset: at(6),
            sim: at(7),
            degraded: at(8),
            read_only: at(9),
            other: at(10),
        }
    }
}

/// The daemon's pre-registered metric handles (one registry per server,
/// so a restarted daemon's counters start from zero; the process-wide
/// [`vmr_telemetry::global`] registry holding the library hot-path
/// metrics is merged in at export time).
struct Metrics {
    registry: Arc<Registry>,
    /// Request-line JSON parse time.
    frame_decode: Arc<Histogram>,
    /// Session-mutex acquisition wait.
    lock_wait: Arc<Histogram>,
    /// Policy compute time (leader's span; coalesced followers share it
    /// by trace id instead of re-recording).
    plan_compute: Arc<Histogram>,
    /// Condvar wait of coalesced followers adopting a leader's result.
    plan_wait: Arc<Histogram>,
    /// Response serialize + socket write time.
    resp_write: Arc<Histogram>,
    /// End-to-end dispatched-request time (decode through write).
    request_ns: Arc<Histogram>,
    /// WAL phase histograms, handed to every [`SessionLog`].
    wal: WalMetrics,
    /// Plan responses answered from a leader's computation.
    coalesced: Arc<Counter>,
    /// Requests that crossed the slow threshold.
    slow_requests: Arc<Counter>,
    /// Connections sitting in the worker queue.
    queue_depth: Arc<Gauge>,
}

impl Metrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let hist = |name: &str| registry.histogram(name, Unit::Nanos);
        Metrics {
            frame_decode: hist("serve_frame_decode"),
            lock_wait: hist("serve_lock_wait"),
            plan_compute: hist("serve_plan_compute"),
            plan_wait: hist("serve_plan_wait"),
            resp_write: hist("serve_resp_write"),
            request_ns: hist("serve_request"),
            wal: WalMetrics {
                append: Some(hist("serve_wal_append")),
                fsync: Some(hist("serve_wal_fsync")),
                compact: Some(hist("serve_wal_compact")),
            },
            coalesced: registry.counter("serve_plans_coalesced"),
            slow_requests: registry.counter("serve_slow_requests"),
            queue_depth: registry.gauge("serve_queue_depth"),
            registry,
        }
    }
}

/// Per-request phase timings and identity, accumulated through dispatch
/// for the end-of-request slow check. All spans are 0 when telemetry is
/// disabled.
#[derive(Default)]
struct ReqSpans {
    /// Daemon-assigned trace id (echoed in the [`Response`]).
    trace: u64,
    /// Wire op name.
    op: &'static str,
    /// Target session ("" for server-wide ops).
    session: String,
    /// Request-line parse.
    decode_ns: u64,
    /// Session-mutex wait.
    lock_wait_ns: u64,
    /// Coalesced-follower condvar wait.
    coalesce_wait_ns: u64,
    /// Policy compute (leaders only).
    compute_ns: u64,
    /// Durable append + fsync + compaction.
    wal_ns: u64,
    /// Response serialize + write.
    write_ns: u64,
    /// Served from the coalescing cache.
    coalesced: bool,
    /// Trace id of the leader whose computation this reply shares
    /// (0 = computed here / not a plan).
    leader_trace: u64,
    /// Error code of a failed request.
    code: Option<&'static str>,
}

/// Key identifying one coalescable plan computation.
#[derive(Clone, PartialEq, Eq)]
/// `workers` is deliberately absent: fleet plans are byte-identical for
/// any worker count (enforced by `prop_fleet`), so requests differing
/// only in `workers` coalesce onto one computation and share the memo.
struct PlanKey {
    policy: String,
    mnl: usize,
    seed: u64,
    budget_ms: u64,
    shards: usize,
    precision: vmr_core::config::PrecisionConfig,
    version: u64,
}

/// Coalescing slot state for one session.
enum PlanCacheState {
    /// No computation in flight, nothing memoized.
    Idle,
    /// A worker is computing a plan; everyone else waits on the condvar
    /// (same-key waiters then adopt the memoized result, different-key
    /// waiters claim the slot next). `trace` identifies the computing
    /// leader so followers' replies and slow records can share its
    /// compute span instead of re-measuring.
    InFlight {
        /// The computing request's trace id.
        trace: u64,
    },
    /// The last computation's result, valid while the key (incl. state
    /// version) matches. `trace` is the leader that computed it.
    Ready(PlanKey, PlanResult, u64),
}

struct SessionSlot {
    session: Mutex<Session>,
    /// Monotone state version: bumped by deltas, commits, and restores.
    version: AtomicU64,
    cache: Mutex<PlanCacheState>,
    cache_cv: Condvar,
    /// The session's durable stream (`None` on a non-durable daemon).
    /// Lock order: `session` before `log`; never the reverse.
    log: Mutex<Option<SessionLog>>,
}

struct Shared {
    sessions: Mutex<HashMap<String, Arc<SessionSlot>>>,
    policies: PolicyRegistry,
    stats: ServerStats,
    stop: AtomicBool,
    /// Live connection sockets, keyed by a monotone id, so shutdown can
    /// unblock workers parked in blocking reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    /// Durability settings (for sessions created after boot).
    durable: Option<DurabilityConfig>,
    /// Sessions present on disk but unrecoverable: every request against
    /// them answers a structured `degraded` error while the rest of the
    /// daemon serves normally.
    dead: Mutex<HashMap<String, String>>,
    /// Sessions recovered at boot.
    recoveries: u64,
    /// Pre-registered metric handles + the per-daemon registry.
    metrics: Metrics,
    /// Boot instant (for `uptime_ms`).
    started: Instant,
    /// Slow-request threshold in ms (0 = off).
    slow_ms: u64,
    /// JSONL event sink (`None` = no event log configured).
    events: Option<Arc<EventLog>>,
}

/// A running daemon; dropping the handle leaves it running (detached) —
/// call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    recovery_report: Option<String>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The boot-time recovery report (`None` on a non-durable daemon).
    pub fn recovery_report(&self) -> Option<&str> {
        self.recovery_report.as_deref()
    }

    /// Stops accepting, drains workers, and joins all threads. In-flight
    /// connections are served to completion of their current request
    /// stream.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Unblock workers parked in blocking reads on live connections.
        for (_, stream) in self.shared.conns.lock_recover().iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Starts the daemon and returns its handle.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let addr = if config.addr.is_empty() { "127.0.0.1:0" } else { &config.addr };
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let threads = if config.threads == 0 { 4 } else { config.threads };

    // The span-timing switch is process-wide: one daemon per process is
    // the deployment shape, and library hot paths (simulator, inference)
    // cannot see a per-server registry.
    vmr_telemetry::set_enabled(config.telemetry);
    let metrics = Metrics::new();
    let events = match config.events {
        Some(sink) => Some(sink),
        None if config.slow_ms > 0 => Some(Arc::new(EventLog::to_stderr())),
        None => None,
    };

    // Durable boot: recover every session found under the data dir
    // before accepting a single connection.
    let mut sessions = HashMap::new();
    let mut dead = HashMap::new();
    let mut recoveries = 0u64;
    let mut recovery_report = None;
    if let Some(cfg) = &config.durability {
        let recovered = recovery::recover_dir(cfg)?;
        recovery_report = Some(recovered.report());
        recoveries = recovered.live.len() as u64;
        for d in recovered.dead {
            if let Some(events) = &events {
                events.emit(
                    Level::Error,
                    "session_unrecoverable",
                    &[("session", json!(d.name.clone())), ("reason", json!(d.reason.clone()))],
                );
            }
            dead.insert(d.name, d.reason);
        }
        for s in recovered.live {
            let mut log = s.log;
            log.set_metrics(metrics.wal.clone());
            if let Some(events) = &events {
                events.emit(
                    Level::Info,
                    "session_recovered",
                    &[("session", json!(s.name.clone())), ("lsn", json!(s.lsn))],
                );
            }
            sessions.insert(
                s.name.clone(),
                Arc::new(SessionSlot {
                    session: Mutex::new(s.session),
                    version: AtomicU64::new(s.lsn),
                    cache: Mutex::new(PlanCacheState::Idle),
                    cache_cv: Condvar::new(),
                    log: Mutex::new(Some(log)),
                }),
            );
        }
    }
    if let Some(events) = &events {
        events.emit(
            Level::Info,
            "server_start",
            &[
                ("addr", json!(addr.to_string())),
                ("threads", json!(threads as u64)),
                ("recovered", json!(recoveries)),
                ("telemetry", json!(config.telemetry)),
            ],
        );
    }

    let shared = Arc::new(Shared {
        sessions: Mutex::new(sessions),
        policies: PolicyRegistry::standard(config.agent),
        stats: ServerStats::default(),
        stop: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        durable: config.durability,
        dead: Mutex::new(dead),
        recoveries,
        metrics,
        started: Instant::now(),
        slow_ms: config.slow_ms,
        events,
    });

    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(threads * 4);
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = Arc::clone(&rx);
        let requeue = tx.clone();
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock_recover();
                // A bounded wait (instead of a blocking recv) lets the
                // worker notice shutdown even though its own requeue
                // sender keeps the channel alive.
                guard.recv_timeout(READ_POLL)
            };
            match stream {
                Ok(stream) => {
                    shared.metrics.queue_depth.add(-1);
                    if shared.stop.load(Ordering::SeqCst) {
                        continue; // drain the queue without serving
                    }
                    let mut current = Some(stream);
                    while let Some(stream) = current.take() {
                        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            shared.conns.lock_recover().insert(conn_id, clone);
                        }
                        let outcome = handle_connection(&shared, stream);
                        shared.conns.lock_recover().remove(&conn_id);
                        if let Ok(Some(idle)) = outcome {
                            // Idle between frames: hand the connection
                            // back to the queue so this worker can serve
                            // others — a few silent peers must not pin
                            // the whole pool. If the queue is full, keep
                            // serving it here.
                            match requeue.try_send(idle) {
                                Ok(()) => shared.metrics.queue_depth.add(1),
                                Err(std::sync::mpsc::TrySendError::Full(s)) => current = Some(s),
                                Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {}
                            }
                        }
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }));
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Count the connection as queued before handing it
                    // over so a worker's decrement cannot race ahead.
                    shared.metrics.queue_depth.add(1);
                    if tx.send(stream).is_err() {
                        shared.metrics.queue_depth.add(-1);
                        break;
                    }
                }
            }
            // Dropping `tx` terminates the workers' recv loops.
        })
    };

    Ok(ServerHandle { addr, shared, acceptor: Some(acceptor), workers, recovery_report })
}

/// How often a worker parked on an idle connection wakes to check the
/// stop flag (and to stay preemptible by shutdown).
const READ_POLL: Duration = Duration::from_millis(500);

/// Serves one connection's request stream until EOF (`Ok(None)`) or an
/// idle pause between frames (`Ok(Some(stream))` — the caller requeues
/// the connection so silent peers cannot pin workers).
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<Option<TcpStream>> {
    // A read timeout keeps a silent peer from pinning this worker: on
    // each timeout the partial frame is preserved, the stop flag is
    // re-checked, and a connection idle *between* frames is yielded back
    // to the queue.
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let outcome = loop {
            match proto::read_frame(&mut reader, &mut buf) {
                Ok(outcome) => break outcome,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    if buf.is_empty() {
                        // Idle between frames: nothing buffered (a
                        // partial frame would have been drained into
                        // `buf`), so the raw stream can be handed off.
                        return Ok(Some(reader.into_inner()));
                    }
                    // Mid-frame: keep accumulating on this worker.
                }
                Err(e) => return Err(e),
            }
        };
        match outcome {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Oversized => {
                shared.stats.note_error(codes::OVERSIZED);
                let resp = proto::error_response(
                    0,
                    codes::OVERSIZED,
                    format!("line exceeds {} bytes; closing", proto::MAX_LINE_BYTES),
                );
                let _ = proto::write_frame(&mut writer, &resp);
                return Ok(None);
            }
            ReadOutcome::Line => {
                if buf.iter().all(|b| b.is_ascii_whitespace()) {
                    continue; // tolerate blank keep-alive lines
                }
                let total = Timer::start();
                let mut spans = ReqSpans::default();
                let decode = Timer::start();
                let parsed = serde_json::from_slice::<Request>(&buf);
                spans.decode_ns = decode.observe(&shared.metrics.frame_decode);
                let resp = match parsed {
                    Err(e) => {
                        shared.stats.note_error(codes::BAD_REQUEST);
                        spans.op = "unparseable";
                        spans.code = Some(codes::BAD_REQUEST);
                        proto::error_response(0, codes::BAD_REQUEST, format!("{e:?}"))
                    }
                    Ok(req) => dispatch(shared, req, &mut spans),
                };
                let write = Timer::start();
                proto::write_frame(&mut writer, &resp)?;
                spans.write_ns = write.observe(&shared.metrics.resp_write);
                let total_ns = total.observe(&shared.metrics.request_ns);
                maybe_slow(shared, &spans, total_ns);
            }
        }
    }
}

/// Routes one parsed request. Stamps a fresh trace id into the reply
/// and accumulates phase spans for the end-of-request slow check.
fn dispatch(shared: &Shared, req: Request, spans: &mut ReqSpans) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    spans.trace = vmr_telemetry::next_trace_id();
    spans.op = op_name(&req.op);
    spans.session = op_session(&req.op).to_string();
    if req.v != proto::PROTO_VERSION {
        shared.stats.note_error(codes::UNSUPPORTED_VERSION);
        spans.code = Some(codes::UNSUPPORTED_VERSION);
        let mut resp = proto::error_response(
            req.id,
            codes::UNSUPPORTED_VERSION,
            format!("this daemon speaks v{}", proto::PROTO_VERSION),
        );
        resp.trace = spans.trace;
        return resp;
    }
    let id = req.id;
    let result = match req.op {
        Op::CreateSession(p) => op_create(shared, p),
        Op::ApplyDelta(p) => op_delta(shared, p, spans),
        Op::Plan(p) => op_plan(shared, p, spans),
        Op::Stats(p) => op_stats(shared, p),
        Op::Snapshot(p) => op_snapshot(shared, p),
        Op::Restore(p) => op_restore(shared, p),
        Op::Metrics(p) => op_metrics(shared, p),
    };
    let mut resp = match result {
        Ok(reply) => proto::ok_response(id, reply),
        Err((code, message)) => {
            shared.stats.note_error(code);
            spans.code = Some(code);
            proto::error_response(id, code, message)
        }
    };
    resp.trace = spans.trace;
    resp
}

/// The wire-level op name (for slow-request records).
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::CreateSession(_) => "create_session",
        Op::ApplyDelta(_) => "apply_delta",
        Op::Plan(_) => "plan",
        Op::Stats(_) => "stats",
        Op::Snapshot(_) => "snapshot",
        Op::Restore(_) => "restore",
        Op::Metrics(_) => "metrics",
    }
}

/// The session a request targets ("" for server-wide ops).
fn op_session(op: &Op) -> &str {
    match op {
        Op::CreateSession(p) => &p.name,
        Op::ApplyDelta(p) => &p.session,
        Op::Plan(p) => &p.session,
        Op::Stats(p) => &p.session,
        Op::Snapshot(p) => &p.session,
        Op::Restore(p) => &p.session,
        Op::Metrics(_) => "",
    }
}

/// Emits the leveled JSONL slow-request record when a dispatched request
/// crosses the configured threshold (level `error` at ≥ 10×), and bumps
/// the `serve_slow_requests` counter. Phase spans are reported in
/// microseconds — the resolution humans read tail latencies at.
fn maybe_slow(shared: &Shared, spans: &ReqSpans, total_ns: u64) {
    if shared.slow_ms == 0 {
        return;
    }
    let threshold_ns = shared.slow_ms.saturating_mul(1_000_000);
    if total_ns < threshold_ns {
        return;
    }
    shared.metrics.slow_requests.inc();
    let Some(events) = &shared.events else { return };
    let level =
        if total_ns >= threshold_ns.saturating_mul(10) { Level::Error } else { Level::Warn };
    let us = |ns: u64| ns / 1_000;
    let mut fields = vec![
        ("trace", json!(spans.trace)),
        ("op", json!(spans.op)),
        ("session", json!(spans.session.clone())),
        ("total_us", json!(us(total_ns))),
        ("decode_us", json!(us(spans.decode_ns))),
        ("lock_wait_us", json!(us(spans.lock_wait_ns))),
        ("compute_us", json!(us(spans.compute_ns))),
        ("wal_us", json!(us(spans.wal_ns))),
        ("write_us", json!(us(spans.write_ns))),
    ];
    if spans.coalesced {
        fields.push(("coalesced", json!(true)));
        fields.push(("coalesce_wait_us", json!(us(spans.coalesce_wait_ns))));
        fields.push(("leader_trace", json!(spans.leader_trace)));
    }
    if let Some(code) = spans.code {
        fields.push(("code", json!(code)));
    }
    events.emit(level, "slow_request", &fields);
}

type OpResult = Result<Reply, (&'static str, String)>;

fn sim_err(e: SimError) -> (&'static str, String) {
    (codes::SIM, e.to_string())
}

fn slot_of(shared: &Shared, name: &str) -> Result<Arc<SessionSlot>, (&'static str, String)> {
    if let Some(slot) = shared.sessions.lock_recover().get(name).cloned() {
        return Ok(slot);
    }
    // A session that exists on disk but failed recovery answers with a
    // structured degradation, not "unknown".
    if let Some(reason) = shared.dead.lock_recover().get(name) {
        return Err((codes::DEGRADED, format!("session {name:?} is unrecoverable: {reason}")));
    }
    Err((codes::UNKNOWN_SESSION, format!("no session named {name:?}")))
}

/// Refuses mutations against a read-only (degraded) session up front.
fn check_writable(slot: &SessionSlot) -> Result<(), (&'static str, String)> {
    let log = slot.log.lock_recover();
    if let Some(reason) = log.as_ref().and_then(|l| l.read_only()) {
        return Err((codes::READ_ONLY, format!("session is read-only: {reason}")));
    }
    Ok(())
}

/// Makes one acknowledged mutation durable: append + group-commit fsync,
/// then compaction when due. Called with the session lock held (lock
/// order: session before log). The mutation is already applied in
/// memory; on a write failure the session degrades to read-only and the
/// client gets a `degraded` error instead of an ack — so the set of
/// *acknowledged* mutations always matches the durable log.
fn durable_append(
    slot: &SessionSlot,
    session: &mut Session,
    name: &str,
    version: u64,
    body: WalBody,
) -> Result<(), (&'static str, String)> {
    let mut guard = slot.log.lock_recover();
    let Some(log) = guard.as_mut() else { return Ok(()) };
    if let Err(e) = log.append(&body) {
        // The mutation was applied in memory before the append. It is
        // being refused, so the read-only session must serve exactly the
        // acknowledged history: re-align from the durable files (reads
        // usually still work on a disk whose writes fail).
        let reason = match recovery::replay_durable(name, log.dir()) {
            Ok((rebuilt, lsn)) => {
                *session = rebuilt;
                slot.version.store(lsn, Ordering::SeqCst);
                format!("wal append failed: {e}")
            }
            // Unreadable too: keep serving, flag the divergence.
            Err(r) => {
                format!("wal append failed: {e}; state may include the refused mutation ({r})")
            }
        };
        log.mark_read_only(reason);
        return Err((
            codes::DEGRADED,
            format!(
                "durable log append failed ({e}); the mutation was rolled back and the session \
                 is now read-only"
            ),
        ));
    }
    if log.compaction_due() {
        // Compaction failure is safe to skip: the old snapshot + log
        // remain a complete recovery source.
        let snapshot = session.snapshot(version);
        let _ = log.maybe_compact(&snapshot);
    }
    Ok(())
}

fn op_create(shared: &Shared, p: CreateSession) -> OpResult {
    if p.name.is_empty() {
        return Err((codes::BAD_REQUEST, "session name must be non-empty".into()));
    }
    if shared.durable.is_some() && wal::session_dir_name(&p.name).is_none() {
        return Err((
            codes::BAD_REQUEST,
            format!(
                "session name {:?} is not filesystem-safe (durable daemons allow up to 128 \
                 ASCII alphanumerics, '-', '_', '.'; no leading dot)",
                p.name
            ),
        ));
    }
    let config = preset_config(&p.preset)
        .ok_or_else(|| (codes::UNKNOWN_PRESET, format!("no preset named {:?}", p.preset)))?;
    let mnl = if p.mnl == 0 { 10 } else { p.mnl };
    let mut session = Session::from_preset(&p.name, &config, p.seed, mnl).map_err(sim_err)?;
    let info = session.info(0);
    // The existence check is done under the map lock *before* any disk
    // write so two racing creates cannot both install artifacts.
    let mut sessions = shared.sessions.lock_recover();
    if sessions.contains_key(&p.name) || shared.dead.lock_recover().contains_key(&p.name) {
        return Err((codes::SESSION_EXISTS, format!("session {:?} already exists", p.name)));
    }
    let log = match &shared.durable {
        None => None,
        Some(cfg) => {
            let dir = cfg.sessions_dir().join(&p.name);
            let snapshot = session.snapshot(0);
            match SessionLog::install(dir, cfg, &snapshot, 0) {
                Ok(mut log) => {
                    log.set_metrics(shared.metrics.wal.clone());
                    Some(log)
                }
                Err(e) => {
                    return Err((
                        codes::DEGRADED,
                        format!("cannot create durable session artifacts: {e}"),
                    ))
                }
            }
        }
    };
    let slot = Arc::new(SessionSlot {
        session: Mutex::new(session),
        version: AtomicU64::new(0),
        cache: Mutex::new(PlanCacheState::Idle),
        cache_cv: Condvar::new(),
        log: Mutex::new(log),
    });
    sessions.insert(p.name, slot);
    Ok(Reply::Created(info))
}

fn op_delta(shared: &Shared, p: ApplyDelta, spans: &mut ReqSpans) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    check_writable(&slot)?;
    let lock = Timer::start();
    let mut session = slot.session.lock_recover();
    spans.lock_wait_ns = lock.observe(&shared.metrics.lock_wait);
    let outcome = session.apply_delta(&p.delta).map_err(sim_err)?;
    let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
    let wal = Timer::start();
    durable_append(&slot, &mut session, &p.session, version, WalBody::Delta(p.delta))?;
    spans.wal_ns = wal.elapsed_ns().unwrap_or(0);
    shared.stats.deltas.fetch_add(1, Ordering::Relaxed);
    Ok(Reply::DeltaApplied(proto::DeltaApplied {
        info: session.info(version),
        created_vm: outcome.created.map(|v| v.0),
        renumbered_from: outcome.renumbered.map(|r| r.from.0),
        renumbered_to: outcome.renumbered.map(|r| r.to.0),
        migrations: outcome.migrations.len(),
    }))
}

fn op_plan(shared: &Shared, p: PlanParams, spans: &mut ReqSpans) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    let budget = if p.budget_ms == 0 { DEFAULT_BUDGET } else { Duration::from_millis(p.budget_ms) };
    let policy = shared
        .policies
        .resolve(&p.policy, budget)
        .ok_or_else(|| (codes::UNKNOWN_POLICY, format!("no policy named {:?}", p.policy)))?;
    let req = PlanRequest {
        mnl: p.mnl,
        seed: p.seed,
        budget,
        shards: p.shards,
        workers: p.workers,
        precision: p.precision,
    };

    // Committing plans mutate state: no coalescing, straight through.
    if p.commit {
        check_writable(&slot)?;
        let lock = Timer::start();
        let mut session = slot.session.lock_recover();
        spans.lock_wait_ns = lock.observe(&shared.metrics.lock_wait);
        let compute = Timer::start();
        let result = session.plan(policy.as_ref(), &req, true).map_err(sim_err)?;
        spans.compute_ns = compute.observe(&shared.metrics.plan_compute);
        let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
        let wal = Timer::start();
        durable_append(
            &slot,
            &mut session,
            &p.session,
            version,
            WalBody::Commit(result.plan.clone()),
        )?;
        spans.wal_ns = wal.elapsed_ns().unwrap_or(0);
        shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
        shared.stats.plans_computed.fetch_add(1, Ordering::Relaxed);
        return Ok(planned_reply(&p, policy.name(), result, true, version));
    }

    // The version is only ever bumped while the session lock is held, so
    // the read here is a *tentative* key: after claiming the cache slot
    // and taking the session lock we re-read it, and restart if a delta
    // slipped in between — otherwise a plan computed against the newer
    // state would be memoized and served under the stale version.
    loop {
        let version = slot.version.load(Ordering::SeqCst);
        let key = PlanKey {
            policy: p.policy.clone(),
            mnl: p.mnl,
            seed: p.seed,
            budget_ms: p.budget_ms,
            shards: p.shards,
            precision: p.precision,
            version,
        };

        // Coalesce: adopt a memoized result or claim the slot.
        let mut cache = slot.cache.lock_recover();
        let mut waited: Option<Timer> = None;
        loop {
            match &*cache {
                PlanCacheState::Ready(k, result, leader) if *k == key => {
                    let (result, leader) = (result.clone(), *leader);
                    drop(cache);
                    if let Some(w) = waited.take() {
                        spans.coalesce_wait_ns = w.observe(&shared.metrics.plan_wait);
                    }
                    // This reply shares the leader's computation: record
                    // its trace so a slow follower's record points at
                    // the span that actually did the work.
                    spans.coalesced = true;
                    spans.leader_trace = leader;
                    shared.metrics.coalesced.inc();
                    shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
                    return Ok(planned_reply(&p, policy.name(), result, false, version));
                }
                PlanCacheState::InFlight { trace } => {
                    // Someone is computing (this key or another): wait,
                    // then re-evaluate the cache. Note whose computation
                    // this request is parked behind — if it ends up slow,
                    // the record should name the blocking trace.
                    spans.leader_trace = *trace;
                    if waited.is_none() {
                        waited = Some(Timer::start());
                    }
                    cache = crate::sync::cv_wait(&slot.cache_cv, cache);
                }
                PlanCacheState::Idle | PlanCacheState::Ready(..) => {
                    *cache = PlanCacheState::InFlight { trace: spans.trace };
                    spans.leader_trace = 0; // became the leader after all
                    break;
                }
            }
        }
        drop(cache);
        if let Some(w) = waited.take() {
            // Waited out someone else's computation, then became the
            // leader for this key: the wait still counts.
            spans.coalesce_wait_ns = w.observe(&shared.metrics.plan_wait);
        }

        let lock = Timer::start();
        let mut session = slot.session.lock_recover();
        spans.lock_wait_ns = lock.observe(&shared.metrics.lock_wait);
        if slot.version.load(Ordering::SeqCst) != version {
            // A delta won the race between keying and locking: release
            // the claim and restart against the fresh version.
            drop(session);
            *slot.cache.lock_recover() = PlanCacheState::Idle;
            slot.cache_cv.notify_all();
            continue;
        }
        let compute = Timer::start();
        let computed = session.plan(policy.as_ref(), &req, false);
        drop(session);
        spans.compute_ns = compute.observe(&shared.metrics.plan_compute);

        let mut cache = slot.cache.lock_recover();
        let reply = match computed {
            Ok(result) => {
                *cache = PlanCacheState::Ready(key, result.clone(), spans.trace);
                shared.stats.plans_served.fetch_add(1, Ordering::Relaxed);
                shared.stats.plans_computed.fetch_add(1, Ordering::Relaxed);
                Ok(planned_reply(&p, policy.name(), result, true, version))
            }
            Err(e) => {
                *cache = PlanCacheState::Idle;
                Err(sim_err(e))
            }
        };
        drop(cache);
        slot.cache_cv.notify_all();
        return reply;
    }
}

fn planned_reply(
    p: &PlanParams,
    policy: &str,
    result: PlanResult,
    computed: bool,
    version: u64,
) -> Reply {
    Reply::Planned(Planned {
        session: p.session.clone(),
        policy: policy.to_string(),
        objective_before: result.objective_before,
        objective_after: result.objective_after,
        plan: result.plan,
        computed,
        version,
    })
}

fn op_stats(shared: &Shared, p: StatsParams) -> OpResult {
    let (session, durability) = if p.session.is_empty() {
        (None, None)
    } else {
        let slot = slot_of(shared, &p.session)?;
        let session = slot.session.lock_recover();
        let info = session.info(slot.version.load(Ordering::SeqCst));
        let durability = slot.log.lock_recover().as_ref().map(|l| l.stats());
        drop(session);
        (Some(info), durability)
    };
    let s = &shared.stats;
    // The per-session table behind `vmr top` must never block behind a
    // long-running plan: `try_lock` reports a held session as `busy`
    // with `info: None` instead of waiting.
    let sessions_detail = {
        let sessions = shared.sessions.lock_recover();
        let mut detail: Vec<SessionDetail> = sessions
            .iter()
            .map(|(name, slot)| {
                let version = slot.version.load(Ordering::SeqCst);
                let (busy, info) = match slot.session.try_lock() {
                    Ok(session) => (false, Some(session.info(version))),
                    Err(_) => (true, None),
                };
                let (read_only, durability) = match slot.log.lock_recover().as_ref() {
                    Some(l) => (l.read_only().is_some(), Some(l.stats())),
                    None => (false, None),
                };
                SessionDetail { session: name.clone(), version, busy, info, read_only, durability }
            })
            .collect();
        detail.sort_by(|a, b| a.session.cmp(&b.session));
        detail
    };
    let read_only_sessions = sessions_detail.iter().filter(|d| d.read_only).count();
    Ok(Reply::Stats(StatsReply {
        sessions: sessions_detail.len(),
        requests: s.requests.load(Ordering::Relaxed),
        plans_served: s.plans_served.load(Ordering::Relaxed),
        plans_computed: s.plans_computed.load(Ordering::Relaxed),
        deltas: s.deltas.load(Ordering::Relaxed),
        errors: s.errors.load(Ordering::Relaxed),
        errors_by_code: s.breakdown(),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        queue_depth: shared.metrics.queue_depth.get().max(0) as u64,
        recoveries: shared.recoveries,
        degraded_sessions: shared.dead.lock_recover().len() + read_only_sessions,
        sessions_detail,
        session,
        durability,
    }))
}

/// The `metrics` op: the daemon registry merged with the process-wide
/// library registry, plus the [`ServerStats`] counters synthesized in so
/// one export carries the full picture. `prometheus: true` additionally
/// renders the text exposition.
fn op_metrics(shared: &Shared, p: MetricsParams) -> OpResult {
    let mut snapshot = shared.metrics.registry.snapshot();
    snapshot.merge(vmr_telemetry::global().snapshot());
    let s = &shared.stats;
    let mut extra = vmr_telemetry::MetricsSnapshot::default();
    extra.push_counter("serve_requests", s.requests.load(Ordering::Relaxed));
    extra.push_counter("serve_plans_served", s.plans_served.load(Ordering::Relaxed));
    extra.push_counter("serve_plans_computed", s.plans_computed.load(Ordering::Relaxed));
    extra.push_counter("serve_deltas", s.deltas.load(Ordering::Relaxed));
    extra.push_counter("serve_errors", s.errors.load(Ordering::Relaxed));
    extra.push_counter("serve_recoveries", shared.recoveries);
    extra.push_gauge("serve_sessions", shared.sessions.lock_recover().len() as i64);
    extra.push_gauge("serve_uptime_ms", shared.started.elapsed().as_millis() as i64);
    snapshot.merge(extra);
    let prometheus = p.prometheus.then(|| snapshot.to_prometheus());
    Ok(Reply::Metrics(MetricsReply { snapshot, prometheus }))
}

fn op_snapshot(shared: &Shared, p: SessionRef) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    let mut session = slot.session.lock_recover();
    let snapshot = session.snapshot(slot.version.load(Ordering::SeqCst));
    Ok(Reply::Snapshot(SnapshotReply { snapshot }))
}

fn op_restore(shared: &Shared, p: Restore) -> OpResult {
    let slot = slot_of(shared, &p.session)?;
    check_writable(&slot)?;
    let mut session = slot.session.lock_recover();
    // The snapshot is untrusted input: it goes through the same
    // validation as the live delta path, and a rejection is the client's
    // fault (`bad_request`), not a simulator failure.
    session
        .restore(p.snapshot)
        .map_err(|e| (codes::BAD_REQUEST, format!("snapshot rejected: {e}")))?;
    let version = slot.version.fetch_add(1, Ordering::SeqCst) + 1;
    // Durable daemons re-anchor: the installed snapshot becomes the new
    // history (snapshot file at the bumped LSN + fresh empty log).
    {
        let mut guard = slot.log.lock_recover();
        if let Some(log) = guard.as_mut() {
            let snapshot = session.snapshot(version);
            if let Err(e) = log.reanchor(&snapshot, version) {
                log.mark_read_only(format!("restore re-anchor failed: {e}"));
                return Err((
                    codes::DEGRADED,
                    format!("restored in memory but not durably ({e}); session is now read-only"),
                ));
            }
        }
    }
    Ok(Reply::Restored(session.info(version)))
}
