//! Checkpoint round-trip serving: train a tiny agent, save it, load it in
//! the daemon, and assert the plan served over the wire is identical to
//! the plan the in-process `Vmr2lAgent::decide` loop produces on the same
//! state with the same seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_core::agent::{DecideOpts, Vmr2lAgent};
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig, PrecisionConfig};
use vmr_core::infer::{load_checkpoint_agent, SharedAgent};
use vmr_core::model::Vmr2lModel;
use vmr_core::train::{TrainConfig, Trainer};
use vmr_nn::checkpoint::Checkpoint;
use vmr_serve::proto::PlanParams;
use vmr_serve::server::{serve, ServerConfig};
use vmr_serve::ServeClient;
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;
use vmr_sim::ConstraintSet;

const PRESET_SEED: u64 = 21;
const PLAN_SEED: u64 = 7;
const MNL: usize = 6;

/// Trains a few PPO steps on the tiny cluster and saves a checkpoint.
fn train_tiny_checkpoint(path: &std::path::Path) {
    let mut rng = StdRng::seed_from_u64(5);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    let agent = Vmr2lAgent::new(model, ActionMode::TwoStage);
    let mut cfg = TrainConfig { updates: 1, mnl: 4, seed: 5, eval_every: 0, ..Default::default() };
    cfg.ppo.rollout_steps = 16;
    cfg.ppo.minibatch_size = 8;
    cfg.ppo.epochs = 1;
    let train: Vec<_> =
        (0..2).map(|i| generate_mapping(&ClusterConfig::tiny(), i).unwrap()).collect();
    let eval = train.clone();
    let mut trainer = Trainer::new(agent, train, eval, cfg).unwrap();
    trainer.train(|_| {}).unwrap();
    let agent = trainer.into_agent();
    Checkpoint::capture(&agent.policy).save(path).unwrap();
}

#[test]
fn served_plan_matches_in_process_decide() {
    let dir = std::env::temp_dir().join("vmr_serve_agent_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("agent.json");
    train_tiny_checkpoint(&ckpt_path);

    // Daemon side: load the checkpoint and serve a plan.
    let agent = SharedAgent::load(&ckpt_path).expect("checkpoint loads");
    let handle =
        serve(ServerConfig { threads: 2, agent: Some(agent), ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    client.create_session("rt", "tiny", PRESET_SEED, MNL).unwrap();
    let served = client
        .plan(PlanParams {
            session: "rt".into(),
            policy: "agent".into(),
            mnl: MNL,
            seed: PLAN_SEED,
            budget_ms: 0,
            shards: 0,
            workers: 0,
            precision: PrecisionConfig::Exact64,
            commit: false,
        })
        .unwrap();
    handle.shutdown();

    // In-process side: identical state, checkpoint, and seed.
    let agent = load_checkpoint_agent(&ckpt_path).expect("checkpoint loads");
    let state = generate_mapping(&ClusterConfig::tiny(), PRESET_SEED).unwrap();
    let constraints = ConstraintSet::new(state.num_vms());
    let mut env = ReschedEnv::new(state, constraints, Objective::default(), MNL).unwrap();
    let mut rng = StdRng::seed_from_u64(PLAN_SEED);
    let opts = DecideOpts::default();
    let mut local = Vec::new();
    while !env.is_done() {
        let Some(decision) = agent.decide(&mut env, &mut rng, &opts).unwrap() else { break };
        env.step(decision.action).unwrap();
        local.push(decision.action);
    }

    assert_eq!(served.plan.len(), local.len(), "plan lengths must match");
    for (wire, action) in served.plan.iter().zip(local.iter()) {
        assert_eq!(wire.vm, action.vm.0);
        assert_eq!(wire.to_pm, action.pm.0);
    }
    assert!(
        (served.objective_after - env.objective_value()).abs() < 1e-12,
        "served objective {} vs in-process {}",
        served.objective_after,
        env.objective_value()
    );
}
