//! Fault-injection harness: a daemon on a misbehaving disk. Every
//! injected fault — disk full, failing fsync, torn write, corrupt
//! record, missing snapshot — must degrade to a structured wire error
//! (`degraded` / `read_only`) on the afflicted session while the daemon
//! keeps serving everything else. No fault may panic a worker.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering;

use vmr_serve::client::{ClientError, ServeClient};
use vmr_serve::proto::{codes, PlanParams};
use vmr_serve::server::{serve, ServerConfig};
use vmr_serve::wal::{DurabilityConfig, FaultControl, SessionLog};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::NumaPolicy;

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vmr_faults_{}_{}_{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn durable_config(dir: &PathBuf, ctl: &std::sync::Arc<FaultControl>) -> DurabilityConfig {
    let mut cfg = DurabilityConfig::new(dir);
    cfg.io = ctl.factory();
    cfg
}

fn small_vm() -> ClusterDelta {
    ClusterDelta::VmCreate { cpu: 1, mem: 2, numa: NumaPolicy::Single }
}

fn plan_params(session: &str) -> PlanParams {
    PlanParams {
        session: session.into(),
        policy: "ha".into(),
        mnl: 2,
        seed: 0,
        budget_ms: 50,
        shards: 0,
        workers: 0,
        precision: vmr_core::config::PrecisionConfig::Exact64,
        commit: false,
    }
}

fn expect_code(result: Result<impl std::fmt::Debug, ClientError>, code: &str, what: &str) {
    match result {
        Err(ClientError::Server(e)) => assert_eq!(e.code, code, "{what}: {}", e.message),
        other => panic!("{what}: expected {code} error, got {other:?}"),
    }
}

/// Disk full (failed append) and failed fsync: the afflicted session is
/// never half-applied — the mutation that could not be made durable is
/// refused with `degraded`, the session turns read-only, and every other
/// session keeps writing.
#[test]
fn disk_full_degrades_one_session_and_spares_the_rest() {
    let dir = scratch("full");
    let ctl = FaultControl::new();
    let handle = serve(ServerConfig {
        threads: 2,
        durability: Some(durable_config(&dir, &ctl)),
        ..Default::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    let a = client.create_session("a", "tiny", 1, 4).unwrap();
    client.create_session("b", "tiny", 2, 4).unwrap();

    // The next WAL append anywhere fails like a full disk; session "a"
    // takes the hit.
    ctl.fail_appends.store(1, Ordering::SeqCst);
    expect_code(client.apply_delta("a", small_vm()), codes::DEGRADED, "unsynced mutation");

    // From now on "a" refuses mutations up front…
    expect_code(client.apply_delta("a", small_vm()), codes::READ_ONLY, "second mutation");
    expect_code(
        client.plan(PlanParams { commit: true, ..plan_params("a") }),
        codes::READ_ONLY,
        "committing plan",
    );

    // …but keeps serving reads and non-committing plans,
    let stats = client.stats("a").unwrap();
    assert_eq!(stats.session.as_ref().unwrap().vms, a.vms, "refused delta must not land");
    let dur = stats.durability.expect("durable session reports gauges");
    assert!(dur.read_only, "gauges must show the degradation");
    assert!(!dur.reason.is_empty());
    assert!(stats.degraded_sessions >= 1);
    client.plan(plan_params("a")).expect("read-only session still plans");

    // …and session "b" never noticed.
    client.apply_delta("b", small_vm()).expect("healthy session keeps writing");
    assert!(!client.stats("b").unwrap().durability.unwrap().read_only);

    // An fsync failure is the same story for "b".
    ctl.fail_syncs.store(1, Ordering::SeqCst);
    expect_code(client.apply_delta("b", small_vm()), codes::DEGRADED, "failed fsync");
    assert!(client.stats("b").unwrap().durability.unwrap().read_only);

    handle.shutdown();
}

/// A torn write (the disk persists half a record but reports success)
/// followed by a crash: recovery drops the torn tail whole and the
/// session resumes read-write from the last intact record.
#[test]
fn torn_write_recovers_to_the_last_intact_record() {
    let dir = scratch("torn");
    let ctl = FaultControl::new();

    let (vms_before, version_before) = {
        let handle = serve(ServerConfig {
            threads: 2,
            durability: Some(durable_config(&dir, &ctl)),
            ..Default::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.create_session("t", "tiny", 1, 4).unwrap();
        let good = client.apply_delta("t", small_vm()).unwrap();

        // The disk lies on the next append: half the record lands.
        ctl.short_appends.store(1, Ordering::SeqCst);
        let lied = client.apply_delta("t", small_vm()).unwrap();
        assert_eq!(lied.info.version, good.info.version + 1, "the daemon cannot see the lie");
        handle.shutdown();
        (good.info.vms, good.info.version)
    };

    // Reboot on the same directory: the torn record is detected by CRC
    // and dropped whole — never half-applied.
    let handle = serve(ServerConfig {
        threads: 2,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    })
    .unwrap();
    let report = handle.recovery_report().expect("durable boot reports").to_string();
    assert!(report.contains("torn"), "report must mention the torn tail: {report}");
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    let stats = client.stats("t").unwrap();
    let session = stats.session.unwrap();
    assert_eq!(session.vms, vms_before, "torn delta must be gone in full");
    assert_eq!(session.version, version_before);
    let dur = stats.durability.unwrap();
    assert!(!dur.read_only, "a torn tail is honest crash damage, not corruption");
    assert_eq!(dur.appended_lsn, version_before);

    // The session is read-write again.
    client.apply_delta("t", small_vm()).expect("session resumes read-write");
    handle.shutdown();
}

/// A corrupt record with intact data behind it is NOT a crash artifact —
/// recovery serves the good prefix read-only and leaves the evidence on
/// disk untouched.
#[test]
fn mid_log_corruption_serves_the_good_prefix_read_only() {
    let dir = scratch("corrupt");
    {
        let handle = serve(ServerConfig {
            threads: 2,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.create_session("c", "tiny", 1, 4).unwrap();
        for _ in 0..3 {
            client.apply_delta("c", small_vm()).unwrap();
        }
        handle.shutdown();
    }

    // Flip one payload byte inside the FIRST record — records 2 and 3
    // sit behind it, so this cannot be mistaken for a torn tail.
    let (_, wal_path) = SessionLog::files_of(&dir.join("sessions").join("c"));
    let mut wal = fs::read(&wal_path).unwrap();
    let rec0_len = u32::from_le_bytes(wal[0..4].try_into().unwrap()) as usize;
    wal[8 + rec0_len / 2] ^= 0xFF;
    fs::write(&wal_path, &wal).unwrap();

    let handle = serve(ServerConfig {
        threads: 2,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    })
    .unwrap();
    let report = handle.recovery_report().unwrap().to_string();
    assert!(report.contains("READ-ONLY"), "report must flag the degradation: {report}");
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    let stats = client.stats("c").unwrap();
    assert_eq!(stats.session.unwrap().version, 0, "only the pre-corruption prefix is served");
    let dur = stats.durability.unwrap();
    assert!(dur.read_only);
    expect_code(client.apply_delta("c", small_vm()), codes::READ_ONLY, "mutating corrupt session");
    client.plan(plan_params("c")).expect("good prefix still plans");

    // The evidence is preserved for `vmr recover` forensics.
    assert_eq!(fs::read(&wal_path).unwrap(), wal, "corrupt log must not be rewritten");
    handle.shutdown();
}

/// A session whose snapshot is gone is unrecoverable: it answers every
/// request with a structured `degraded` error, its name stays reserved,
/// and the daemon serves every other session normally.
#[test]
fn missing_snapshot_is_a_dead_session_not_a_dead_daemon() {
    let dir = scratch("missing");
    {
        let handle = serve(ServerConfig {
            threads: 2,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        })
        .unwrap();
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        client.create_session("gone", "tiny", 1, 4).unwrap();
        client.create_session("kept", "tiny", 2, 4).unwrap();
        client.apply_delta("kept", small_vm()).unwrap();
        handle.shutdown();
    }
    let (snap_path, _) = SessionLog::files_of(&dir.join("sessions").join("gone"));
    fs::remove_file(&snap_path).unwrap();

    let handle = serve(ServerConfig {
        threads: 2,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    expect_code(client.stats("gone"), codes::DEGRADED, "stats on a dead session");
    expect_code(client.apply_delta("gone", small_vm()), codes::DEGRADED, "delta on a dead session");
    expect_code(
        client.create_session("gone", "tiny", 1, 4),
        codes::SESSION_EXISTS,
        "a dead session's name stays reserved (its directory still exists)",
    );

    // The rest of the daemon is healthy: the sibling session recovered
    // with its history, and new sessions can be created.
    let stats = client.stats("kept").unwrap();
    assert_eq!(stats.session.unwrap().version, 1);
    assert!(stats.degraded_sessions >= 1);
    assert!(stats.recoveries >= 1);
    client.create_session("fresh", "tiny", 3, 4).unwrap();
    client.apply_delta("fresh", small_vm()).unwrap();
    handle.shutdown();
}
