//! Tier-1 durability gate: for ANY kill point in the write stream — a
//! crash at any byte offset of any append — recovery must rebuild a
//! session whose state and warm observation are **bit-identical** to a
//! never-crashed twin that applied exactly the mutations whose records
//! fully survive the cut. Torn tails are dropped whole (a record is
//! applied at recovery either fully or not at all), and a pure
//! truncation must never be misread as corruption.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use vmr_core::config::PrecisionConfig;
use vmr_serve::policies::{HaPolicy, PlanRequest};
use vmr_serve::recovery::{recover_session, wire_plan_actions, RecoveryNote};
use vmr_serve::session::{preset_config, Session};
use vmr_serve::wal::{DurabilityConfig, SessionLog, WalBody};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::{NumaPolicy, VmId};

/// Fresh scratch directory (no tempfile crate in this workspace).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vmr_prop_wal_{}_{}_{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn plan_req(mnl: usize) -> PlanRequest {
    PlanRequest {
        mnl,
        seed: 0,
        budget: Duration::from_millis(50),
        shards: 0,
        workers: 0,
        precision: PrecisionConfig::Exact64,
    }
}

/// Decodes one generated op into a delta (5 = commit an HA plan).
fn delta_of(kind: u8, a: u32, b: u32, num_vms: u32) -> Option<ClusterDelta> {
    Some(match kind {
        0 => ClusterDelta::VmCreate { cpu: 1 + a % 8, mem: 1 + b % 16, numa: NumaPolicy::Single },
        1 => ClusterDelta::VmCreate {
            cpu: 2 * (1 + a % 4),
            mem: 2 * (1 + b % 8),
            numa: NumaPolicy::Double,
        },
        2 => ClusterDelta::VmDelete { vm: VmId(a % num_vms.max(1)) },
        3 => {
            ClusterDelta::VmResize { vm: VmId(a % num_vms.max(1)), cpu: 1 + b % 8, mem: 1 + a % 16 }
        }
        4 => ClusterDelta::PmAdd { cpu_per_numa: 44, mem_per_numa: 128 },
        _ => return None,
    })
}

/// Runs a random op stream against a durable session rooted at `dir`.
/// Returns the acknowledged bodies in order and the byte length of each
/// record on disk (the boundaries an honest crash can cut between).
fn run_stream(
    session: &mut Session,
    dir: &Path,
    cfg: &DurabilityConfig,
    ops: &[(u8, u32, u32)],
) -> (Vec<WalBody>, Vec<usize>) {
    let snap0 = session.snapshot(0);
    let mut log = SessionLog::install(dir.to_path_buf(), cfg, &snap0, 0).expect("install");
    let mut bodies = Vec::new();
    let mut lens = Vec::new();
    let mut bytes_before = 0u64;
    for &(kind, a, b) in ops {
        let body = match delta_of(kind, a, b, session.env_mut().state().num_vms() as u32) {
            Some(delta) => {
                if session.apply_delta(&delta).is_err() {
                    continue; // refused, never acked, never logged
                }
                WalBody::Delta(delta)
            }
            None => {
                let Ok(result) = session.plan(&HaPolicy, &plan_req(2 + (a % 3) as usize), true)
                else {
                    continue;
                };
                WalBody::Commit(result.plan)
            }
        };
        log.append(&body).expect("healthy disk appends");
        let total = log.stats().log_bytes;
        lens.push((total - bytes_before) as usize);
        bytes_before = total;
        bodies.push(body);
    }
    (bodies, lens)
}

/// Simulates a crash at byte `cut` of the log: copies the snapshot and
/// the truncated log into a fresh directory and recovers there.
fn crash_and_recover(
    src: &Path,
    cut: usize,
    cfg: &DurabilityConfig,
) -> Result<vmr_serve::recovery::RecoveredSession, String> {
    let (snap_src, wal_src) = SessionLog::files_of(src);
    let dir = scratch("cut");
    let (snap_dst, wal_dst) = SessionLog::files_of(&dir);
    fs::copy(&snap_src, &snap_dst).expect("copy snapshot");
    let wal = fs::read(&wal_src).expect("read wal");
    fs::write(&wal_dst, &wal[..cut.min(wal.len())]).expect("write truncated wal");
    let out = recover_session("s", &dir, cfg);
    let _ = fs::remove_dir_all(&dir);
    out
}

/// The never-crashed twin: a fresh session that applies exactly the
/// first `k` acknowledged mutations.
fn twin_after(seed: u64, k: usize, bodies: &[WalBody]) -> Session {
    let mut twin =
        Session::from_preset("s", &preset_config("tiny").unwrap(), seed, 6).expect("twin");
    for body in &bodies[..k] {
        match body {
            WalBody::Delta(d) => {
                twin.apply_delta(d).expect("acked delta replays");
            }
            WalBody::Commit(plan) => {
                twin.commit_plan(&wire_plan_actions(plan)).expect("acked plan replays");
            }
        }
    }
    twin
}

/// Which record prefix survives a cut at byte `cut`, given record sizes.
fn surviving(lens: &[usize], cut: usize) -> usize {
    let mut end = 0usize;
    let mut k = 0usize;
    for &len in lens {
        end += len;
        if end > cut {
            break;
        }
        k += 1;
    }
    k
}

/// Exhaustive sweep: one fixed op stream, a crash at EVERY byte offset.
/// This is the strongest form of the claim and cheap enough to run whole
/// because the stream is small.
#[test]
fn every_kill_offset_recovers_the_exact_acked_prefix() {
    let seed = 7u64;
    let dir = scratch("sweep");
    let cfg = DurabilityConfig::new(&dir);
    let mut session =
        Session::from_preset("s", &preset_config("tiny").unwrap(), seed, 6).expect("session");
    let ops: Vec<(u8, u32, u32)> =
        vec![(0, 3, 5), (5, 0, 0), (2, 1, 0), (1, 2, 2), (4, 0, 0), (3, 0, 9), (5, 1, 0)];
    let (bodies, lens) = run_stream(&mut session, &dir, &cfg, &ops);
    assert!(bodies.len() >= 5, "stream must exercise several records");
    let wal_len: usize = lens.iter().sum();

    for cut in 0..=wal_len {
        let mut rec = crash_and_recover(&dir, cut, &cfg)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery must not die: {e}"));
        let k = surviving(&lens, cut);
        assert_eq!(rec.replayed, k, "cut {cut}: exactly the whole prefix replays");
        assert_eq!(rec.lsn, k as u64, "cut {cut}");
        assert!(
            !matches!(rec.note, RecoveryNote::CorruptReadOnly { .. }),
            "cut {cut}: truncation is a torn tail, never corruption: {:?}",
            rec.note
        );
        let mut twin = twin_after(seed, k, &bodies);
        assert_eq!(
            rec.session.env_mut().state(),
            twin.env_mut().state(),
            "cut {cut}: recovered state must be bit-identical"
        );
        assert_eq!(
            rec.session.env_mut().observe(),
            twin.env_mut().observe(),
            "cut {cut}: recovered observation must be bit-identical"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op streams × random kill offsets: the generalization of
    /// the sweep above to arbitrary acknowledged histories.
    #[test]
    fn random_streams_recover_bit_identically_at_random_kill_points(
        seed in 0u64..6,
        ops in prop::collection::vec((0u8..6, 0u32..60, 0u32..60), 1..18),
        cuts in prop::collection::vec(0usize..1_000_000, 1..4),
    ) {
        let dir = scratch("rand");
        let cfg = DurabilityConfig::new(&dir);
        let mut session =
            Session::from_preset("s", &preset_config("tiny").unwrap(), seed, 6).expect("session");
        let (bodies, lens) = run_stream(&mut session, &dir, &cfg, &ops);
        let wal_len: usize = lens.iter().sum();
        for cut in cuts {
            let cut = cut % (wal_len + 1);
            let mut rec = crash_and_recover(&dir, cut, &cfg)
                .unwrap_or_else(|e| panic!("cut {cut}: recovery must not die: {e}"));
            let k = surviving(&lens, cut);
            prop_assert_eq!(rec.replayed, k, "cut {}", cut);
            prop_assert!(
                !matches!(rec.note, RecoveryNote::CorruptReadOnly { .. }),
                "cut {}: {:?}", cut, rec.note
            );
            let mut twin = twin_after(seed, k, &bodies);
            prop_assert_eq!(rec.session.env_mut().state(), twin.env_mut().state(), "cut {}", cut);
            prop_assert!(
                rec.session.env_mut().observe() == twin.env_mut().observe(),
                "cut {}: observation mismatch", cut
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Compaction safety: with aggressive compaction the crash can land
    /// in any of the snapshot-rename / log-swap windows; recovery off the
    /// *live* directory (whatever files the crash left) must still equal
    /// the full never-crashed history.
    #[test]
    fn aggressive_compaction_leaves_a_recoverable_directory(
        seed in 0u64..6,
        ops in prop::collection::vec((0u8..6, 0u32..60, 0u32..60), 1..18),
        snapshot_every in 1usize..4,
    ) {
        let dir = scratch("compact");
        let mut cfg = DurabilityConfig::new(&dir);
        cfg.snapshot_every = snapshot_every;
        let mut session =
            Session::from_preset("s", &preset_config("tiny").unwrap(), seed, 6).expect("session");
        let snap0 = session.snapshot(0);
        let mut log = SessionLog::install(dir.clone(), &cfg, &snap0, 0).expect("install");
        let mut bodies = Vec::new();
        for &(kind, a, b) in &ops {
            let body = match delta_of(kind, a, b, session.env_mut().state().num_vms() as u32) {
                Some(delta) => {
                    if session.apply_delta(&delta).is_err() {
                        continue;
                    }
                    WalBody::Delta(delta)
                }
                None => {
                    let Ok(r) = session.plan(&HaPolicy, &plan_req(2), true) else { continue };
                    WalBody::Commit(r.plan)
                }
            };
            let lsn = log.append(&body).expect("append");
            bodies.push(body);
            if log.compaction_due() {
                let snap = session.snapshot(lsn);
                log.maybe_compact(&snap).expect("compaction on a healthy disk");
            }
        }
        drop(log);
        let mut rec = recover_session("s", &dir, &cfg).expect("recover");
        prop_assert!(matches!(rec.note, RecoveryNote::Clean), "{:?}", rec.note);
        prop_assert_eq!(rec.lsn, bodies.len() as u64);
        let mut twin = twin_after(seed, bodies.len(), &bodies);
        prop_assert_eq!(rec.session.env_mut().state(), twin.env_mut().state());
        prop_assert!(rec.session.env_mut().observe() == twin.env_mut().observe());
        let _ = fs::remove_dir_all(&dir);
    }
}
