//! Cross-session embed batching: concurrent agent plans from different
//! sessions must (a) share at least one batched GEMM round and (b)
//! produce exactly the plans a solo (unbatched) evaluation produces —
//! batching is a throughput optimization, never a behavior change.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::infer::SharedAgent;
use vmr_core::model::Vmr2lModel;
use vmr_core::Vmr2lAgent;
use vmr_serve::batch::EmbedBatcher;
use vmr_serve::policies::{AgentPolicy, PlanRequest};
use vmr_serve::session::{preset_config, Session};

fn shared_agent() -> SharedAgent {
    let mut rng = StdRng::seed_from_u64(11);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage))
}

fn session(name: &str, seed: u64) -> Session {
    Session::from_preset(name, &preset_config("tiny").unwrap(), seed, 6).unwrap()
}

fn req(seed: u64) -> PlanRequest {
    PlanRequest {
        mnl: 6,
        seed,
        budget: Duration::from_millis(200),
        shards: 0,
        workers: 0,
        precision: vmr_core::config::PrecisionConfig::Exact64,
    }
}

#[test]
fn concurrent_plans_batch_and_match_solo() {
    let handle = shared_agent();

    // Solo reference: each session planned alone through its own policy.
    let solo_policy = AgentPolicy::new(handle.clone());
    let solo_a = session("a", 1).plan(&solo_policy, &req(7), false).unwrap();
    let solo_b = session("b", 2).plan(&solo_policy, &req(9), false).unwrap();

    // Concurrent: one shared batcher with a generous window so the two
    // worker threads reliably rendezvous.
    let batcher = Arc::new(EmbedBatcher::new(Duration::from_millis(100)));
    let policy = Arc::new(AgentPolicy::with_batcher(handle, Arc::clone(&batcher)));
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let (out_a, out_b) = std::thread::scope(|s| {
        let pa = Arc::clone(&policy);
        let ba = Arc::clone(&barrier);
        let ha = s.spawn(move || {
            let mut sess = session("a", 1);
            ba.wait();
            sess.plan(pa.as_ref(), &req(7), false).unwrap()
        });
        let pb = Arc::clone(&policy);
        let bb = Arc::clone(&barrier);
        let hb = s.spawn(move || {
            let mut sess = session("b", 2);
            bb.wait();
            sess.plan(pb.as_ref(), &req(9), false).unwrap()
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });

    // (a) Identical results: batching must not change a single migration
    // or objective bit.
    assert_eq!(out_a.plan, solo_a.plan, "session a plan changed under batching");
    assert_eq!(out_b.plan, solo_b.plan, "session b plan changed under batching");
    assert_eq!(out_a.objective_after, solo_a.objective_after);
    assert_eq!(out_b.objective_after, solo_b.objective_after);

    // (b) The two plans really shared work: fewer rounds than items.
    let stats = batcher.stats();
    assert!(stats.items >= 2, "both plans must submit embeddings");
    assert!(
        stats.peak >= 2,
        "concurrent plans should share at least one batched round (stats: {stats:?})"
    );
    assert!(stats.batches < stats.items, "batching must coalesce rounds (stats: {stats:?})");
}

#[test]
fn single_plan_does_not_wait_for_peers() {
    // With one active plan the leader computes immediately; a generous
    // window must not slow the single-tenant case down.
    let handle = shared_agent();
    let batcher = Arc::new(EmbedBatcher::new(Duration::from_secs(5)));
    let policy = AgentPolicy::with_batcher(handle, Arc::clone(&batcher));
    let mut sess = session("solo", 3);
    let start = std::time::Instant::now();
    let out = sess.plan(&policy, &req(5), false).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "single plan must not block on the batch window"
    );
    assert!(out.objective_after <= out.objective_before + 1e-12);
    assert!(batcher.stats().batches >= 1);
}

#[test]
fn leader_panic_does_not_poison_the_batcher() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use vmr_nn::tensor::Tensor;
    use vmr_sim::obs::{PM_FEAT, VM_FEAT};

    let handle = shared_agent();
    let model = &handle.agent().policy;
    let batcher = EmbedBatcher::new(Duration::from_millis(1));
    // An oversized feature matrix panics the batch-assembly copy while
    // the leader computes (lock not held).
    let bad = Tensor::zeros(1, 40 * PM_FEAT.max(VM_FEAT));
    let result = catch_unwind(AssertUnwindSafe(|| batcher.embed(model, &bad, &bad)));
    assert!(result.is_err(), "malformed widths must panic in the kernel asserts");
    // The round was claimed before the panic; the batcher must keep
    // serving fresh rounds afterwards instead of deadlocking.
    let (pm, vm) = batcher.embed(model, &Tensor::zeros(2, PM_FEAT), &Tensor::zeros(4, VM_FEAT));
    assert_eq!(pm.rows(), 2);
    assert_eq!(vm.rows(), 4);
}
