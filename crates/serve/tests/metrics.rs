//! End-to-end observability suite: the `metrics` wire op must export
//! phase-split latency histograms, error breakdowns, and coalescing
//! counters; slow requests must emit trace-correlated JSONL records; and
//! a daemon with telemetry disabled must serve empty span histograms
//! while its request counters keep working.
//!
//! The telemetry enable flag is process-wide, so every test here
//! serializes on [`FLAG_LOCK`] — two daemons booting with different
//! `telemetry` settings in parallel would race each other's timers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use vmr_core::config::PrecisionConfig;
use vmr_serve::client::{ClientError, ServeClient};
use vmr_serve::proto::{
    CreateSession, Op, PlanParams, ReplyBody, Request, Response, PROTO_VERSION,
};
use vmr_serve::server::{serve, ServerConfig};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::NumaPolicy;
use vmr_telemetry::EventLog;

static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn plan_params(session: &str, policy: &str, seed: u64, budget_ms: u64) -> PlanParams {
    PlanParams {
        session: session.into(),
        policy: policy.into(),
        mnl: 4,
        seed,
        budget_ms,
        shards: 0,
        workers: 0,
        precision: PrecisionConfig::Exact64,
        commit: false,
    }
}

#[test]
fn metrics_op_exports_phases_errors_and_coalescing() {
    let _guard = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    client.create_session("m", "tiny", 3, 4).unwrap();
    client
        .apply_delta("m", ClusterDelta::VmCreate { cpu: 2, mem: 4, numa: NumaPolicy::Single })
        .unwrap();
    let first = client.plan(plan_params("m", "ha", 0, 50)).unwrap();
    assert!(first.computed, "first plan computes");
    let second = client.plan(plan_params("m", "ha", 0, 50)).unwrap();
    assert!(!second.computed, "identical follow-up is served from the coalescing cache");

    // Two deliberate failures to populate the per-code breakdown.
    match client
        .apply_delta("ghost", ClusterDelta::VmCreate { cpu: 2, mem: 4, numa: NumaPolicy::Single })
    {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "unknown_session"),
        other => panic!("expected unknown_session, got {other:?}"),
    }
    match client.plan(plan_params("m", "nonesuch", 0, 50)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "unknown_policy"),
        other => panic!("expected unknown_policy, got {other:?}"),
    }

    // Structured export: every request phase shows up with ordered
    // quantiles, and both sides of the coalescing split are counted.
    let m = client.metrics(false).unwrap();
    assert!(m.prometheus.is_none());
    let snap = &m.snapshot;
    for phase in ["serve_request", "serve_frame_decode", "serve_lock_wait", "serve_resp_write"] {
        let h = snap.histogram(phase).unwrap_or_else(|| panic!("{phase} must be exported"));
        assert!(h.count > 0, "{phase} must have samples");
        assert!(h.p50 <= h.p99 && h.p99 <= h.p999 && h.p999 <= h.max, "{phase} quantile order");
    }
    assert!(snap.histogram("serve_plan_compute").unwrap().count >= 1);
    assert!(snap.counter("serve_requests").unwrap() >= 6);
    assert_eq!(snap.counter("serve_plans_computed"), Some(1));
    assert_eq!(snap.counter("serve_plans_coalesced"), Some(1));
    assert_eq!(snap.counter("serve_plans_served"), Some(2));
    assert_eq!(snap.counter("serve_errors"), Some(2));
    assert_eq!(snap.gauge("serve_sessions"), Some(1));
    assert!(snap.gauge("serve_uptime_ms").is_some());

    // Prometheus text exposition of the same snapshot.
    let text = client.metrics(true).unwrap().prometheus.expect("prometheus text");
    assert!(text.contains("# TYPE vmr_serve_request_seconds summary"));
    assert!(text.contains("vmr_serve_request_seconds{quantile=\"0.999\"}"));
    assert!(text.contains("# TYPE vmr_serve_requests counter"));
    assert!(text.contains("# TYPE vmr_serve_queue_depth gauge"));

    // The stats op carries the satellite fields: per-code errors, uptime,
    // queue depth, and the per-session detail table.
    let stats = client.stats("").unwrap();
    assert_eq!(stats.errors, 2, "compatibility total is kept");
    assert_eq!(stats.errors_by_code.unknown_session, 1);
    assert_eq!(stats.errors_by_code.unknown_policy, 1);
    assert_eq!(stats.errors_by_code.bad_request, 0);
    assert_eq!(stats.queue_depth, 0, "no connection may be parked while we are served");
    let detail = &stats.sessions_detail;
    assert_eq!(detail.len(), 1);
    assert_eq!(detail[0].session, "m");
    assert!(!detail[0].busy && !detail[0].read_only);
    assert!(detail[0].info.is_some() && detail[0].durability.is_none());
    let uptime = stats.uptime_ms;
    let later = client.stats("").unwrap();
    assert!(later.uptime_ms >= uptime, "uptime is monotone");

    handle.shutdown();
}

#[test]
fn slow_requests_emit_trace_correlated_jsonl() {
    let _guard = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let events = Arc::new(EventLog::in_memory());
    let handle = serve(ServerConfig {
        threads: 2,
        slow_ms: 1,
        events: Some(Arc::clone(&events)),
        ..Default::default()
    })
    .unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    // Building a Medium-scale session (cluster generation + observation
    // engine construction) reliably crosses the 1 ms slow threshold.
    // Raw framing (not the client library) so the reply's trace id is
    // visible for correlation.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let req = Request {
        v: PROTO_VERSION,
        id: 7,
        op: Op::CreateSession(CreateSession {
            name: "s".into(),
            preset: "medium".into(),
            seed: 1,
            mnl: 4,
        }),
    };
    writer.write_all(format!("{}\n", serde_json::to_string(&req).unwrap()).as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(&line).unwrap();
    assert!(matches!(resp.body, ReplyBody::Ok(_)), "create must succeed");
    assert!(resp.trace > 0, "dispatched requests carry a trace id");

    // The slow record is emitted just after the response write, so give
    // the worker a beat to land it.
    let record = {
        let mut found = None;
        for _ in 0..100 {
            let slow: Vec<serde_json::Value> = events
                .lines()
                .iter()
                .map(|l| serde_json::from_str(l).expect("every event line is valid JSON"))
                .filter(|v: &serde_json::Value| {
                    v["event"] == "slow_request" && v["trace"].as_u64() == Some(resp.trace)
                })
                .collect();
            if let Some(r) = slow.into_iter().next() {
                found = Some(r);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        found.unwrap_or_else(|| {
            panic!("slow record for trace {} in {:?}", resp.trace, events.lines())
        })
    };
    assert_eq!(record["op"], "create_session");
    assert_eq!(record["session"], "s");
    assert!(record["total_us"].as_u64().unwrap() >= 1_000, "threshold is 1 ms");
    assert!(record["compute_us"].as_u64().is_some(), "phase spans ride along");
    let level = record["level"].as_str().unwrap();
    assert!(level == "warn" || level == "error", "slow records are leveled, got {level}");

    let m = client.metrics(false).unwrap();
    assert!(m.snapshot.counter("serve_slow_requests").unwrap() >= 1);
    handle.shutdown();
}

#[test]
fn disabled_telemetry_serves_counters_but_no_spans() {
    let _guard = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle =
        serve(ServerConfig { threads: 2, telemetry: false, ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    client.create_session("quiet", "tiny", 2, 4).unwrap();
    client.plan(plan_params("quiet", "ha", 0, 50)).unwrap();

    let snap = client.metrics(false).unwrap().snapshot;
    for phase in ["serve_request", "serve_frame_decode", "serve_plan_compute"] {
        assert_eq!(snap.histogram(phase).unwrap().count, 0, "{phase} must stay empty");
    }
    // Request accounting is independent of span timing.
    assert!(snap.counter("serve_requests").unwrap() >= 2);
    assert_eq!(snap.counter("serve_plans_computed"), Some(1));

    handle.shutdown();
    // Leave the process-wide flag the way every other daemon boot sets it.
    vmr_telemetry::set_enabled(true);
}
