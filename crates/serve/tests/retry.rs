//! Client retry discipline against a flaky peer: idempotent requests are
//! transparently retried over reconnects with bounded backoff, mutating
//! requests are never replayed, and `connect_with_retry` outlasts a
//! daemon that is still booting.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use vmr_serve::client::{ClientError, RetryPolicy, ServeClient};
use vmr_serve::proto::{Reply, ReplyBody, Request, Response, StatsReply, PROTO_VERSION};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::NumaPolicy;

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 6,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        seed: 1,
    }
}

fn empty_stats() -> StatsReply {
    StatsReply {
        sessions: 0,
        requests: 0,
        plans_served: 0,
        plans_computed: 0,
        deltas: 0,
        errors: 0,
        errors_by_code: Default::default(),
        uptime_ms: 0,
        queue_depth: 0,
        recoveries: 0,
        degraded_sessions: 0,
        sessions_detail: Vec::new(),
        session: None,
        durability: None,
    }
}

/// A hand-rolled peer that drops the first `drop_first` accepted
/// connections on the floor (accept, then immediately close — the
/// client sees EOF mid-exchange), then serves the wire protocol for
/// real. Counts connections and served requests.
struct FlakyServer {
    addr: SocketAddr,
    conns: Arc<AtomicUsize>,
    served: Arc<AtomicUsize>,
    handle: Option<JoinHandle<()>>,
}

impl FlakyServer {
    fn start(drop_first: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conns = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let (c, s) = (Arc::clone(&conns), Arc::clone(&served));
        let handle = thread::spawn(move || {
            loop {
                let Ok((stream, _)) = listener.accept() else { return };
                let n = c.fetch_add(1, Ordering::SeqCst);
                if n < drop_first {
                    drop(stream); // flake: vanish mid-handshake
                    continue;
                }
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while {
                    line.clear();
                    reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false)
                } {
                    let req: Request = serde_json::from_str(&line).unwrap();
                    s.fetch_add(1, Ordering::SeqCst);
                    let resp = Response {
                        v: PROTO_VERSION,
                        id: req.id,
                        trace: 0,
                        body: ReplyBody::Ok(Reply::Stats(empty_stats())),
                    };
                    let mut out = serde_json::to_string(&resp).unwrap();
                    out.push('\n');
                    if writer.write_all(out.as_bytes()).is_err() {
                        break;
                    }
                }
                return; // one good connection is enough for these tests
            }
        });
        FlakyServer { addr, conns, served, handle: Some(handle) }
    }

    fn stop(mut self) {
        let _ = TcpStream::connect(self.addr); // unblock accept if needed
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[test]
fn idempotent_requests_survive_dropped_connections() {
    let server = FlakyServer::start(2);
    let mut client = ServeClient::connect_with_retry(server.addr, fast_policy()).unwrap();
    // Connection #0 was accepted and dropped; the first request hits EOF,
    // reconnects (dropped again), reconnects once more, and succeeds.
    let stats = client.stats("").expect("stats must ride out two dropped connections");
    assert_eq!(stats.sessions, 0);
    assert!(server.conns.load(Ordering::SeqCst) >= 3, "retry must have reconnected");
    assert_eq!(server.served.load(Ordering::SeqCst), 1);
    drop(client); // EOF ends the serving loop so stop() can join
    server.stop();
}

#[test]
fn mutations_are_never_retried() {
    let server = FlakyServer::start(1);
    let mut client = ServeClient::connect_with_retry(server.addr, fast_policy()).unwrap();
    // The sole connection so far is the dropped one: the mutation fails
    // with a transport error and MUST surface it rather than replay.
    let delta = ClusterDelta::VmCreate { cpu: 1, mem: 2, numa: NumaPolicy::Single };
    match client.apply_delta("s", delta) {
        Err(ClientError::Protocol(_)) | Err(ClientError::Io(_)) => {}
        other => panic!("a mutation over a dead socket must error, got {other:?}"),
    }
    assert_eq!(
        server.conns.load(Ordering::SeqCst),
        1,
        "no reconnect may happen for a non-idempotent request"
    );
    assert_eq!(server.served.load(Ordering::SeqCst), 0, "the mutation must not be replayed");

    // The same client heals on the next idempotent request.
    client.stats("").expect("reads reconnect and recover the client");
    assert_eq!(server.served.load(Ordering::SeqCst), 1);
    drop(client); // EOF ends the serving loop so stop() can join
    server.stop();
}

#[test]
fn connect_with_retry_waits_out_a_booting_daemon() {
    // Reserve an address, release it, and only rebind after a delay —
    // the window where a recovering daemon has not bound yet.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    let booter = thread::spawn(move || {
        thread::sleep(Duration::from_millis(100));
        let listener = TcpListener::bind(addr).expect("rebind the reserved address");
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    });
    let policy = RetryPolicy {
        attempts: 50,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(20),
        seed: 7,
    };
    ServeClient::connect_with_retry(addr, policy).expect("connect must wait out the boot");
    booter.join().unwrap();

    // And a bounded policy against a dead address gives up with the error.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead = listener.local_addr().unwrap();
    drop(listener);
    let err = ServeClient::connect_with_retry(dead, fast_policy());
    assert!(err.is_err(), "a dead address must exhaust the retry budget");
}

#[test]
fn backoff_is_bounded_and_jittered() {
    let mut policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(80),
        seed: 42,
    };
    let mut saw_nonzero = false;
    for retry in 0..32 {
        let ceiling = Duration::from_millis(10)
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(Duration::from_millis(80));
        let b = policy.backoff(retry);
        assert!(b <= ceiling, "retry {retry}: backoff {b:?} above ceiling {ceiling:?}");
        saw_nonzero |= b > Duration::ZERO;
    }
    assert!(saw_nonzero, "full jitter must not collapse to zero");
}
