//! Renumbering-staleness audit: a `vm_delete` renumbers the tail VM into
//! the freed slot, so any client-side cache of VM ids goes stale. This
//! suite pins down the server-side guarantees that make that survivable:
//!
//! * every delete reports the renumbering (`renumbered_from`/`to`) so a
//!   client can repair its cache,
//! * a plan memoized before the delete is never served afterwards (the
//!   coalescing key includes the state version a delta bumps), and
//! * a snapshot → delete → restore round-trip interprets VM ids against
//!   the restored state — a plan after the restore is identical to one
//!   computed before the delete, never one targeting renumbered ids.

use vmr_core::config::PrecisionConfig;
use vmr_serve::client::ServeClient;
use vmr_serve::proto::PlanParams;
use vmr_serve::server::{serve, ServerConfig};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::VmId;

fn plan_params(mnl: usize) -> PlanParams {
    PlanParams {
        session: "r".into(),
        policy: "ha".into(),
        mnl,
        seed: 0,
        budget_ms: 100,
        shards: 0,
        workers: 0,
        precision: PrecisionConfig::Exact64,
        commit: false,
    }
}

#[test]
fn delete_then_plan_then_restore_never_serves_stale_vm_ids() {
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    let info = client.create_session("r", "tiny", 3, 4).unwrap();
    assert!(info.vms > 2, "need several VMs for the renumbering to occur");

    // Capture the pre-delete world and a plan against it.
    let snap0 = client.snapshot("r").unwrap().snapshot;
    let plan0 = client.plan(plan_params(4)).unwrap();
    assert!(plan0.computed);
    let v0 = plan0.version;
    // Identical request: served from the coalescing memo, same version.
    let cached = client.plan(plan_params(4)).unwrap();
    assert!(!cached.computed, "identical request at the same version hits the memo");
    assert_eq!(cached.plan, plan0.plan);

    // Delete VM 0: the tail VM is renumbered into slot 0 and the reply
    // says so — the client-side repair contract.
    let d = client.apply_delta("r", ClusterDelta::VmDelete { vm: VmId(0) }).unwrap();
    assert_eq!(d.info.vms, info.vms - 1);
    assert_eq!(d.renumbered_from, Some(info.vms as u32 - 1));
    assert_eq!(d.renumbered_to, Some(0));
    assert!(d.info.version > v0, "a delete must bump the state version");

    // Same plan request after the delete: the memoized pre-delete plan
    // (whose VM ids may now denote different machines) must NOT be
    // served — the version key forces a fresh computation.
    let plan1 = client.plan(plan_params(4)).unwrap();
    assert!(plan1.computed, "stale cached plan must not survive a renumbering delta");
    assert_eq!(plan1.version, d.info.version);
    // Every served action resolves against the *current* state: ids in
    // range, and `from_pm` is the VM's live host in a fresh snapshot.
    let snap1 = client.snapshot("r").unwrap().snapshot;
    for a in &plan1.plan {
        assert!((a.vm as usize) < snap1.state.num_vms(), "plan targets a live VM");
        assert_eq!(
            snap1.state.placement(VmId(a.vm)).pm.0,
            a.from_pm,
            "served source host must match the post-delete state"
        );
    }

    // Restore the pre-delete snapshot: ids revert to the old meaning and
    // the same request reproduces the original plan exactly — proof the
    // plan is interpreted against the restored state, not a renumbered
    // leftover.
    let restored = client.restore("r", snap0).unwrap();
    assert_eq!(restored.vms, info.vms);
    assert!(restored.version > plan1.version);
    let plan2 = client.plan(plan_params(4)).unwrap();
    assert!(plan2.computed, "restore bumps the version; the post-delete memo is dead");
    assert_eq!(plan2.plan, plan0.plan, "restored state must reproduce the pre-delete plan");
    assert_eq!(plan2.objective_after, plan0.objective_after);

    // And a committing plan against the restored state still replays
    // legally end to end (the full delete → plan → restore interleaving
    // leaves a session that can mutate onward).
    let committed = client.plan(PlanParams { commit: true, ..plan_params(4) }).unwrap();
    assert!(committed.computed);
    let stats = client.stats("r").unwrap();
    assert_eq!(stats.session.unwrap().vms, info.vms);
    handle.shutdown();
}
