//! Malformed-input hardening: truncated, garbage, binary, and oversized
//! frames must each yield a structured error response — and the daemon
//! (and, for non-oversized inputs, the very same connection) must keep
//! serving afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use vmr_core::config::PrecisionConfig;
use vmr_serve::proto::{codes, ReplyBody, Response, MAX_LINE_BYTES};
use vmr_serve::server::{serve, ServerConfig};

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("server must answer");
    assert!(!line.is_empty(), "server closed instead of answering");
    serde_json::from_str(&line).expect("every response is valid JSON")
}

fn expect_error(resp: &Response, code: &str) {
    match &resp.body {
        ReplyBody::Err(e) => assert_eq!(e.code, code, "unexpected error: {}", e.message),
        ReplyBody::Ok(_) => panic!("expected {code} error, got success"),
    }
}

#[test]
fn garbage_lines_get_structured_errors_and_the_connection_survives() {
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // 1. Plain garbage.
    writer.write_all(b"this is not json\n").unwrap();
    expect_error(&read_response(&mut reader), codes::BAD_REQUEST);

    // 2. Truncated JSON.
    writer.write_all(b"{\"v\":5,\"id\":\n").unwrap();
    expect_error(&read_response(&mut reader), codes::BAD_REQUEST);

    // 3. Valid JSON, wrong shape.
    writer.write_all(b"{\"hello\":\"world\"}\n").unwrap();
    expect_error(&read_response(&mut reader), codes::BAD_REQUEST);

    // 4. Binary junk (invalid UTF-8).
    writer.write_all(&[0x00, 0xff, 0xfe, 0x80, b'\n']).unwrap();
    expect_error(&read_response(&mut reader), codes::BAD_REQUEST);

    // 5. Wrong protocol version with a parseable envelope.
    writer.write_all(b"{\"v\":99,\"id\":5,\"op\":{\"Stats\":{\"session\":\"\"}}}\n").unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 5, "version errors still echo the request id");
    expect_error(&resp, codes::UNSUPPORTED_VERSION);

    // 6. The same connection still serves valid requests.
    writer
        .write_all(
            b"{\"v\":5,\"id\":6,\"op\":{\"CreateSession\":{\"name\":\"s\",\"preset\":\"tiny\",\"seed\":1,\"mnl\":4}}}\n",
        )
        .unwrap();
    let resp = read_response(&mut reader);
    assert_eq!(resp.id, 6);
    assert!(matches!(resp.body, ReplyBody::Ok(_)), "valid request after garbage must succeed");

    handle.shutdown();
}

#[test]
fn idle_connections_do_not_starve_the_worker_pool() {
    // More silent connections than workers: a worker pool that dedicates
    // one thread per connection would be fully pinned and the next
    // request would hang forever.
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let _idle: Vec<TcpStream> =
        (0..6).map(|_| TcpStream::connect(handle.addr()).unwrap()).collect();
    // Give the workers a moment to pick the idle connections up.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut client = vmr_serve::client::ServeClient::connect(handle.addr()).unwrap();
    client
        .stream_timeout(std::time::Duration::from_secs(10))
        .expect("client read timeout guards the assertion");
    let info = client.create_session("alive", "tiny", 0, 4).expect("idle peers must not starve");
    assert!(info.vms > 0);
    handle.shutdown();
}

#[test]
fn oversized_line_is_rejected_and_server_stays_up() {
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();

    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // MAX + 2 payload bytes: the server caps its read at MAX + 1 and
        // answers without ever buffering the rest.
        let mut big = vec![b'x'; MAX_LINE_BYTES + 2];
        big.push(b'\n');
        writer.write_all(&big).unwrap();
        let resp = read_response(&mut reader);
        expect_error(&resp, codes::OVERSIZED);
        // The connection is closed after an oversized frame.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "connection must close");
    }

    // The daemon itself keeps serving fresh connections.
    let mut client = vmr_serve::client::ServeClient::connect(handle.addr()).unwrap();
    let info = client.create_session("after", "tiny", 0, 4).unwrap();
    assert!(info.vms > 0);
    let stats = client.stats("").unwrap();
    assert!(stats.errors >= 1, "hardening failures must be counted");

    handle.shutdown();
}

#[test]
fn degenerate_deltas_get_structured_sim_errors_over_the_wire() {
    use vmr_serve::client::{ClientError, ServeClient};
    use vmr_sim::env::ClusterDelta;
    use vmr_sim::types::{NumaPolicy, VmId};

    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    let info = client.create_session("deg", "tiny", 1, 4).unwrap();
    let vms_before = info.vms;

    // The full audit of degenerate create/resize/add requests: each must
    // come back as a structured `sim` error, not a success, a crash, or a
    // silently mis-allocated VM.
    for delta in [
        ClusterDelta::VmCreate { cpu: 0, mem: 8, numa: NumaPolicy::Single },
        ClusterDelta::VmCreate { cpu: 4, mem: 0, numa: NumaPolicy::Single },
        ClusterDelta::VmCreate { cpu: 3, mem: 8, numa: NumaPolicy::Double },
        ClusterDelta::VmCreate { cpu: 4, mem: 9, numa: NumaPolicy::Double },
        ClusterDelta::VmResize { vm: VmId(0), cpu: 0, mem: 8 },
        ClusterDelta::VmResize { vm: VmId(0), cpu: 4, mem: 0 },
        ClusterDelta::PmAdd { cpu_per_numa: 0, mem_per_numa: 64 },
        ClusterDelta::PmAdd { cpu_per_numa: 44, mem_per_numa: 0 },
    ] {
        match client.apply_delta("deg", delta) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, codes::SIM, "{}", e.message),
            other => panic!("degenerate {delta:?} must yield a sim error, got {other:?}"),
        }
    }

    // The session is unharmed and still plans.
    let stats = client.stats("deg").unwrap();
    assert_eq!(stats.session.as_ref().unwrap().vms, vms_before, "no delta may have landed");
    let planned = client
        .plan(vmr_serve::proto::PlanParams {
            session: "deg".into(),
            policy: "ha".into(),
            mnl: 2,
            seed: 0,
            budget_ms: 50,
            shards: 0,
            workers: 0,
            precision: PrecisionConfig::Exact64,
            commit: false,
        })
        .unwrap();
    assert!(planned.plan.len() <= 2);
    handle.shutdown();
}

#[test]
fn restore_validates_snapshots_like_the_delta_path() {
    use vmr_serve::client::{ClientError, ServeClient};
    use vmr_serve::proto::SessionSnapshot;
    use vmr_sim::types::NumaPlacement;

    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).unwrap();
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    client.create_session("res", "tiny", 1, 4).unwrap();
    let good = client.snapshot("res").unwrap().snapshot;
    let objective = client.stats("res").unwrap().session.unwrap().objective;
    let pms = good.state.num_pms() as u64;
    let double_vm = good
        .state
        .placements()
        .iter()
        .position(|p| matches!(p.numa, NumaPlacement::Double))
        .expect("tiny preset has double-NUMA VMs");

    // Each corruption mirrors a rule the live delta path enforces. A
    // hostile snapshot arrives as wire JSON, so that is where the test
    // tampers — `restore` must reject each with `bad_request`, leaving
    // the session untouched (and never panicking a worker).
    let wire = serde_json::to_value(&good).unwrap();
    fn state_array<'a>(
        v: &'a mut serde_json::Value,
        field: &str,
    ) -> &'a mut Vec<serde_json::Value> {
        v.as_object_mut()
            .unwrap()
            .get_mut("state")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .get_mut(field)
            .unwrap()
            .as_array_mut()
            .unwrap()
    }
    fn set(v: &mut serde_json::Value, field: &str, idx: usize, key: &str, num: u64) {
        state_array(v, field)[idx]
            .as_object_mut()
            .unwrap()
            .insert(key.to_string(), serde_json::json!(num));
    }

    let mut zero_mem = wire.clone();
    set(&mut zero_mem, "vms", 0, "mem", 0);
    let mut odd_double = wire.clone();
    set(&mut odd_double, "vms", double_vm, "cpu", 3);
    let mut out_of_range = wire.clone();
    set(&mut out_of_range, "placements", 0, "pm", pms + 7);
    let mut stale_index = wire.clone();
    state_array(&mut stale_index, "vms_on_pm")[0] = serde_json::json!([u32::MAX]);

    for (what, tampered) in [
        ("zero-memory VM", &zero_mem),
        ("odd-resource double-NUMA VM", &odd_double),
        ("out-of-range placement", &out_of_range),
        ("corrupt reverse index", &stale_index),
    ] {
        let bad: SessionSnapshot =
            serde_json::from_value(tampered).expect("shape survives tampering");
        match client.restore("res", bad) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, codes::BAD_REQUEST, "{what}: {}", e.message)
            }
            other => panic!("{what} must be rejected, got {other:?}"),
        }
    }

    // A constraint set not covering the cluster is caught too.
    let mut short_constraints = good.clone();
    short_constraints.constraints = vmr_sim::ConstraintSet::new(1);
    match client.restore("res", short_constraints) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, codes::BAD_REQUEST, "{}", e.message),
        other => panic!("undersized constraint set must be rejected, got {other:?}"),
    }

    // The session survived every attempt unchanged, and a good snapshot
    // still restores.
    let stats = client.stats("res").unwrap();
    assert_eq!(stats.session.unwrap().objective, objective, "state must be untouched");
    client.restore("res", good).expect("valid snapshot restores");
    handle.shutdown();
}
