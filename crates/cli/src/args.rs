//! Tiny flag parser for the `vmr` CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding `argv[0]`).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let command = argv.next().unwrap_or_default();
        let mut flags = HashMap::new();
        let mut argv = argv.peekable();
        while let Some(arg) = argv.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            let value = match argv.peek() {
                Some(v) if !v.starts_with("--") => argv.next().expect("peeked"),
                _ => "true".to_string(), // bare flag
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.flags.get(key).cloned().ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Boolean flag (present = true).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["train", "--updates", "30", "--verbose", "--out", "x.json"]);
        assert_eq!(a.command, "train");
        assert_eq!(a.num::<usize>("updates", 0).unwrap(), 30);
        assert!(a.flag("verbose"));
        assert_eq!(a.get("out", ""), "x.json");
        assert_eq!(a.get("missing", "d"), "d");
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["eval"]);
        assert!(a.require("agent").is_err());
    }

    #[test]
    fn rejects_positionals() {
        let r = Args::parse(["solve", "stray"].iter().map(|s| s.to_string()));
        assert!(r.is_err());
    }

    #[test]
    fn bad_number_reports_flag() {
        let a = parse(&["gen", "--count", "abc"]);
        let err = a.num::<usize>("count", 1).unwrap_err();
        assert!(err.contains("--count"));
    }
}
