//! `vmr` — operator command line for the VMR2L rescheduling system.
//!
//! Subcommands:
//!
//! * `vmr gen --preset medium --count 8 --seed 0 --out ds.json`
//!   — synthesize a dataset of cluster mappings.
//! * `vmr inspect --dataset ds.json --index 0`
//!   — print cluster statistics (PMs, VMs, utilization, fragment rates).
//! * `vmr train --dataset ds.json --updates 30 --mnl 8 --out agent.json`
//!   — PPO-train a VMR2L agent and save its checkpoint.
//! * `vmr eval --dataset ds.json --agent agent.json --mnl 10 --trajectories 16`
//!   — risk-seeking evaluation of a trained agent on the test split.
//! * `vmr solve --dataset ds.json --index 0 --method ha|bnb|pop|vbpp|mcts|swap --mnl 10`
//!   — run a classical solver and print the migration plan.
//! * `vmr cost --dataset ds.json --index 0 --method ha --mnl 10 --streams 2`
//!   — plan with a solver, then price its execution under the pre-copy
//!   live-migration model (makespan, downtime, bytes moved).
//! * `vmr interfere --dataset ds.json --index 0 --noisy-frac 0.2 --threshold 0.5`
//!   — noisy-neighbor report: interference score and the top contending VMs.
//!
//! Every command prints human-readable output to stdout; `--json` switches
//! plan output to machine-readable JSON.

#![forbid(unsafe_code)]

mod args;

use std::process::ExitCode;
use std::time::Duration;

use args::Args;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_baselines::ha::ha_solve;
use vmr_baselines::mcts::{mcts_solve, MctsConfig};
use vmr_baselines::vbpp::vbpp_solve;
use vmr_core::agent::Vmr2lAgent;
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig, PrecisionConfig};
use vmr_core::eval::{risk_seeking_eval, risk_seeking_eval_f32, RiskSeekingConfig};
use vmr_core::model::{Vmr2lModel, Vmr2lModelF32};
use vmr_core::train::{TrainConfig, Trainer};
use vmr_nn::checkpoint::Checkpoint;
use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{ClusterConfig, Dataset};
use vmr_sim::env::Action;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "inspect" => cmd_inspect(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "solve" => cmd_solve(&args),
        "cost" => cmd_cost(&args),
        "interfere" => cmd_interfere(&args),
        "simulate" => cmd_simulate(&args),
        "serve" => cmd_serve(&args),
        "recover" => cmd_recover(&args),
        "request" => cmd_request(&args),
        "top" => cmd_top(&args),
        "" | "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; try `vmr help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "vmr — VM rescheduling via deep RL (VMR2L reproduction)\n\
         \n\
         usage: vmr <command> [--flags]\n\
         \n\
         commands:\n\
           gen      --preset <tiny|small|medium|large|multi|low|mid|high|xxl>\n\
                    --count N --seed N --out FILE\n\
           inspect  --dataset FILE [--index N]\n\
           train    --dataset FILE [--updates N] [--mnl N] [--seed N]\n\
                    [--extractor sparse|vanilla] [--risk-quantile F]\n\
                    [--rollout-workers N (0 = all cores)] [--out FILE]\n\
           eval     --dataset FILE --agent FILE [--mnl N] [--trajectories N]\n\
                    [--greedy] [--json] [--precision f64|f32]\n\
           solve    --dataset FILE [--index N] --method <ha|bnb|pop|vbpp|mcts|swap>\n\
                    [--mnl N] [--budget-ms N] [--json] [--precision f64|f32]\n\
                    [--fleet [--shards N] [--workers N]]  (shard-parallel ha|bnb|mcts)\n\
           cost     --dataset FILE [--index N] [--method ha] [--mnl N]\n\
                    [--streams N] [--bandwidth GIB_S] [--json]\n\
           interfere --dataset FILE [--index N] [--noisy-frac F]\n\
                    [--threshold F] [--top N] [--json]\n\
           simulate --dataset FILE [--index N] [--days N] [--mnl N]\n\
                    [--planner none|ha] [--base-rate F] [--exit-frac F]\n\
                    [--seed N] [--json]\n\
           serve    [--addr HOST:PORT] [--threads N] [--agent CKPT]\n\
                    [--data-dir DIR [--sync-every N] [--snapshot-every N]]\n\
                    [--slow-ms N] [--event-log FILE] [--no-telemetry]\n\
                    (durable sessions: WAL + snapshots, recovered at boot;\n\
                     --slow-ms emits JSONL slow-request records by trace id)\n\
           recover  --data-dir DIR [--verify]\n\
                    (offline recovery report; --verify audits every session\n\
                     and re-recovers to check bit-identical determinism)\n\
           top      [--addr HOST:PORT] [--interval-ms N] [--once]\n\
                    (live daemon dashboard: throughput, phase tail latencies,\n\
                     durability gauges, per-session table)\n\
           request  --op <create_session|apply_delta|plan|stats|snapshot|\n\
                          restore|metrics>\n\
                    [--addr HOST:PORT] --session NAME [--json] ...\n\
                    create_session: --preset NAME --seed N --mnl N\n\
                    apply_delta:    --delta vm_create|vm_delete|vm_resize|pm_add|pm_drain\n\
                                    [--vm N] [--pm N] [--cpu N] [--mem N] [--double]\n\
                    plan:           --policy agent|ha|swap|mcts|solver|fleet|auto\n\
                                    [--mnl N] [--seed N] [--budget-ms N] [--commit]\n\
                                    [--shards N] [--workers N]  (fleet policy)\n\
                                    [--precision f64|f32]  (agent-backed policies)\n\
                    snapshot:       [--out FILE]    restore: --snapshot FILE\n\
                    metrics:        [--prometheus] [--json]"
    );
}

fn preset(name: &str) -> Result<ClusterConfig, String> {
    Ok(match name {
        "tiny" => ClusterConfig::tiny(),
        "small" => ClusterConfig::small_train(),
        "medium" => ClusterConfig::medium(),
        "large" => ClusterConfig::large(),
        "multi" => ClusterConfig::multi_resource(),
        "low" => ClusterConfig::workload_low(),
        "mid" => ClusterConfig::workload_mid(),
        "high" => ClusterConfig::workload_high(),
        "xxl" => ClusterConfig::xxl(),
        other => return Err(format!("unknown preset {other:?}")),
    })
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args.require("dataset")?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Dataset::from_json(&json).map_err(|e| format!("bad dataset {path}: {e}"))
}

/// Parses `--precision f64|f32` (default f64 — the exact path).
fn parse_precision(args: &Args) -> Result<PrecisionConfig, String> {
    let spelling = args.get("precision", "f64");
    PrecisionConfig::parse(&spelling)
        .ok_or_else(|| format!("unknown precision {spelling:?} (f64|f32)"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let cfg = preset(&args.get("preset", "small"))?;
    let count: usize = args.num("count", 8)?;
    let seed: u64 = args.num("seed", 0)?;
    let out = args.get("out", "dataset.json");
    eprintln!("generating {count} mappings of preset '{}'...", cfg.name);
    let ds = Dataset::generate(&cfg, count, seed).map_err(|e| e.to_string())?;
    std::fs::write(&out, ds.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    let m = &ds.mappings[0];
    println!(
        "wrote {out}: {count} mappings, {} PMs, ~{} VMs, FR16 {:.4}, util {:.2}",
        m.num_pms(),
        m.num_vms(),
        m.fragment_rate(16),
        m.cpu_utilization()
    );
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let index: usize = args.num("index", 0)?;
    let m = ds
        .mappings
        .get(index)
        .ok_or_else(|| format!("index {index} out of range ({} mappings)", ds.mappings.len()))?;
    println!(
        "dataset '{}': {} mappings (train/val/test {}/{}/{})",
        ds.name,
        ds.mappings.len(),
        ds.train.len(),
        ds.val.len(),
        ds.test.len()
    );
    println!("mapping {index}:");
    println!("  PMs: {}   VMs: {}", m.num_pms(), m.num_vms());
    println!("  CPU utilization: {:.2}%", m.cpu_utilization() * 100.0);
    println!("  FR (16-core):    {:.4}", m.fragment_rate(16));
    println!("  FR (64-core dbl):{:.4}", m.fragment_rate_double(64));
    println!("  Mem64 FR:        {:.4}", m.mem_fragment_rate(64));
    // Flavor histogram.
    let mut hist: std::collections::BTreeMap<u32, usize> = Default::default();
    for vm in m.vms() {
        *hist.entry(vm.cpu).or_default() += 1;
    }
    println!("  VM flavors (cores -> count): {hist:?}");
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let updates: usize = args.num("updates", 30)?;
    let mnl: usize = args.num("mnl", 8)?;
    let seed: u64 = args.num("seed", 0)?;
    let out = args.get("out", "agent.json");
    let extractor = match args.get("extractor", "sparse").as_str() {
        "sparse" => ExtractorKind::SparseAttention,
        "vanilla" => ExtractorKind::VanillaAttention,
        other => return Err(format!("unknown extractor {other:?} (sparse|vanilla)")),
    };
    let risk_quantile: f64 = args.num("risk-quantile", -1.0f64)?;
    let rollout_workers: usize = args.num("rollout-workers", 0)?;
    let rollout_workers = if rollout_workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        rollout_workers
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Vmr2lModel::new(ModelConfig::default(), extractor, &mut rng);
    let agent = Vmr2lAgent::new(model, ActionMode::TwoStage);
    let cfg = TrainConfig {
        updates,
        mnl,
        seed,
        eval_every: 0,
        risk_quantile: (0.0..1.0).contains(&risk_quantile).then_some(risk_quantile),
        rollout_workers,
        // Training always runs f64; the field records the precision
        // downstream evaluation/serving of this agent should use.
        precision: parse_precision(args)?,
        ..Default::default()
    };
    let train: Vec<ClusterState> = ds.train_mappings().cloned().collect();
    let eval: Vec<ClusterState> = ds.val_mappings().cloned().collect();
    let mut trainer = Trainer::new(agent, train, eval, cfg).map_err(|e| e.to_string())?;
    trainer
        .train(|s| {
            eprintln!(
                "update {:>3}/{updates}: reward/step {:+.4} loss {:+.4}",
                s.update, s.mean_reward, s.ppo.loss
            );
        })
        .map_err(|e| e.to_string())?;
    let agent = trainer.into_agent();
    let mut ckpt = Checkpoint::capture(&agent.policy);
    ckpt.meta.insert("updates".into(), updates.to_string());
    ckpt.meta.insert("dataset".into(), ds.name.clone());
    ckpt.save(&out).map_err(|e| e.to_string())?;
    println!("trained {updates} updates; checkpoint saved to {out}");
    Ok(())
}

fn load_agent(path: &str) -> Result<Vmr2lAgent<Vmr2lModel>, String> {
    // Shared with the `vmr-serve` daemon: tries both extractor variants,
    // the checkpoint's parameter set disambiguates.
    vmr_core::infer::load_checkpoint_agent(path)
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let agent = load_agent(&args.require("agent")?)?;
    let mnl: usize = args.num("mnl", 10)?;
    let trajectories: usize = args.num("trajectories", 16)?;
    let seed: u64 = args.num("seed", 0)?;
    let precision = parse_precision(args)?;
    // Cast the weights once up front; every trajectory reuses the mirror.
    let m32 =
        (precision == PrecisionConfig::Fast32).then(|| Vmr2lModelF32::from_f64(&agent.policy));
    let test: Vec<&ClusterState> = ds.test_mappings().collect();
    if test.is_empty() {
        return Err("dataset has no test mappings".into());
    }
    let mut init = 0.0;
    let mut achieved = 0.0;
    let mut secs = 0.0;
    for (i, state) in test.iter().enumerate() {
        let cs = ConstraintSet::new(state.num_vms());
        let cfg = RiskSeekingConfig { trajectories, seed: seed + i as u64, ..Default::default() };
        let out = match &m32 {
            Some(m32) => {
                risk_seeking_eval_f32(&agent, m32, state, &cs, Objective::default(), mnl, &cfg)
            }
            None => risk_seeking_eval(&agent, state, &cs, Objective::default(), mnl, &cfg),
        }
        .map_err(|e| e.to_string())?;
        init += state.fragment_rate(16);
        achieved += out.best_objective;
        secs += out.elapsed.as_secs_f64();
        println!(
            "mapping {i}: FR {:.4} -> {:.4}  ({} moves, {:.2}s)",
            state.fragment_rate(16),
            out.best_objective,
            out.best_plan.len(),
            out.elapsed.as_secs_f64()
        );
    }
    let n = test.len() as f64;
    println!(
        "\nmean over {} test mappings: FR {:.4} -> {:.4}  ({:.2}s/mapping, {} trajectories, {})",
        test.len(),
        init / n,
        achieved / n,
        secs / n,
        trajectories,
        precision.as_str()
    );
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let index: usize = args.num("index", 0)?;
    let mnl: usize = args.num("mnl", 10)?;
    let budget = Duration::from_millis(args.num("budget-ms", 5000u64)?);
    let state = ds.mappings.get(index).ok_or_else(|| format!("index {index} out of range"))?;
    let cs = ConstraintSet::new(state.num_vms());
    let obj = Objective::default();
    let method = args.require("method")?;
    // Classical solvers run precision-independent arithmetic; the flag is
    // validated for CLI consistency but only `f64` describes them.
    if parse_precision(args)? == PrecisionConfig::Fast32 {
        eprintln!("note: --precision f32 only affects agent inference; {method} ignores it");
    }
    let t0 = std::time::Instant::now();
    if args.flag("fleet") {
        return solve_fleet(args, state, &cs, obj, mnl, budget, &method, t0);
    }
    let (plan, fr): (Vec<Action>, f64) = match method.as_str() {
        "ha" => {
            let r = ha_solve(state, &cs, obj, mnl);
            (r.plan, r.objective)
        }
        "vbpp" => {
            let r = vbpp_solve(state, &cs, obj, mnl, (mnl / 5).max(2));
            (r.plan, r.objective)
        }
        "bnb" => {
            let r = branch_and_bound(
                state,
                &cs,
                obj,
                mnl,
                &SolverConfig { time_limit: budget, beam_width: Some(48), ..Default::default() },
            );
            (r.plan, r.objective)
        }
        "pop" => {
            let r = pop_solve(
                state,
                &cs,
                obj,
                mnl,
                &PopConfig {
                    partitions: 4,
                    sub: SolverConfig {
                        time_limit: budget,
                        beam_width: Some(24),
                        ..Default::default()
                    },
                    seed: 0,
                },
            );
            (r.plan, r.objective)
        }
        "mcts" => {
            let r = mcts_solve(
                state,
                &cs,
                obj,
                mnl,
                &MctsConfig { time_limit: budget, ..Default::default() },
            );
            (r.plan, r.objective)
        }
        "swap" => return solve_swap(args, state, &cs, obj, mnl),
        other => return Err(format!("unknown method {other:?} (ha|bnb|pop|vbpp|mcts|swap)")),
    };
    let elapsed = t0.elapsed();
    if args.flag("json") {
        let body = serde_json::json!({
            "method": method,
            "mnl": mnl,
            "initial_fr": state.fragment_rate(16),
            "final_fr": fr,
            "elapsed_s": elapsed.as_secs_f64(),
            "plan": plan.iter().map(|a| {
                serde_json::json!({
                    "vm": a.vm.0,
                    "from_pm": state.placement(a.vm).pm.0,
                    "to_pm": a.pm.0,
                })
            }).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!(
            "{method}: FR {:.4} -> {:.4} with {} migrations in {:.2}s",
            state.fragment_rate(16),
            fr,
            plan.len(),
            elapsed.as_secs_f64()
        );
        for (i, a) in plan.iter().enumerate() {
            println!(
                "  {i}: VM{} ({}c) PM{} -> PM{}",
                a.vm.0,
                state.vm(a.vm).cpu,
                state.placement(a.vm).pm.0,
                a.pm.0
            );
        }
    }
    Ok(())
}

/// `solve --fleet`: run a classical method per shard through the
/// shard-parallel fleet planner — PMs are partitioned
/// fragmentation-balanced, every shard is solved concurrently, and the
/// stitched plan honors the *global* MNL exactly (leftover budget goes
/// to the cross-shard refinement pass).
#[allow(clippy::too_many_arguments)]
fn solve_fleet(
    args: &Args,
    state: &ClusterState,
    cs: &ConstraintSet,
    obj: Objective,
    mnl: usize,
    budget: Duration,
    method: &str,
    t0: std::time::Instant,
) -> Result<(), String> {
    use vmr_sim::shard::{fleet_plan, FleetConfig, ShardStrategy};
    let shards: usize = args.num("shards", 16)?;
    let workers: usize = args.num("workers", 0)?;
    let cfg = FleetConfig {
        shards,
        strategy: ShardStrategy::FragBalanced,
        seed: args.num("seed", 0)?,
        workers,
        refine: true,
    };
    // `--budget-ms` is the *total* wall-clock budget. Shards run in
    // waves of `workers`, so each deadline-bound sub-solve gets the
    // budget divided by the number of waves — otherwise 32 sequential
    // shards at the full budget each would overrun the request 32×.
    let effective_workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    }
    .clamp(1, shards.max(1));
    let waves = shards.max(1).div_ceil(effective_workers) as u32;
    let sub_budget = (budget / waves).max(Duration::from_millis(1));
    let out = match method {
        "ha" => fleet_plan(state, cs, obj, mnl, &cfg, |_, sub, m| {
            ha_solve(&sub.state, &sub.constraints, obj, m).plan
        }),
        "bnb" => {
            let sub_cfg =
                SolverConfig { time_limit: sub_budget, beam_width: Some(48), ..Default::default() };
            fleet_plan(state, cs, obj, mnl, &cfg, |_, sub, m| {
                branch_and_bound(&sub.state, &sub.constraints, obj, m, &sub_cfg).plan
            })
        }
        "mcts" => {
            let sub_cfg = MctsConfig { time_limit: sub_budget, ..Default::default() };
            fleet_plan(state, cs, obj, mnl, &cfg, |i, sub, m| {
                mcts_solve(
                    &sub.state,
                    &sub.constraints,
                    obj,
                    m,
                    &MctsConfig { seed: sub_cfg.seed.wrapping_add(i as u64), ..sub_cfg },
                )
                .plan
            })
        }
        other => return Err(format!("--fleet supports ha|bnb|mcts, not {other:?}")),
    };
    let elapsed = t0.elapsed();
    // Source hosts are read while *replaying* the plan: a VM the
    // refinement pass moves a second time has left its initial host, and
    // an operator executing the printed sequence needs the true source
    // of each step.
    let mut replay = state.clone();
    let mut steps = Vec::with_capacity(out.plan.len());
    for a in &out.plan {
        let from = replay.placement(a.vm).pm;
        replay.migrate(a.vm, a.pm, obj.frag_cores()).map_err(|e| e.to_string())?;
        steps.push((a.vm, from, a.pm));
    }
    if args.flag("json") {
        let body = serde_json::json!({
            "method": format!("fleet:{method}"),
            "mnl": mnl,
            "shards": out.shards,
            "refined": out.refined,
            "initial_fr": state.fragment_rate(16),
            "final_fr": out.objective,
            "elapsed_s": elapsed.as_secs_f64(),
            "plan": steps.iter().map(|&(vm, from, to)| {
                serde_json::json!({
                    "vm": vm.0,
                    "from_pm": from.0,
                    "to_pm": to.0,
                })
            }).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!(
            "fleet:{method} ({} shards): FR {:.4} -> {:.4} with {} migrations \
             ({} from refinement) in {:.2}s",
            out.shards,
            state.fragment_rate(16),
            out.objective,
            out.plan.len(),
            out.refined,
            elapsed.as_secs_f64()
        );
        for (i, &(vm, from, to)) in steps.iter().enumerate() {
            println!("  {i}: VM{} ({}c) PM{} -> PM{}", vm.0, state.vm(vm).cpu, from.0, to.0);
        }
    }
    Ok(())
}

/// `solve --method swap`: swap-aware local search — its plan mixes
/// single migrations with atomic exchanges, so it needs its own output.
fn solve_swap(
    args: &Args,
    state: &ClusterState,
    cs: &ConstraintSet,
    obj: Objective,
    mnl: usize,
) -> Result<(), String> {
    use vmr_baselines::swap::{swap_search_solve, SwapMove};
    let r = swap_search_solve(state, cs, obj, mnl, &Default::default());
    if args.flag("json") {
        let body = serde_json::json!({
            "method": "swap",
            "mnl": mnl,
            "initial_fr": state.fragment_rate(16),
            "final_fr": r.objective,
            "migrations_used": r.migrations_used,
            "elapsed_s": r.elapsed.as_secs_f64(),
            "moves": r.moves.iter().map(|m| match m {
                SwapMove::Single(a) => serde_json::json!({
                    "kind": "migrate", "vm": a.vm.0, "to_pm": a.pm.0,
                }),
                SwapMove::Swap(a, b) => serde_json::json!({
                    "kind": "swap", "vm_a": a.0, "vm_b": b.0,
                }),
            }).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!(
            "swap: FR {:.4} -> {:.4} with {} migrations ({} moves) in {:.2}s",
            state.fragment_rate(16),
            r.objective,
            r.migrations_used,
            r.moves.len(),
            r.elapsed.as_secs_f64()
        );
        for (i, m) in r.moves.iter().enumerate() {
            match m {
                SwapMove::Single(a) => println!("  {i}: migrate VM{} -> PM{}", a.vm.0, a.pm.0),
                SwapMove::Swap(a, b) => println!("  {i}: swap VM{} <-> VM{}", a.0, b.0),
            }
        }
    }
    Ok(())
}

/// `vmr cost`: price a plan's execution under the pre-copy model.
fn cmd_cost(args: &Args) -> Result<(), String> {
    use vmr_sim::migration::{schedule_plan, NicLimits, PrecopyModel};
    let ds = load_dataset(args)?;
    let index: usize = args.num("index", 0)?;
    let mnl: usize = args.num("mnl", 10)?;
    let streams: u32 = args.num("streams", 2)?;
    let state = ds.mappings.get(index).ok_or_else(|| format!("index {index} out of range"))?;
    let cs = ConstraintSet::new(state.num_vms());
    let method = args.get("method", "ha");
    if method != "ha" {
        return Err("cost currently prices HA plans; use --method ha".into());
    }
    let plan = ha_solve(state, &cs, Objective::default(), mnl).plan;
    let model =
        PrecopyModel { bandwidth_gib_s: args.num("bandwidth", 2.5f64)?, ..PrecopyModel::default() };
    let sched = schedule_plan(state, &plan, &model, NicLimits { streams_per_pm: streams })
        .map_err(|e| e.to_string())?;
    if args.flag("json") {
        let body = serde_json::json!({
            "plan_len": plan.len(),
            "streams_per_pm": streams,
            "bandwidth_gib_s": model.bandwidth_gib_s,
            "makespan_s": sched.makespan_secs,
            "sequential_s": sched.sequential_secs,
            "speedup": sched.speedup(),
            "total_downtime_ms": sched.total_downtime_ms,
            "transferred_gib": sched.total_transferred_gib,
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!(
            "plan of {} migrations @ {} streams/PM, {} GiB/s:",
            plan.len(),
            streams,
            model.bandwidth_gib_s
        );
        println!(
            "  makespan    {:.1}s (sequential {:.1}s, speedup {:.2}x)",
            sched.makespan_secs,
            sched.sequential_secs,
            sched.speedup()
        );
        println!("  downtime    {:.1} ms total across VMs", sched.total_downtime_ms);
        println!("  transferred {:.1} GiB", sched.total_transferred_gib);
        for m in &sched.migrations {
            println!(
                "    t={:>6.1}s VM{:<4} PM{:<3} -> PM{:<3} ({:.1}s, {} rounds, {:.1} ms pause)",
                m.start_secs,
                m.vm.0,
                m.src.0,
                m.dst.0,
                m.cost.total_secs(),
                m.cost.rounds,
                m.cost.downtime_ms
            );
        }
    }
    Ok(())
}

/// `vmr simulate`: run the Figs. 1–3 daily loop — diurnal best-fit VMS
/// churn with one off-peak VMR window per day.
fn cmd_simulate(args: &Args) -> Result<(), String> {
    use vmr_sim::dataset::VmMix;
    use vmr_sim::daycycle::{run_day_cycle, DayCycleConfig};
    use vmr_sim::trace::DiurnalModel;
    let ds = load_dataset(args)?;
    let index: usize = args.num("index", 0)?;
    let state = ds.mappings.get(index).ok_or_else(|| format!("index {index} out of range"))?;
    let seed: u64 = args.num("seed", 0)?;
    let planner_name = args.get("planner", "ha");

    let mut cfg = DayCycleConfig::new(VmMix::standard());
    cfg.days = args.num("days", 2u32)?;
    cfg.mnl = args.num("mnl", 10)?;
    cfg.sample_every = 30;
    // Default churn keeps the population mean-reverting around the
    // snapshot's size: equilibrium ≈ base_rate / exit_frac.
    let default_exit = 0.0035;
    let default_rate = state.num_vms() as f64 * default_exit;
    cfg.model = DiurnalModel {
        base_rate: args.num("base-rate", default_rate)?,
        amplitude: 0.6,
        peak_minute: 14 * 60,
    };
    cfg.exit_frac = args.num("exit-frac", default_exit)?;

    let obj = Objective::default();
    type Planner = Box<dyn FnMut(&ClusterState, usize) -> Vec<Action>>;
    let mut planner: Planner = match planner_name.as_str() {
        "none" => Box::new(|_: &ClusterState, _| Vec::new()),
        "ha" => Box::new(move |s: &ClusterState, mnl: usize| {
            ha_solve(s, &ConstraintSet::new(s.num_vms()), obj, mnl).plan
        }),
        other => return Err(format!("unknown planner {other:?} (none|ha)")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let out = run_day_cycle(state, &mut planner, &cfg, &mut rng).map_err(|e| e.to_string())?;

    if args.flag("json") {
        let body = serde_json::json!({
            "planner": planner_name,
            "days": cfg.days,
            "mnl": cfg.mnl,
            "mean_fr": out.mean_fr(),
            "mean_window_drop": out.mean_window_drop(),
            "windows": out.windows.iter().map(|w| serde_json::json!({
                "minute": w.minute,
                "fr_before": w.fr_before,
                "fr_after": w.fr_after,
                "applied": w.applied,
                "dropped": w.dropped,
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!(
            "{} days of churn with planner '{planner_name}' (MNL {} per window):",
            cfg.days, cfg.mnl
        );
        for w in &out.windows {
            println!(
                "  day {} {:02}:{:02}  FR {:.4} -> {:.4}  ({} applied, {} dropped)",
                w.minute / 1440,
                (w.minute % 1440) / 60,
                w.minute % 60,
                w.fr_before,
                w.fr_after,
                w.applied,
                w.dropped
            );
        }
        println!("mean FR {:.4}  mean drop/window {:.4}", out.mean_fr(), out.mean_window_drop());
    }
    Ok(())
}

/// `vmr serve`: run the online rescheduling daemon until killed.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use vmr_serve::server::{serve, ServerConfig};
    use vmr_serve::wal::DurabilityConfig;
    use vmr_telemetry::EventLog;
    let agent = match args.get("agent", "").as_str() {
        "" => None,
        path => Some(vmr_core::infer::SharedAgent::load(path)?),
    };
    let has_agent = agent.is_some();
    let durability = match args.get("data-dir", "").as_str() {
        "" => None,
        dir => {
            let mut cfg = DurabilityConfig::new(dir);
            cfg.sync_every = args.num("sync-every", cfg.sync_every)?;
            cfg.snapshot_every = args.num("snapshot-every", cfg.snapshot_every)?;
            Some(cfg)
        }
    };
    let events = match args.get("event-log", "").as_str() {
        "" => None,
        path => Some(std::sync::Arc::new(
            EventLog::to_file(path).map_err(|e| format!("cannot open event log {path}: {e}"))?,
        )),
    };
    let config = ServerConfig {
        addr: args.get("addr", "127.0.0.1:7171"),
        threads: args.num("threads", 4)?,
        agent,
        durability,
        telemetry: !args.flag("no-telemetry"),
        slow_ms: args.num("slow-ms", 0)?,
        events,
    };
    let handle = serve(config).map_err(|e| format!("cannot start: {e}"))?;
    if let Some(report) = handle.recovery_report() {
        print!("{report}");
    }
    println!("vmr-serve listening on {}", handle.addr());
    println!(
        "policies: ha, swap, mcts, solver, fleet{}  (try: vmr request --addr {} --op \
         create_session --session prod --preset medium)",
        if has_agent { ", agent, auto" } else { " (no --agent checkpoint: agent disabled)" },
        handle.addr()
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `vmr recover`: offline recovery of a durable data dir — prints the
/// per-session report; `--verify` additionally audits every recovered
/// state and re-runs recovery to prove it is deterministic
/// (bit-identical observations). Exits nonzero when any session is
/// degraded (dead or read-only) or a verification fails.
fn cmd_recover(args: &Args) -> Result<(), String> {
    use vmr_serve::recovery::{recover_dir, recover_session, RecoveryNote};
    use vmr_serve::wal::DurabilityConfig;
    let data_dir = args.require("data-dir")?;
    let cfg = DurabilityConfig::new(&data_dir);
    let mut rec = recover_dir(&cfg).map_err(|e| format!("cannot scan {data_dir}: {e}"))?;
    print!("{}", rec.report());
    let mut failures: Vec<String> =
        rec.dead.iter().map(|d| format!("'{}' is unrecoverable: {}", d.name, d.reason)).collect();
    for s in &rec.live {
        if let RecoveryNote::CorruptReadOnly { reason } = &s.note {
            failures.push(format!("'{}' degraded to read-only: {reason}", s.name));
        }
    }
    if args.flag("verify") {
        for s in &mut rec.live {
            let name = s.name.clone();
            if let Err(e) = s.session.env_mut().state().audit() {
                failures.push(format!("'{name}' fails its state audit: {e}"));
                continue;
            }
            // Recovery must be deterministic: running it again over the
            // re-anchored artifacts yields a bit-identical observation.
            match recover_session(&name, s.log.dir(), &cfg) {
                Err(e) => failures.push(format!("'{name}' failed re-recovery: {e}")),
                Ok(mut twin) => {
                    if twin.session.env_mut().observe() != s.session.env_mut().observe() {
                        failures.push(format!(
                            "'{name}' re-recovery observation differs (non-deterministic!)"
                        ));
                    }
                }
            }
        }
        if failures.is_empty() {
            println!(
                "verify: {} session(s) audited, re-recovered, and bit-identical",
                rec.live.len()
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// `vmr request`: one wire-protocol request against a running daemon.
fn cmd_request(args: &Args) -> Result<(), String> {
    use vmr_serve::client::ServeClient;
    use vmr_serve::proto::{PlanParams, SessionSnapshot};
    use vmr_sim::env::ClusterDelta;
    use vmr_sim::types::{NumaPolicy, PmId, VmId};

    let addr = args.get("addr", "127.0.0.1:7171");
    let mut client =
        ServeClient::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let op = args.require("op")?;
    let session = args.get("session", "");
    let json = args.flag("json");
    match op.as_str() {
        "create_session" => {
            let info = client
                .create_session(
                    &args.require("session")?,
                    &args.get("preset", "tiny"),
                    args.num("seed", 0)?,
                    args.num("mnl", 10)?,
                )
                .map_err(|e| e.to_string())?;
            println!(
                "created session '{}': {} PMs, {} VMs, FR {:.4}",
                info.session, info.pms, info.vms, info.objective
            );
        }
        "apply_delta" => {
            let numa = if args.flag("double") { NumaPolicy::Double } else { NumaPolicy::Single };
            let delta = match args.require("delta")?.as_str() {
                "vm_create" => ClusterDelta::VmCreate {
                    cpu: args.num("cpu", 4)?,
                    mem: args.num("mem", 8)?,
                    numa,
                },
                "vm_delete" => ClusterDelta::VmDelete { vm: VmId(args.num("vm", 0)?) },
                "vm_resize" => ClusterDelta::VmResize {
                    vm: VmId(args.num("vm", 0)?),
                    cpu: args.num("cpu", 4)?,
                    mem: args.num("mem", 8)?,
                },
                "pm_add" => ClusterDelta::PmAdd {
                    cpu_per_numa: args.num("cpu", 44)?,
                    mem_per_numa: args.num("mem", 128)?,
                },
                "pm_drain" => ClusterDelta::PmDrain { pm: PmId(args.num("pm", 0)?) },
                other => return Err(format!("unknown delta {other:?}")),
            };
            let d =
                client.apply_delta(&args.require("session")?, delta).map_err(|e| e.to_string())?;
            println!(
                "delta applied: v{} — {} PMs, {} VMs, FR {:.4}{}{}",
                d.info.version,
                d.info.pms,
                d.info.vms,
                d.info.objective,
                d.created_vm.map(|v| format!(", created VM{v}")).unwrap_or_default(),
                if d.migrations > 0 {
                    format!(", {} evacuation migrations", d.migrations)
                } else {
                    String::new()
                }
            );
        }
        "plan" => {
            let planned = client
                .plan(PlanParams {
                    session: args.require("session")?,
                    policy: args.get("policy", "auto"),
                    mnl: args.num("mnl", 0)?,
                    seed: args.num("seed", 0)?,
                    budget_ms: args.num("budget-ms", 0)?,
                    shards: args.num("shards", 0)?,
                    workers: args.num("workers", 0)?,
                    precision: parse_precision(args)?,
                    commit: args.flag("commit"),
                })
                .map_err(|e| e.to_string())?;
            if json {
                let body = serde_json::json!({
                    "policy": planned.policy,
                    "objective_before": planned.objective_before,
                    "objective_after": planned.objective_after,
                    "computed": planned.computed,
                    "version": planned.version,
                    "plan": planned.plan.iter().map(|a| serde_json::json!({
                        "vm": a.vm, "from_pm": a.from_pm, "to_pm": a.to_pm,
                    })).collect::<Vec<_>>(),
                });
                println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
            } else {
                println!(
                    "{}: FR {:.4} -> {:.4} with {} migrations ({})",
                    planned.policy,
                    planned.objective_before,
                    planned.objective_after,
                    planned.plan.len(),
                    if planned.computed { "computed" } else { "from cache" }
                );
                for (i, a) in planned.plan.iter().enumerate() {
                    println!("  {i}: VM{} PM{} -> PM{}", a.vm, a.from_pm, a.to_pm);
                }
            }
        }
        "stats" => {
            let s = client.stats(&session).map_err(|e| e.to_string())?;
            if json {
                println!("{}", serde_json::to_string_pretty(&s).expect("serializable"));
                return Ok(());
            }
            println!(
                "sessions {}  requests {}  plans {}/{} (served/computed)  deltas {}  errors {}",
                s.sessions, s.requests, s.plans_served, s.plans_computed, s.deltas, s.errors
            );
            println!("uptime {}  queue depth {}", fmt_uptime(s.uptime_ms), s.queue_depth);
            if s.recoveries > 0 || s.degraded_sessions > 0 {
                println!(
                    "durability: {} recovered at boot, {} degraded",
                    s.recoveries, s.degraded_sessions
                );
            }
            if let Some(info) = s.session {
                println!(
                    "session '{}': v{} — {} PMs, {} VMs, FR {:.4}",
                    info.session, info.version, info.pms, info.vms, info.objective
                );
            }
            if let Some(d) = s.durability {
                println!(
                    "  wal: lsn {} (durable {}, snapshot {}), {} log bytes{}",
                    d.appended_lsn,
                    d.durable_lsn,
                    d.snapshot_lsn,
                    d.log_bytes,
                    if d.read_only { format!(", READ-ONLY: {}", d.reason) } else { String::new() }
                );
            }
        }
        "snapshot" => {
            let snap = client.snapshot(&args.require("session")?).map_err(|e| e.to_string())?;
            let out = args.get("out", "snapshot.json");
            let body = serde_json::to_string(&snap.snapshot).map_err(|e| format!("{e:?}"))?;
            std::fs::write(&out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "snapshot v{} ({} PMs, {} VMs) written to {out}",
                snap.snapshot.version,
                snap.snapshot.state.num_pms(),
                snap.snapshot.state.num_vms()
            );
        }
        "metrics" => {
            let m = client.metrics(args.flag("prometheus")).map_err(|e| e.to_string())?;
            if let Some(text) = m.prometheus {
                print!("{text}");
            } else if json {
                println!("{}", serde_json::to_string_pretty(&m.snapshot).expect("serializable"));
            } else {
                for c in &m.snapshot.counters {
                    println!("{:<34} {}", c.name, c.value);
                }
                for g in &m.snapshot.gauges {
                    println!("{:<34} {}", g.name, g.value);
                }
                println!(
                    "{:<26} {:>9} {:>10} {:>10} {:>10} {:>10}",
                    "histogram", "count", "p50", "p99", "p999", "max"
                );
                for h in &m.snapshot.histograms {
                    let v = |x: u64| {
                        if h.unit == "ns" {
                            fmt_ns(x)
                        } else {
                            x.to_string()
                        }
                    };
                    println!(
                        "{:<26} {:>9} {:>10} {:>10} {:>10} {:>10}",
                        h.name,
                        h.count,
                        v(h.p50),
                        v(h.p99),
                        v(h.p999),
                        v(h.max)
                    );
                }
            }
        }
        "restore" => {
            let path = args.require("snapshot")?;
            let body =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let snapshot: SessionSnapshot =
                serde_json::from_str(&body).map_err(|e| format!("bad snapshot {path}: {e:?}"))?;
            let info =
                client.restore(&args.require("session")?, snapshot).map_err(|e| e.to_string())?;
            println!(
                "restored session '{}': v{} — {} PMs, {} VMs, FR {:.4}",
                info.session, info.version, info.pms, info.vms, info.objective
            );
        }
        other => return Err(format!("unknown op {other:?}; see `vmr help`")),
    }
    Ok(())
}

/// Human-scale latency: picks ns/µs/ms/s.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-scale uptime: `42s`, `7m02s`, `3h07m`.
fn fmt_uptime(ms: u64) -> String {
    let secs = ms / 1000;
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

/// `vmr top`: poll a daemon's `stats` + `metrics` ops and redraw a live
/// table — throughput, phase tail latencies, durability gauges, and the
/// per-session table. `--once` prints a single frame (no screen clear).
fn cmd_top(args: &Args) -> Result<(), String> {
    use vmr_serve::client::ServeClient;
    let addr = args.get("addr", "127.0.0.1:7171");
    let interval = Duration::from_millis(args.num("interval-ms", 1000u64)?.max(100));
    let once = args.flag("once");
    let mut client =
        ServeClient::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    // Per-poll deltas turn monotone counters into rates.
    let mut last: Option<(std::time::Instant, u64, u64)> = None;
    loop {
        let stats = client.stats("").map_err(|e| e.to_string())?;
        let metrics = client.metrics(false).map_err(|e| e.to_string())?;
        let now = std::time::Instant::now();
        let (req_s, plan_s) = match last {
            None => (0.0, 0.0),
            Some((t0, req0, plans0)) => {
                let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
                (
                    stats.requests.saturating_sub(req0) as f64 / dt,
                    stats.plans_served.saturating_sub(plans0) as f64 / dt,
                )
            }
        };
        last = Some((now, stats.requests, stats.plans_served));
        if !once {
            print!("\x1b[2J\x1b[H"); // clear screen, cursor home
        }
        render_top(&addr, &stats, &metrics.snapshot, req_s, plan_s);
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn render_top(
    addr: &str,
    stats: &vmr_serve::proto::StatsReply,
    snap: &vmr_telemetry::MetricsSnapshot,
    req_s: f64,
    plan_s: f64,
) {
    println!(
        "vmr top — {addr}   uptime {}   queue {}   {:.1} req/s   {:.1} plans/s",
        fmt_uptime(stats.uptime_ms),
        stats.queue_depth,
        req_s,
        plan_s
    );
    println!(
        "requests {}   plans {}/{} (served/computed, {} coalesced)   deltas {}   errors {}   \
         slow {}",
        stats.requests,
        stats.plans_served,
        stats.plans_computed,
        snap.counter("serve_plans_coalesced").unwrap_or(0),
        stats.deltas,
        stats.errors,
        snap.counter("serve_slow_requests").unwrap_or(0),
    );
    if stats.recoveries > 0 || stats.degraded_sessions > 0 {
        println!(
            "durability: {} recovered at boot, {} degraded",
            stats.recoveries, stats.degraded_sessions
        );
    }
    println!();
    println!("{:<22} {:>9} {:>10} {:>10} {:>10}", "phase", "count", "p50", "p99", "p999");
    for name in [
        "serve_request",
        "serve_frame_decode",
        "serve_lock_wait",
        "serve_plan_compute",
        "serve_plan_wait",
        "serve_wal_append",
        "serve_wal_fsync",
        "serve_wal_compact",
        "serve_resp_write",
    ] {
        if let Some(h) = snap.histogram(name) {
            if h.count > 0 {
                println!(
                    "{:<22} {:>9} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_ns(h.p50),
                    fmt_ns(h.p99),
                    fmt_ns(h.p999)
                );
            }
        }
    }
    println!();
    println!(
        "{:<18} {:>8} {:>6} {:>6} {:>8}  {:>9} {:>9}  flags",
        "session", "version", "pms", "vms", "FR", "lsn", "durable"
    );
    for d in &stats.sessions_detail {
        let (pms, vms, fr) = match &d.info {
            Some(i) => (i.pms.to_string(), i.vms.to_string(), format!("{:.4}", i.objective)),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let (lsn, durable) = match &d.durability {
            Some(w) => (w.appended_lsn.to_string(), w.durable_lsn.to_string()),
            None => ("-".into(), "-".into()),
        };
        let mut flags = Vec::new();
        if d.busy {
            flags.push("busy");
        }
        if d.read_only {
            flags.push("read-only");
        }
        println!(
            "{:<18} {:>8} {:>6} {:>6} {:>8}  {:>9} {:>9}  {}",
            d.session,
            d.version,
            pms,
            vms,
            fr,
            lsn,
            durable,
            flags.join(",")
        );
    }
}

/// `vmr interfere`: noisy-neighbor interference report.
fn cmd_interfere(args: &Args) -> Result<(), String> {
    use vmr_sim::interference::{InterferenceModel, UsageProfiles};
    let ds = load_dataset(args)?;
    let index: usize = args.num("index", 0)?;
    let noisy_frac: f64 = args.num("noisy-frac", 0.2f64)?;
    let threshold: f64 = args.num("threshold", 0.5f64)?;
    let top: usize = args.num("top", 10)?;
    let seed: u64 = args.num("seed", 0)?;
    let state = ds.mappings.get(index).ok_or_else(|| format!("index {index} out of range"))?;
    let profiles = UsageProfiles::generate(state, noisy_frac, seed);
    let model = InterferenceModel { threshold, use_burst: true };
    let score = model.cluster_score(state, &profiles);
    let ranked = model.noisiest_vms(state, &profiles, top);
    if args.flag("json") {
        let body = serde_json::json!({
            "threshold": threshold,
            "cluster_score": score,
            "noisiest": ranked.iter().map(|(v, c)| serde_json::json!({
                "vm": v.0,
                "pm": state.placement(*v).pm.0,
                "contribution": c,
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&body).expect("serializable"));
    } else {
        println!("cluster interference score (threshold {threshold}): {score:.5}");
        if ranked.is_empty() {
            println!("no PM exceeds the contention threshold");
        }
        for (v, c) in &ranked {
            println!(
                "  VM{:<4} ({}c, util {:.2}) on PM{:<3}: {:.5}",
                v.0,
                state.vm(*v).cpu,
                profiles.usage(*v).burst_util,
                state.placement(*v).pm.0,
                c
            );
        }
    }
    Ok(())
}
