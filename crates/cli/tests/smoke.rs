//! Workspace smoke test: `vmr gen → train → eval` end-to-end on a tiny
//! preset. This is the one test that exercises the whole stack through
//! the operator CLI — dataset synthesis (vmr-sim), PPO training and
//! checkpointing (vmr-core / vmr-nn), and risk-seeking evaluation —
//! wired exactly the way an operator would run it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vmr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vmr")).args(args).output().expect("spawn vmr")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vmr-smoke-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

#[test]
fn gen_train_eval_pipeline() {
    let ds = tmp("pipeline-ds.json");
    let agent = tmp("pipeline-agent.json");
    let ds_path = ds.to_str().unwrap();
    let agent_path = agent.to_str().unwrap();

    // gen: synthesize a tiny dataset with train/val/test splits.
    let out = vmr(&["gen", "--preset", "tiny", "--count", "6", "--seed", "7", "--out", ds_path]);
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ds.exists(), "gen did not write the dataset");

    // train: two PPO updates are enough to prove the loop turns over
    // and produces a loadable checkpoint.
    let out = vmr(&[
        "train",
        "--dataset",
        ds_path,
        "--updates",
        "2",
        "--mnl",
        "4",
        "--seed",
        "0",
        "--out",
        agent_path,
    ]);
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trained 2 updates"), "unexpected train output: {text}");
    assert!(agent.exists(), "train did not write the checkpoint");

    // eval: risk-seeking evaluation of the fresh agent on the test
    // split; FR values must be sane rates.
    let out = vmr(&[
        "eval",
        "--dataset",
        ds_path,
        "--agent",
        agent_path,
        "--mnl",
        "4",
        "--trajectories",
        "4",
    ]);
    assert!(out.status.success(), "eval failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean over"), "eval printed no summary: {text}");
    for line in text.lines().filter(|l| l.starts_with("mapping ")) {
        // `mapping N: FR <before> -> <after>  (M moves, T.TTs)` — the
        // two bare floats are the fragment rates; they must be rates.
        let frs: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.trim_end_matches(',').parse::<f64>().ok())
            .collect();
        assert_eq!(frs.len(), 2, "expected two FR values in eval line: {line}");
        assert!(
            frs.iter().all(|fr| (0.0..=1.0).contains(fr)),
            "FR outside [0, 1] in eval line: {line}"
        );
    }
}
