//! End-to-end tests of the `vmr` operator CLI: every subcommand is
//! exercised against a freshly generated dataset in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vmr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vmr")).args(args).output().expect("spawn vmr")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vmr-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn gen_dataset(name: &str) -> String {
    let path = tmp(name);
    let out = vmr(&[
        "gen",
        "--preset",
        "tiny",
        "--count",
        "3",
        "--seed",
        "5",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    path.to_str().unwrap().to_string()
}

#[test]
fn help_lists_all_subcommands() {
    let out = vmr(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "gen",
        "inspect",
        "train",
        "eval",
        "solve",
        "cost",
        "interfere",
        "simulate",
        "serve",
        "request",
    ] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn serve_and_request_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    // Start the daemon on an ephemeral port and parse the bound address
    // from its first stdout line.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_vmr"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    // Keep the reader alive for the daemon's lifetime: dropping it would
    // close the pipe and break the daemon's later prints.
    let mut daemon_stdout = BufReader::new(daemon.stdout.take().expect("stdout piped"));
    let mut first_line = String::new();
    daemon_stdout.read_line(&mut first_line).expect("daemon announces its address");
    let addr = first_line.trim().rsplit(' ').next().expect("address token").to_string();

    let run = |args: &[&str]| -> Output {
        let mut full = vec!["request", "--addr", &addr];
        full.extend_from_slice(args);
        vmr(&full)
    };
    let out = run(&[
        "--op",
        "create_session",
        "--session",
        "ops",
        "--preset",
        "tiny",
        "--seed",
        "3",
        "--mnl",
        "6",
    ]);
    assert!(out.status.success(), "create: {}", String::from_utf8_lossy(&out.stderr));
    let out = run(&[
        "--op",
        "apply_delta",
        "--session",
        "ops",
        "--delta",
        "vm_create",
        "--cpu",
        "4",
        "--mem",
        "8",
    ]);
    assert!(out.status.success(), "delta: {}", String::from_utf8_lossy(&out.stderr));
    let out = run(&["--op", "plan", "--session", "ops", "--policy", "ha", "--mnl", "4", "--json"]);
    assert!(out.status.success(), "plan: {}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(body["policy"], "ha");
    assert!(
        body["objective_after"].as_f64().unwrap() <= body["objective_before"].as_f64().unwrap()
    );
    let out = run(&["--op", "stats", "--session", "ops"]);
    assert!(out.status.success(), "stats: {}", String::from_utf8_lossy(&out.stderr));
    // Snapshot to a file, then restore from it.
    let snap = tmp("cli-snap.json");
    let out = run(&["--op", "snapshot", "--session", "ops", "--out", snap.to_str().unwrap()]);
    assert!(out.status.success(), "snapshot: {}", String::from_utf8_lossy(&out.stderr));
    let out = run(&["--op", "restore", "--session", "ops", "--snapshot", snap.to_str().unwrap()]);
    assert!(out.status.success(), "restore: {}", String::from_utf8_lossy(&out.stderr));

    daemon.kill().expect("stop daemon");
    let _ = daemon.wait();
}

#[test]
fn simulate_runs_the_daily_loop() {
    let ds = gen_dataset("simulate.json");
    let out = vmr(&["simulate", "--dataset", &ds, "--days", "1", "--mnl", "4", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(body["days"], 1);
    assert_eq!(body["windows"].as_array().unwrap().len(), 1);
    let fr = body["mean_fr"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&fr));
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = vmr(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn gen_then_inspect() {
    let ds = gen_dataset("inspect.json");
    let out = vmr(&["inspect", "--dataset", &ds, "--index", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FR (16-core)"));
    assert!(text.contains("CPU utilization"));
}

#[test]
fn solve_ha_and_swap_report_fr() {
    let ds = gen_dataset("solve.json");
    for method in ["ha", "swap"] {
        let out = vmr(&["solve", "--dataset", &ds, "--method", method, "--mnl", "4"]);
        assert!(out.status.success(), "{method}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("FR"), "{method} output: {text}");
    }
}

#[test]
fn solve_json_output_is_parseable() {
    let ds = gen_dataset("solve_json.json");
    let out = vmr(&["solve", "--dataset", &ds, "--method", "ha", "--mnl", "3", "--json"]);
    assert!(out.status.success());
    let body: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON plan output");
    assert_eq!(body["method"], "ha");
    assert!(body["plan"].is_array());
    assert!(body["final_fr"].as_f64().unwrap() <= body["initial_fr"].as_f64().unwrap() + 1e-12);
}

#[test]
fn cost_prices_a_plan() {
    let ds = gen_dataset("cost.json");
    let out = vmr(&["cost", "--dataset", &ds, "--mnl", "4", "--streams", "2", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let makespan = body["makespan_s"].as_f64().unwrap();
    let sequential = body["sequential_s"].as_f64().unwrap();
    assert!(makespan <= sequential + 1e-9);
    assert!(body["transferred_gib"].as_f64().unwrap() >= 0.0);
}

#[test]
fn interfere_reports_score() {
    let ds = gen_dataset("interfere.json");
    let out = vmr(&[
        "interfere",
        "--dataset",
        &ds,
        "--noisy-frac",
        "0.4",
        "--threshold",
        "0.3",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(body["cluster_score"].as_f64().unwrap() >= 0.0);
    assert!(body["noisiest"].is_array());
}

#[test]
fn missing_dataset_flag_is_an_error() {
    let out = vmr(&["inspect"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("dataset"));
}
