//! End-to-end tests of the `vmr` operator CLI: every subcommand is
//! exercised against a freshly generated dataset in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vmr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vmr")).args(args).output().expect("spawn vmr")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vmr-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn gen_dataset(name: &str) -> String {
    let path = tmp(name);
    let out = vmr(&[
        "gen",
        "--preset",
        "tiny",
        "--count",
        "3",
        "--seed",
        "5",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    path.to_str().unwrap().to_string()
}

#[test]
fn help_lists_all_subcommands() {
    let out = vmr(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["gen", "inspect", "train", "eval", "solve", "cost", "interfere", "simulate"] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn simulate_runs_the_daily_loop() {
    let ds = gen_dataset("simulate.json");
    let out = vmr(&["simulate", "--dataset", &ds, "--days", "1", "--mnl", "4", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(body["days"], 1);
    assert_eq!(body["windows"].as_array().unwrap().len(), 1);
    let fr = body["mean_fr"].as_f64().unwrap();
    assert!((0.0..=1.0).contains(&fr));
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = vmr(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn gen_then_inspect() {
    let ds = gen_dataset("inspect.json");
    let out = vmr(&["inspect", "--dataset", &ds, "--index", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FR (16-core)"));
    assert!(text.contains("CPU utilization"));
}

#[test]
fn solve_ha_and_swap_report_fr() {
    let ds = gen_dataset("solve.json");
    for method in ["ha", "swap"] {
        let out = vmr(&["solve", "--dataset", &ds, "--method", method, "--mnl", "4"]);
        assert!(out.status.success(), "{method}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("FR"), "{method} output: {text}");
    }
}

#[test]
fn solve_json_output_is_parseable() {
    let ds = gen_dataset("solve_json.json");
    let out = vmr(&["solve", "--dataset", &ds, "--method", "ha", "--mnl", "3", "--json"]);
    assert!(out.status.success());
    let body: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON plan output");
    assert_eq!(body["method"], "ha");
    assert!(body["plan"].is_array());
    assert!(body["final_fr"].as_f64().unwrap() <= body["initial_fr"].as_f64().unwrap() + 1e-12);
}

#[test]
fn cost_prices_a_plan() {
    let ds = gen_dataset("cost.json");
    let out = vmr(&["cost", "--dataset", &ds, "--mnl", "4", "--streams", "2", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let makespan = body["makespan_s"].as_f64().unwrap();
    let sequential = body["sequential_s"].as_f64().unwrap();
    assert!(makespan <= sequential + 1e-9);
    assert!(body["transferred_gib"].as_f64().unwrap() >= 0.0);
}

#[test]
fn interfere_reports_score() {
    let ds = gen_dataset("interfere.json");
    let out = vmr(&[
        "interfere",
        "--dataset",
        &ds,
        "--noisy-frac",
        "0.4",
        "--threshold",
        "0.3",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(body["cluster_score"].as_f64().unwrap() >= 0.0);
    assert!(body["noisiest"].is_array());
}

#[test]
fn missing_dataset_flag_is_an_error() {
    let out = vmr(&["inspect"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("dataset"));
}
