//! Experiment report emission: aligned stdout tables plus JSON files
//! under `results/` for downstream plotting.

use std::fs;
use std::path::PathBuf;

use serde_json::{json, Map, Value};

/// A tabular experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    meta: Map<String, Value>,
}

impl Report {
    /// Starts a report. `name` becomes the JSON filename (`results/<name>.json`).
    pub fn new(name: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            meta: Map::new(),
        }
    }

    /// Attaches a metadata key (mode, seed, cluster size, ...).
    pub fn meta(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.meta.insert(key.to_string(), value.into());
        self
    }

    /// Appends one row; the length must match the column count.
    pub fn row(&mut self, values: Vec<Value>) -> &mut Self {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push(values);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let fmt_cell = |v: &Value| -> String {
            match v {
                Value::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if f.fract() == 0.0 && f.abs() < 1e15 {
                            format!("{f}")
                        } else {
                            format!("{f:.4}")
                        }
                    } else {
                        n.to_string()
                    }
                }
                Value::String(s) => s.clone(),
                other => other.to_string(),
            }
        };
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(fmt_cell).collect()).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        for (k, v) in &self.meta {
            out.push_str(&format!("#   {k} = {v}\n"));
        }
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table and writes `results/<name>.json` relative to the
    /// workspace root (falls back to CWD when the root is not found).
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{}.json", self.name));
        let payload = json!({
            "title": self.title,
            "meta": self.meta,
            "columns": self.columns,
            "rows": self.rows,
        });
        match serde_json::to_string_pretty(&payload) {
            Ok(body) => {
                if let Err(e) = fs::write(&path, body) {
                    eprintln!("warning: cannot write {path:?}: {e}");
                } else {
                    eprintln!("(wrote {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize report: {e}"),
        }
    }
}

/// Locates `<workspace>/results`, walking up from the current directory
/// until a `Cargo.toml` with `[workspace]` is found. The `VMR_RESULTS_DIR`
/// environment variable overrides the location (used by the smoke-test
/// harness so CI runs never clobber real experiment outputs).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("VMR_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..6 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return dir.join("results");
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "Test table", &["mnl", "fr"]);
        r.row(vec![10.into(), 0.512345.into()]);
        r.row(vec![100.into(), 0.25.into()]);
        let text = r.render();
        assert!(text.contains("Test table"));
        assert!(text.contains("0.5123"));
        assert!(text.contains("100"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and data rows align right.
        assert!(lines.iter().any(|l| l.trim_start().starts_with("mnl")));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("t", "T", &["a", "b"]);
        r.row(vec![1.into()]);
    }

    #[test]
    fn meta_is_rendered() {
        let mut r = Report::new("t", "T", &["a"]);
        r.meta("mode", "smoke");
        r.row(vec![1.into()]);
        assert!(r.render().contains("mode = \"smoke\""));
    }
}
