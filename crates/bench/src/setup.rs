//! Shared experiment setup: run-mode dataset scaling and agent training
//! with on-disk checkpoint caching (so evaluation-flavored experiments can
//! reuse one trained policy instead of retraining).

use std::fs;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vmr_core::agent::Vmr2lAgent;
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::model::Vmr2lModel;
use vmr_core::train::{TrainConfig, TrainStats, Trainer};
use vmr_nn::checkpoint::Checkpoint;
use vmr_sim::cluster::ClusterState;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::error::{SimError, SimResult};

use crate::cli::RunMode;
use crate::report::results_dir;

/// Scales a paper dataset configuration to the run mode: PM count and
/// churn shrink together so utilization and fragmentation stay realistic.
pub fn scaled_config(base: &ClusterConfig, mode: RunMode) -> ClusterConfig {
    let factor = mode.pm_scale();
    let mut cfg = base.scaled_pms(factor);
    cfg.churn_cycles = ((base.churn_cycles as f64 * factor).round() as usize).max(20);
    cfg
}

/// What to train.
#[derive(Debug, Clone)]
pub struct AgentSpec {
    /// Feature extractor variant.
    pub extractor: ExtractorKind,
    /// Action-generation mode.
    pub mode: ActionMode,
    /// Architecture.
    pub model: ModelConfig,
    /// Training configuration.
    pub train: TrainConfig,
    /// Decima-style PM subsetting (None for VMR2L).
    pub pm_subset: Option<usize>,
}

impl AgentSpec {
    /// The standard VMR2L agent spec for a run mode.
    pub fn vmr2l(mode: RunMode, seed: u64) -> Self {
        let mut train = TrainConfig {
            updates: mode.train_updates(),
            seed,
            eval_every: 0,
            ..Default::default()
        };
        if mode == RunMode::Smoke {
            // Keep CI smoke runs fast, especially in debug builds.
            train.ppo.rollout_steps = 16;
            train.ppo.minibatch_size = 8;
            train.ppo.epochs = 1;
        }
        AgentSpec {
            extractor: ExtractorKind::SparseAttention,
            mode: ActionMode::TwoStage,
            model: ModelConfig::default(),
            train,
            pm_subset: None,
        }
    }

    /// A stable cache key for this spec (architecture + training recipe).
    pub fn cache_key(&self, dataset_name: &str) -> String {
        format!(
            "{:?}-{:?}-d{}h{}b{}ff{}-u{}-mnl{}-s{}-{}",
            self.extractor,
            self.mode,
            self.model.d_model,
            self.model.heads,
            self.model.blocks,
            self.model.d_ff,
            self.train.updates,
            self.train.mnl,
            self.train.seed,
            dataset_name
        )
        .replace([' ', '{', '}', ':'], "")
    }
}

/// Builds the (untrained) agent described by a spec.
pub fn build_agent(spec: &AgentSpec) -> Vmr2lAgent<Vmr2lModel> {
    let mut rng = StdRng::seed_from_u64(spec.train.seed ^ 0xa9e27);
    let model = Vmr2lModel::new(spec.model, spec.extractor, &mut rng);
    let mut agent = Vmr2lAgent::new(model, spec.mode);
    if let Some(k) = spec.pm_subset {
        agent = agent.with_pm_subset(k);
    }
    agent
}

/// Trains an agent per the spec, with optional checkpoint caching.
///
/// When `cache_name` is set and `target/vmr-agent-cache/<key>.json`
/// exists, the checkpoint is restored instead of retraining (and the
/// returned history is empty). On a cache miss the trained weights are
/// saved for the next binary.
pub fn train_agent(
    spec: &AgentSpec,
    train_set: Vec<ClusterState>,
    eval_set: Vec<ClusterState>,
    cache_name: Option<&str>,
) -> SimResult<(Vmr2lAgent<Vmr2lModel>, Vec<TrainStats>)> {
    let cache_path = cache_name.map(|n| cache_dir().join(format!("{}.json", spec.cache_key(n))));
    if let Some(path) = &cache_path {
        if path.exists() {
            if let Ok(ckpt) = Checkpoint::load(path) {
                let mut agent = build_agent(spec);
                if ckpt.restore(&mut agent.policy).is_ok() {
                    eprintln!("(restored cached agent {})", path.display());
                    return Ok((agent, Vec::new()));
                }
            }
        }
    }
    let agent = build_agent(spec);
    let mut trainer = Trainer::new(agent, train_set, eval_set, spec.train)?;
    let history = trainer.train(|s| {
        eprintln!(
            "  update {:>3}: reward/step {:+.4}  loss {:+.4}  kl {:.4}",
            s.update, s.mean_reward, s.ppo.loss, s.ppo.approx_kl
        );
    })?;
    let agent = trainer.into_agent();
    if let Some(path) = &cache_path {
        if fs::create_dir_all(cache_dir()).is_ok() {
            let ckpt = Checkpoint::capture(&agent.policy);
            if ckpt.save(path).is_err() {
                eprintln!("warning: could not cache agent at {}", path.display());
            }
        }
    }
    Ok((agent, history))
}

/// `<workspace>/target/vmr-agent-cache`.
pub fn cache_dir() -> PathBuf {
    results_dir()
        .parent()
        .map(|p| p.join("target").join("vmr-agent-cache"))
        .unwrap_or_else(|| PathBuf::from("target/vmr-agent-cache"))
}

/// The cluster used for RL *training* experiments at each mode (see the
/// DESIGN.md substitution table: CPU-budget training uses scaled-down
/// clusters; `--full` uses the paper's Medium shape).
pub fn train_cluster_config(mode: RunMode) -> ClusterConfig {
    match mode {
        RunMode::Smoke => ClusterConfig::tiny(),
        RunMode::Default => ClusterConfig::small_train(),
        RunMode::Full => ClusterConfig::medium(),
    }
}

/// Wall-clock budget handed to exact solvers per instance.
pub fn solver_budget(mode: RunMode) -> std::time::Duration {
    match mode {
        RunMode::Smoke => std::time::Duration::from_millis(200),
        RunMode::Default => std::time::Duration::from_secs(3),
        RunMode::Full => std::time::Duration::from_secs(30),
    }
}

/// Synthesizes hard anti-affinity constraints targeting a given affinity
/// ratio (the paper's Table 2 levels): random conflict groups are added
/// until the average conflict fraction reaches `target_ratio`.
pub fn synthesize_affinity(
    state: &ClusterState,
    target_ratio: f64,
    seed: u64,
) -> vmr_sim::constraints::ConstraintSet {
    use rand::Rng;
    use vmr_sim::types::VmId;
    let m = state.num_vms();
    let mut cs = vmr_sim::constraints::ConstraintSet::new(m);
    if m < 2 || target_ratio <= 0.0 {
        return cs;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Group size grows with the target ratio so extreme levels (38.3%)
    // are reachable without quadratic group counts.
    let group = ((target_ratio * m as f64).sqrt().ceil() as usize).clamp(2, m);
    let mut guard = 0;
    while cs.affinity_ratio() < target_ratio && guard < 10_000 {
        let members: Vec<VmId> = (0..group).map(|_| VmId(rng.gen_range(0..m) as u32)).collect();
        let _ = cs.add_conflict_group(&members);
        guard += 1;
    }
    cs
}

/// Convenience: generate `count` mappings from a scaled config.
pub fn mappings(cfg: &ClusterConfig, count: usize, seed: u64) -> SimResult<Vec<ClusterState>> {
    if count == 0 {
        return Err(SimError::InvalidMapping("need at least one mapping".into()));
    }
    (0..count).map(|i| vmr_sim::dataset::generate_mapping(cfg, seed + i as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_shrinks() {
        let base = ClusterConfig::medium();
        let s = scaled_config(&base, RunMode::Smoke);
        assert!(s.num_pms() < base.num_pms());
        assert!(s.churn_cycles >= 20);
        let f = scaled_config(&base, RunMode::Full);
        assert_eq!(f.num_pms(), base.num_pms());
    }

    #[test]
    fn cache_key_distinguishes_specs() {
        let a = AgentSpec::vmr2l(RunMode::Smoke, 0);
        let mut b = AgentSpec::vmr2l(RunMode::Smoke, 0);
        b.extractor = ExtractorKind::VanillaAttention;
        assert_ne!(a.cache_key("x"), b.cache_key("x"));
        assert_ne!(a.cache_key("x"), a.cache_key("y"));
    }

    #[test]
    fn build_agent_honors_subset() {
        let mut spec = AgentSpec::vmr2l(RunMode::Smoke, 1);
        spec.pm_subset = Some(4);
        let a = build_agent(&spec);
        assert_eq!(a.pm_subset_size, Some(4));
    }

    #[test]
    fn mappings_rejects_zero() {
        assert!(mappings(&ClusterConfig::tiny(), 0, 0).is_err());
    }
}
