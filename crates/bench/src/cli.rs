//! Minimal argument parsing shared by all experiment binaries.

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// CI scale: tiny clusters, minimal training. Used by the integration
    /// tests so every experiment binary stays exercised.
    Smoke,
    /// Laptop scale (default): ~25% of the paper's cluster sizes.
    Default,
    /// Paper-scale cluster sizes.
    Full,
}

impl RunMode {
    /// PM-count scale factor relative to the paper's datasets.
    pub fn pm_scale(self) -> f64 {
        match self {
            RunMode::Smoke => 0.04,
            RunMode::Default => 0.25,
            RunMode::Full => 1.0,
        }
    }

    /// Default PPO update count for experiments that train.
    pub fn train_updates(self) -> usize {
        match self {
            RunMode::Smoke => 2,
            RunMode::Default => 30,
            RunMode::Full => 150,
        }
    }

    /// Number of evaluation mappings.
    pub fn eval_mappings(self) -> usize {
        match self {
            RunMode::Smoke => 2,
            RunMode::Default => 5,
            RunMode::Full => 20,
        }
    }
}

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Run mode.
    pub mode: RunMode,
    /// Base RNG seed.
    pub seed: u64,
    /// Override for training updates (`--updates N`).
    pub updates: Option<usize>,
    /// Override for MNL sweeps (`--mnl N`).
    pub mnl: Option<usize>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { mode: RunMode::Default, seed: 0, updates: None, mnl: None }
    }
}

/// Parses `std::env::args()`. Unknown flags abort with a usage message.
pub fn parse_args() -> BenchArgs {
    parse_from(std::env::args().skip(1))
}

/// Parses an explicit iterator (testable).
pub fn parse_from(args: impl Iterator<Item = String>) -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => out.mode = RunMode::Smoke,
            "--full" => out.mode = RunMode::Full,
            "--seed" => out.seed = next_num(&mut it, "--seed") as u64,
            "--updates" => out.updates = Some(next_num(&mut it, "--updates") as usize),
            "--mnl" => out.mnl = Some(next_num(&mut it, "--mnl") as usize),
            "--help" | "-h" => {
                eprintln!("usage: <bin> [--smoke|--full] [--seed N] [--updates N] [--mnl N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    out
}

fn next_num(it: &mut std::iter::Peekable<impl Iterator<Item = String>>, flag: &str) -> i64 {
    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a numeric argument");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> BenchArgs {
        parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.mode, RunMode::Default);
        assert_eq!(a.seed, 0);
        assert!(a.updates.is_none());
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--smoke", "--seed", "7", "--updates", "3", "--mnl", "25"]);
        assert_eq!(a.mode, RunMode::Smoke);
        assert_eq!(a.seed, 7);
        assert_eq!(a.updates, Some(3));
        assert_eq!(a.mnl, Some(25));
    }

    #[test]
    fn scales_ordered() {
        assert!(RunMode::Smoke.pm_scale() < RunMode::Default.pm_scale());
        assert!(RunMode::Default.pm_scale() < RunMode::Full.pm_scale());
    }
}
