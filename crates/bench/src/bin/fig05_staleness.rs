//! Fig. 5 — achieved FR as a function of solver inference time.
//!
//! While a plan is being computed the cluster keeps churning; stale
//! actions (VM exited / destination full) are dropped at deploy time.
//! The paper finds an elbow around five seconds; we reproduce the shape by
//! replaying one good plan after increasing delays.

use serde_json::json;
use vmr_bench::{parse_args, scaled_config, solver_budget, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{generate_mapping, ClusterConfig, VmMix};
use vmr_sim::dynamics::staleness_experiment;
use vmr_sim::objective::Objective;
use vmr_sim::trace::DiurnalModel;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let state = generate_mapping(&cfg, args.seed).expect("mapping generation");
    let cs = ConstraintSet::new(state.num_vms());
    let obj = Objective::default();
    let mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 3,
        _ => 20,
    });

    // Compute one good plan against the snapshot.
    let plan = branch_and_bound(
        &state,
        &cs,
        obj,
        mnl,
        &SolverConfig {
            time_limit: solver_budget(args.mode) * 4,
            beam_width: Some(48),
            ..Default::default()
        },
    );

    // Churn model scaled to the cluster size so the elbow is visible.
    let model = DiurnalModel {
        base_rate: (state.num_vms() as f64 * 0.01).max(1.0),
        ..DiurnalModel::default()
    };
    let mix = VmMix::standard();
    let delays: &[u32] = match args.mode {
        RunMode::Smoke => &[0, 5, 60],
        _ => &[0, 1, 2, 5, 10, 30, 60, 120, 240],
    };

    let mut report = Report::new(
        "fig05_staleness",
        "Fig. 5: effect of inference time on achieved FR (plan staleness)",
        &["delay_min", "achieved_fr", "applied", "dropped"],
    );
    report.meta("planned_fr", plan.objective);
    report.meta("initial_fr", obj.value(&state));
    report.meta("plan_len", plan.plan.len());
    for &d in delays {
        // Average over several churn seeds for a stable curve.
        let seeds = if args.mode == RunMode::Smoke { 2 } else { 8 };
        let mut fr = 0.0;
        let mut applied = 0usize;
        let mut dropped = 0usize;
        for s in 0..seeds {
            let out =
                staleness_experiment(&state, &plan.plan, d, &model, 0.004, &mix, args.seed + s);
            fr += out.achieved_fr;
            applied += out.applied;
            dropped += out.dropped;
        }
        report.row(vec![
            json!(d),
            json!(fr / seeds as f64),
            json!(applied as f64 / seeds as f64),
            json!(dropped as f64 / seeds as f64),
        ]);
    }
    report.emit();
}
