//! Fig. 4 — fragment rate and inference time of MIP vs HA across MNLs.
//!
//! The motivation experiment (§2.2): the exact solver (branch-and-bound,
//! the Gurobi stand-in) achieves a lower FR than the greedy heuristic and
//! the gap widens with MNL, but its runtime explodes, violating the
//! five-second limit; HA is fast but plateaus around where no single
//! migration improves FR.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{parse_args, scaled_config, solver_budget, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let state = generate_mapping(&cfg, args.seed).expect("mapping generation");
    let cs = ConstraintSet::new(state.num_vms());
    let obj = Objective::default();
    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 4],
        RunMode::Default => vec![5, 10, 15, 20, 25],
        RunMode::Full => vec![10, 20, 30, 40, 50],
    };

    let mut report = Report::new(
        "fig04_mip_vs_ha",
        "Fig. 4: FR and inference time at different MNLs (MIP vs HA)",
        &["mnl", "initial_fr", "ha_fr", "ha_time_s", "mip_fr", "mip_time_s", "mip_optimal"],
    );
    report.meta("pms", state.num_pms());
    report.meta("vms", state.num_vms());
    report.meta("mode", format!("{:?}", args.mode));
    let initial = obj.value(&state);
    for mnl in mnls {
        let ha = ha_solve(&state, &cs, obj, mnl);
        let solver_cfg = SolverConfig {
            // The MIP line is allowed to overrun the 5 s limit, exactly as
            // in the paper; budget grows with MNL to show the blow-up.
            time_limit: solver_budget(args.mode) * (mnl as u32),
            beam_width: Some(48),
            ..Default::default()
        };
        let mip = branch_and_bound(&state, &cs, obj, mnl, &solver_cfg);
        report.row(vec![
            json!(mnl),
            json!(initial),
            json!(ha.objective),
            json!(ha.elapsed.as_secs_f64()),
            json!(mip.objective),
            json!(mip.elapsed.as_secs_f64()),
            json!(mip.proved_optimal),
        ]);
    }
    report.emit();
}
