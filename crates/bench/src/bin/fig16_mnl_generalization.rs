//! Fig. 16 — MNL generalization (§5.6.2): one VMR2L agent trained at the
//! largest MNL, evaluated across smaller MNLs, against per-MNL agents
//! (VMR2L_SEP). The paper reports an average gap of ~1.16%.

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report, RunMode,
};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 6, args.seed).expect("train");
    let eval_states =
        mappings(&cfg, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval");
    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 3],
        _ => vec![2, 4, 6, 8, 10, 12],
    };
    let max_mnl = *mnls.last().expect("non-empty");

    // Single agent trained at the largest MNL.
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.mnl = max_mnl;
    eprintln!("training shared agent at MNL {max_mnl}...");
    let (shared, _) = train_agent(
        &spec,
        train_states.clone(),
        vec![],
        Some(&format!("{}_mnl{max_mnl}", cfg.name)),
    )
    .expect("train");

    let mut report = Report::new(
        "fig16_mnl_generalization",
        "Fig. 16: single agent (trained at max MNL) vs per-MNL agents",
        &["mnl", "vmr2l_fr", "vmr2l_sep_fr", "gap_pct"],
    );
    report.meta("max_mnl", max_mnl);
    let rs = |t: usize| RiskSeekingConfig {
        trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
        seed: args.seed + t as u64,
        ..Default::default()
    };
    for &mnl in &mnls {
        // Separate agent trained at exactly this MNL (fewer updates each).
        let mut sep_spec = spec.clone();
        sep_spec.train.mnl = mnl;
        sep_spec.train.updates = (spec.train.updates / 2).max(1);
        eprintln!("training SEP agent at MNL {mnl}...");
        let (sep, _) = train_agent(
            &sep_spec,
            train_states.clone(),
            vec![],
            Some(&format!("{}_sep{mnl}", cfg.name)),
        )
        .expect("train sep");
        let mut fr_shared = 0.0;
        let mut fr_sep = 0.0;
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            fr_shared +=
                risk_seeking_eval(&shared, state, &cs, Objective::default(), mnl, &rs(mnl))
                    .expect("eval")
                    .best_objective;
            fr_sep += risk_seeking_eval(&sep, state, &cs, Objective::default(), mnl, &rs(mnl))
                .expect("eval")
                .best_objective;
        }
        let n = eval_states.len() as f64;
        let (a, b) = (fr_shared / n, fr_sep / n);
        report.row(vec![
            json!(mnl),
            json!(a),
            json!(b),
            json!(((a - b) / b.max(1e-9) * 1e4).round() / 100.0),
        ]);
        eprintln!("mnl {mnl} done");
    }
    report.emit();
}
