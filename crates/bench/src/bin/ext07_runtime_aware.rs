//! Ext. 7 — runtime-aware rescheduling (§8 future work).
//!
//! "Incorporating the estimated remaining runtime of each VM … could
//! further enhance performance": migrating a VM that exits soon wastes
//! budget and bandwidth, and its departure reopens the hole anyway. This
//! experiment compares, on the same mappings and lifetime draws:
//!
//! * **oblivious** — HA plans over all VMs; short-lived VMs may be
//!   migrated and then exit.
//! * **runtime_aware** — VMs expected to exit within the payback horizon
//!   are pinned (excluded from migration), so the whole budget goes to
//!   survivors.
//!
//! Reported FR is measured *after* the short-lived VMs have exited —
//! the state an operator actually lives with.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::dynamics::DynamicCluster;
use vmr_sim::lifetime::LifetimeModel;
use vmr_sim::objective::Objective;
use vmr_sim::types::VmId;

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let states = mappings(&cfg, args.mode.eval_mappings(), args.seed).expect("mappings");
    let obj = Objective::default();
    let mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 4,
        _ => 25,
    });
    // Payback horizon: a migration must buy at least this much placement
    // lifetime to be worth its bandwidth. Median VM lifetime is 2 h.
    let horizon_secs = 1800.0;
    let median_secs = 7200.0;

    let mut report = Report::new(
        "ext07_runtime_aware",
        "Ext. 7: runtime-aware rescheduling (pin VMs about to exit)",
        &["variant", "fr_after_exits", "migrations", "wasted_migrations", "exiting_vms"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("mnl", mnl);
    report.meta("horizon_secs", horizon_secs);
    report.meta("median_lifetime_secs", median_secs);

    let mut acc_obl = (0.0, 0.0, 0.0);
    let mut acc_aware = (0.0, 0.0, 0.0);
    let mut exiting_total = 0.0;
    for (i, state) in states.iter().enumerate() {
        let lifetimes = LifetimeModel::generate(state, median_secs, args.seed + 31 + i as u64);
        let exiting: Vec<VmId> = (0..state.num_vms())
            .map(|k| VmId(k as u32))
            .filter(|&v| lifetimes.remaining(v) <= horizon_secs)
            .collect();
        exiting_total += exiting.len() as f64;

        // FR after plan execution and then the exits, plus how many plan
        // steps were spent on VMs that exited.
        let run = |plan: &[vmr_sim::env::Action]| -> (f64, f64) {
            let mut s = state.clone();
            for a in plan {
                s.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
            }
            let mut d = DynamicCluster::from_state(&s);
            for &v in &exiting {
                d.exit(v).expect("exit");
            }
            let wasted = plan.iter().filter(|a| exiting.contains(&a.vm)).count();
            (d.fragment_rate(obj.frag_cores()), wasted as f64)
        };

        let oblivious = ha_solve(state, &ConstraintSet::new(state.num_vms()), obj, mnl);
        let (fr_o, wasted_o) = run(&oblivious.plan);
        acc_obl.0 += fr_o;
        acc_obl.1 += oblivious.plan.len() as f64;
        acc_obl.2 += wasted_o;

        let mut cs = ConstraintSet::new(state.num_vms());
        for &v in &exiting {
            cs.pin(v).expect("pin");
        }
        let aware = ha_solve(state, &cs, obj, mnl);
        let (fr_a, wasted_a) = run(&aware.plan);
        acc_aware.0 += fr_a;
        acc_aware.1 += aware.plan.len() as f64;
        acc_aware.2 += wasted_a;
        eprintln!("mapping {i} done ({} exiting)", exiting.len());
    }
    let n = states.len() as f64;
    for (label, acc) in [("oblivious", acc_obl), ("runtime_aware", acc_aware)] {
        report.row(vec![
            json!(label),
            json!(acc.0 / n),
            json!(acc.1 / n),
            json!(acc.2 / n),
            json!(exiting_total / n),
        ]);
    }
    report.emit();
}
