//! Fig. 20 — convergence speed on different cluster sizes (§5.7): the same
//! agent spec trained on the Medium-style and Large-style clusters, test
//! FR per update. The paper finds the larger cluster is not inherently
//! harder once the easy early gains are excluded.

use serde_json::json;
use vmr_bench::{mappings, parse_args, scaled_config, train_cluster_config, AgentSpec, Report};
use vmr_core::train::Trainer;
use vmr_sim::dataset::ClusterConfig;

fn main() {
    let args = parse_args();
    let panels = [
        ("medium", train_cluster_config(args.mode)),
        ("large", scaled_config(&ClusterConfig::large(), args.mode)),
    ];
    let mut report = Report::new(
        "fig20_convergence",
        "Fig. 20: convergence on Medium vs Large clusters (test FR per update)",
        &["update", "medium_fr", "large_fr"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    let mut curves: Vec<Vec<(usize, f64)>> = Vec::new();
    for (name, cfg) in panels {
        eprintln!("training on {name} ({} PMs)...", cfg.num_pms());
        let train_states = mappings(&cfg, 6, args.seed).expect("train");
        let eval_states = mappings(&cfg, 2, args.seed + 500).expect("eval");
        let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
        if let Some(u) = args.updates {
            spec.train.updates = u;
        }
        spec.train.eval_every = 2;
        spec.train.eval_episodes = 2;
        let agent = vmr_bench::build_agent(&spec);
        let mut tr = Trainer::new(agent, train_states, eval_states, spec.train).expect("trainer");
        let hist = tr.train(|_| {}).expect("train");
        curves.push(
            hist.iter()
                .filter(|h| !h.eval_objective.is_nan())
                .map(|h| (h.update, h.eval_objective))
                .collect(),
        );
    }
    let points: Vec<usize> = curves[0].iter().map(|p| p.0).collect();
    for (i, u) in points.iter().enumerate() {
        let get = |c: usize| curves[c].get(i).map(|p| p.1).unwrap_or(f64::NAN);
        report.row(vec![json!(u), json!(get(0)), json!(get(1))]);
    }
    report.emit();
}
