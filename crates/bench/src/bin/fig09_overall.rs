//! Fig. 9 — overall comparison: FR (left) and inference time (right) of
//! all eight methods across MNLs.
//!
//! Methods: HA, MIP (branch-and-bound stand-in), POP, α-VBPP, MCTS,
//! Decima-like, NeuPlan-like, and VMR2L with risk-seeking evaluation.
//! The VMR2L and Decima agents are PPO-trained (checkpoint-cached across
//! harness invocations).

use std::time::Instant;

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_baselines::mcts::{mcts_solve, MctsConfig};
use vmr_baselines::neuplan::{neuplan_solve, NeuPlanConfig};
use vmr_baselines::vbpp::vbpp_solve;
use vmr_bench::{
    mappings, parse_args, solver_budget, train_agent, train_cluster_config, AgentSpec, Report,
    RunMode,
};
use vmr_core::config::ExtractorKind;
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let obj = Objective::default();
    let eval_states =
        mappings(&cfg, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval mappings");
    let train_states = mappings(&cfg, 8, args.seed).expect("train mappings");

    // Train VMR2L and the Decima baseline (cached).
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let train_mnl = spec.train.mnl;
    eprintln!("training VMR2L...");
    let (vmr2l, _) =
        train_agent(&spec, train_states.clone(), vec![], Some(&cfg.name)).expect("train vmr2l");
    let mut dspec = spec.clone();
    dspec.extractor = ExtractorKind::VanillaAttention;
    dspec.pm_subset = Some(8);
    eprintln!("training Decima baseline...");
    let (decima, _) =
        train_agent(&dspec, train_states, vec![], Some(&cfg.name)).expect("train decima");

    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 3],
        RunMode::Default => vec![2, 4, 8, 12],
        RunMode::Full => vec![10, 20, 30, 40, 50],
    };
    let _ = train_mnl;

    let mut report = Report::new(
        "fig09_overall",
        "Fig. 9: FR and inference time, all methods, across MNLs",
        &["mnl", "method", "fr", "time_s"],
    );
    report.meta("pms", eval_states[0].num_pms());
    report.meta("vms", eval_states[0].num_vms());
    report.meta("initial_fr", avg(eval_states.iter().map(|s| obj.value(s))));
    report.meta("mode", format!("{:?}", args.mode));

    for &mnl in &mnls {
        let mut acc: Vec<(&str, f64, f64)> = Vec::new();
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            // HA
            let r = ha_solve(state, &cs, obj, mnl);
            push(&mut acc, "HA", r.objective, r.elapsed.as_secs_f64());
            // MIP (budget grows with MNL; allowed to exceed 5 s)
            let t0 = Instant::now();
            let r = branch_and_bound(
                state,
                &cs,
                obj,
                mnl,
                &SolverConfig {
                    time_limit: solver_budget(args.mode) * mnl as u32,
                    beam_width: Some(48),
                    ..Default::default()
                },
            );
            push(&mut acc, "MIP", r.objective, t0.elapsed().as_secs_f64());
            // POP under the five-second-style budget
            let r = pop_solve(
                state,
                &cs,
                obj,
                mnl,
                &PopConfig {
                    partitions: if args.mode == RunMode::Full { 16 } else { 4 },
                    sub: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(24),
                        ..Default::default()
                    },
                    seed: args.seed,
                },
            );
            push(&mut acc, "POP", r.objective, r.elapsed.as_secs_f64());
            // α-VBPP
            let r = vbpp_solve(state, &cs, obj, mnl, (mnl / 5).max(2));
            push(&mut acc, "a-VBPP", r.objective, r.elapsed.as_secs_f64());
            // MCTS
            let r = mcts_solve(
                state,
                &cs,
                obj,
                mnl,
                &MctsConfig {
                    rollouts_per_step: 24,
                    branch_cap: 8,
                    time_limit: solver_budget(args.mode),
                    ..Default::default()
                },
            );
            push(&mut acc, "MCTS", r.objective, r.elapsed.as_secs_f64());
            // Decima (greedy single trajectory)
            let t0 = Instant::now();
            let (fr, _) =
                vmr_core::eval::greedy_eval(&decima, state, &cs, obj, mnl).expect("decima eval");
            push(&mut acc, "Decima", fr, t0.elapsed().as_secs_f64());
            // NeuPlan (VMR2L prefix + solver suffix)
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
            let r = neuplan_solve(
                &vmr2l,
                state,
                &cs,
                obj,
                mnl,
                &NeuPlanConfig {
                    beta: (mnl / 3).max(1),
                    solver: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(16),
                        ..Default::default()
                    },
                },
                &mut rng,
            )
            .expect("neuplan");
            push(&mut acc, "NeuPlan", r.objective, r.elapsed.as_secs_f64());
            // VMR2L with risk-seeking evaluation
            let r = risk_seeking_eval(
                &vmr2l,
                state,
                &cs,
                obj,
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 8 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("vmr2l eval");
            push(&mut acc, "VMR2L", r.best_objective, r.elapsed.as_secs_f64());
        }
        // Average per method over eval states, preserving method order.
        let methods = ["HA", "MIP", "POP", "a-VBPP", "MCTS", "Decima", "NeuPlan", "VMR2L"];
        for m in methods {
            let rows: Vec<&(&str, f64, f64)> = acc.iter().filter(|r| r.0 == m).collect();
            let fr = avg(rows.iter().map(|r| r.1));
            let t = avg(rows.iter().map(|r| r.2));
            report.row(vec![json!(mnl), json!(m), json!(fr), json!(t)]);
        }
        eprintln!("mnl {mnl} done");
    }
    report.emit();
}

fn push(acc: &mut Vec<(&'static str, f64, f64)>, m: &'static str, fr: f64, t: f64) {
    acc.push((m, fr, t));
}

fn avg(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
