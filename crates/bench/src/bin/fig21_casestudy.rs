//! Fig. 21 — case study: per-step migration visualization (§5.8).
//!
//! Replays a trained agent on one mapping and renders, for each step, the
//! NUMA occupancy of the source and destination PMs before and after the
//! migration — the ASCII analogue of the paper's color-bar tool. Shows
//! how the agent sacrifices immediate reward (temporarily creating
//! fragments) for long-term FR.

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report, RunMode,
};
use vmr_core::agent::{DecideOpts, InferCtx};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;
use vmr_sim::types::PmId;

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 6, args.seed).expect("train");
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 8 });
    spec.train.mnl = mnl;
    let (agent, _) =
        train_agent(&spec, train_states.clone(), vec![], Some(&cfg.name)).expect("train");

    let state = mappings(&cfg, 1, args.seed + 4242).expect("case")[0].clone();
    let mut env = ReschedEnv::unconstrained(state, Objective::default(), mnl).expect("env");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
    let mut report = Report::new(
        "fig21_casestudy",
        "Fig. 21: per-step migration details (case study)",
        &["step", "vm", "cpu", "src_pm", "dst_pm", "reward", "fr_after"],
    );
    println!("initial FR = {:.4}\n", env.objective_value());
    let mut step = 0;
    let mut ictx = InferCtx::new();
    while !env.is_done() {
        let Some(d) = agent
            .act(&mut env, &mut ictx, &mut rng, &DecideOpts { greedy: true, ..Default::default() })
            .expect("decide")
        else {
            break;
        };
        let vm = d.action.vm;
        let src = env.state().placement(vm).pm;
        let dst = d.action.pm;
        println!(
            "step {step}: migrate VM{} ({} cores) PM{} -> PM{}",
            vm.0,
            env.state().vm(vm).cpu,
            src.0,
            dst.0
        );
        println!("  before: {}\n          {}", bar(env.state(), src), bar(env.state(), dst));
        let out = match env.step(d.action) {
            Ok(o) => o,
            Err(_) => break,
        };
        println!("  after:  {}\n          {}", bar(env.state(), src), bar(env.state(), dst));
        println!("  reward {:+.4}  FR {:.4}\n", out.reward, out.objective);
        report.row(vec![
            json!(step),
            json!(vm.0),
            json!(env.state().vm(vm).cpu),
            json!(src.0),
            json!(dst.0),
            json!(out.reward),
            json!(out.objective),
        ]);
        step += 1;
    }
    println!("final FR = {:.4}", env.objective_value());
    report.meta("final_fr", env.objective_value());
    report.emit();
}

/// One-line occupancy bar for a PM: per NUMA, `#` = 4 used cores, `.` = 4
/// free cores, with the 16-core fragment size annotated.
fn bar(state: &vmr_sim::cluster::ClusterState, pm: PmId) -> String {
    let p = state.pm(pm);
    let mut s = format!("PM{:<4}", pm.0);
    for (j, n) in p.numas.iter().enumerate() {
        let used = (n.cpu_used as usize).div_ceil(4);
        let free = (n.free_cpu() as usize) / 4;
        s.push_str(&format!(
            " numa{j}[{}{}] frag={:<2}",
            "#".repeat(used),
            ".".repeat(free),
            n.cpu_fragment(16)
        ));
    }
    s
}
