//! Fig. 13 — constraint-handling ablation: Two-Stage vs Penalty vs
//! Full-Mask convergence, on the Medium-style cluster (left panel) and
//! the Multi-Resource cluster (right panel).
//!
//! Expected shape per the paper: Penalty converges slowly to a worse
//! level (the −5 rewards dominate early gradients), Full-Mask fails to
//! converge (M×N action space), Two-Stage converges fastest.

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, scaled_config, train_cluster_config, AgentSpec, Report, RunMode,
};
use vmr_core::config::ActionMode;
use vmr_core::train::Trainer;
use vmr_sim::dataset::ClusterConfig;

fn main() {
    let args = parse_args();
    let datasets: Vec<(&str, ClusterConfig)> = vec![
        ("medium", train_cluster_config(args.mode)),
        (
            "multi_resource",
            match args.mode {
                RunMode::Full => ClusterConfig::multi_resource(),
                // Keep the multi-resource panel affordable off --full.
                _ => scaled_config(&ClusterConfig::multi_resource(), args.mode),
            },
        ),
    ];
    let mut report = Report::new(
        "fig13_constraints",
        "Fig. 13: constraint handling — Two-Stage vs Penalty vs Full-Mask",
        &["dataset", "update", "two_stage_fr", "penalty_fr", "full_mask_fr"],
    );
    report.meta("mode", format!("{:?}", args.mode));

    for (name, cfg) in datasets {
        let train_states = mappings(&cfg, 6, args.seed).expect("train");
        let eval_states = mappings(&cfg, 2, args.seed + 500).expect("eval");
        let mut curves: Vec<Vec<(usize, f64)>> = Vec::new();
        for mode in [ActionMode::TwoStage, ActionMode::Penalty, ActionMode::FullMask] {
            eprintln!("[{name}] training {mode:?}...");
            let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
            if let Some(u) = args.updates {
                spec.train.updates = u;
            }
            spec.mode = mode;
            spec.train.eval_every = 2;
            spec.train.eval_episodes = 2;
            let agent = vmr_bench::build_agent(&spec);
            let mut tr = Trainer::new(agent, train_states.clone(), eval_states.clone(), spec.train)
                .expect("trainer");
            let hist = tr.train(|_| {}).expect("train");
            curves.push(
                hist.iter()
                    .filter(|h| !h.eval_objective.is_nan())
                    .map(|h| (h.update, h.eval_objective))
                    .collect(),
            );
        }
        let points: Vec<usize> = curves[0].iter().map(|p| p.0).collect();
        for (i, u) in points.iter().enumerate() {
            let get = |c: usize| curves[c].get(i).map(|p| p.1).unwrap_or(f64::NAN);
            report.row(vec![json!(name), json!(u), json!(get(0)), json!(get(1)), json!(get(2))]);
        }
    }
    report.emit();
}
