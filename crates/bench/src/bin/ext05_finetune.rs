//! Ext. 5 — adapting a trained agent to a shifted workload (§7).
//!
//! The paper recommends off-the-shelf fine-tuning (top-layer, adapters,
//! LoRA) when deployment drifts from the training distribution. This
//! experiment trains on the Low-workload cluster, then adapts to the
//! High-workload cluster four ways under the same small update budget:
//! zero-shot (no adaptation), top-layer fine-tuning (frozen extractor),
//! full fine-tuning, and training from scratch — reporting greedy FR on
//! held-out High-workload mappings.

use serde_json::json;
use vmr_bench::{
    build_agent, mappings, parse_args, scaled_config, train_agent, AgentSpec, Report, RunMode,
};
use vmr_core::eval::greedy_eval;
use vmr_core::train::Trainer;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let low_cfg = scaled_config(&ClusterConfig::workload_low(), args.mode);
    let high_cfg = scaled_config(&ClusterConfig::workload_high(), args.mode);
    let low_train = mappings(&low_cfg, 8, args.seed).expect("low train");
    let high_train = mappings(&high_cfg, 8, args.seed + 500).expect("high train");
    let high_eval =
        mappings(&high_cfg, args.mode.eval_mappings(), args.seed + 1000).expect("high eval");
    let obj = Objective::default();

    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let adapt_updates = match args.mode {
        RunMode::Smoke => 1,
        RunMode::Default => (spec.train.updates / 3).max(1),
        RunMode::Full => (spec.train.updates / 3).max(1),
    };
    let mnl = args.mnl.unwrap_or(spec.train.mnl);

    // Pretrain on Low.
    let (base_agent, _) =
        train_agent(&spec, low_train, vec![], Some(&low_cfg.name)).expect("pretrain");

    let eval = |agent: &vmr_core::agent::Vmr2lAgent<vmr_core::model::Vmr2lModel>| -> f64 {
        let mut total = 0.0;
        for state in &high_eval {
            let cs = ConstraintSet::new(state.num_vms());
            total += greedy_eval(agent, state, &cs, obj, mnl).expect("eval").0;
        }
        total / high_eval.len() as f64
    };

    let mut report = Report::new(
        "ext05_finetune",
        "Ext. 5: adapting a Low-workload agent to High workloads",
        &["variant", "updates_on_high", "fr_high_eval"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("mnl", mnl);

    // Zero-shot.
    report.row(vec![json!("zero_shot"), json!(0), json!(eval(&base_agent))]);
    eprintln!("zero_shot done");

    // Top-layer fine-tuning: freeze the shared extractor, adapt heads.
    let mut adapt_cfg = spec.train;
    adapt_cfg.updates = adapt_updates;
    let mut top =
        Trainer::new(base_agent.clone(), high_train.clone(), vec![], adapt_cfg).expect("trainer");
    top.freeze_prefixes(&["vm_embed", "pm_embed", "block"]);
    top.train(|_| {}).expect("top-layer finetune");
    let top_agent = top.into_agent();
    report.row(vec![json!("top_layer"), json!(adapt_updates), json!(eval(&top_agent))]);
    eprintln!("top_layer done");

    // Full fine-tuning.
    let mut full =
        Trainer::new(base_agent.clone(), high_train.clone(), vec![], adapt_cfg).expect("trainer");
    full.train(|_| {}).expect("full finetune");
    let full_agent = full.into_agent();
    report.row(vec![json!("full_finetune"), json!(adapt_updates), json!(eval(&full_agent))]);
    eprintln!("full_finetune done");

    // From scratch with the same small budget.
    let fresh = build_agent(&spec);
    let mut scratch = Trainer::new(fresh, high_train, vec![], adapt_cfg).expect("trainer");
    scratch.train(|_| {}).expect("scratch");
    let scratch_agent = scratch.into_agent();
    report.row(vec![json!("from_scratch"), json!(adapt_updates), json!(eval(&scratch_agent))]);
    eprintln!("from_scratch done");

    report.emit();
}
