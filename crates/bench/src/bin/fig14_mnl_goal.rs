//! Fig. 14 — minimize migrations given an FR goal (§5.5.1).
//!
//! The objective flips: reach a target FR with as few migrations as
//! possible (reward −1 per step above the goal, +10 on reaching it,
//! Eq. 10–11). Compared: HA (run until the goal or plateau), the exact
//! solver, and VMR2L trained with the goal-shaped reward.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{
    mappings, parse_args, solver_budget, train_agent, train_cluster_config, AgentSpec, Report,
    RunMode,
};
use vmr_core::eval::greedy_eval;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 6, args.seed).expect("train");
    let eval_states = mappings(&cfg, args.mode.eval_mappings(), args.seed + 1000).expect("eval");
    let max_mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 4,
        _ => 16,
    });
    let initial =
        eval_states.iter().map(|s| s.fragment_rate(16)).sum::<f64>() / eval_states.len() as f64;
    // Sweep goals from just-below-initial downwards (paper: 0.55 → 0.25).
    let goals: Vec<f64> = match args.mode {
        RunMode::Smoke => vec![initial * 0.9, initial * 0.7],
        _ => (1..=6).map(|i| initial * (1.0 - 0.1 * i as f64)).collect(),
    };

    // Train one VMR2L agent with the goal-shaped reward at the median goal.
    let median_goal = goals[goals.len() / 2];
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.objective = Objective::MnlToGoal { fr_goal: median_goal, cores: 16 };
    spec.train.mnl = max_mnl;
    eprintln!("training VMR2L with goal-shaped reward (goal {median_goal:.3})...");
    let (agent, _) = train_agent(&spec, train_states, vec![], Some(&format!("{}_goal", cfg.name)))
        .expect("train");

    let mut report = Report::new(
        "fig14_mnl_goal",
        "Fig. 14: migrations used and FR achieved per FR goal",
        &["fr_goal", "method", "used_mnl", "achieved_fr", "reached"],
    );
    report.meta("initial_fr", initial);
    report.meta("max_mnl", max_mnl);
    for &goal in &goals {
        // HA: run step by step until goal (its plan is monotone).
        let mut used = Vec::new();
        let mut achieved = Vec::new();
        let mut reached = 0usize;
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            let r = ha_solve(state, &cs, Objective::default(), max_mnl);
            // Find the first prefix reaching the goal.
            let mut replay = state.clone();
            let mut steps = r.plan.len();
            let mut fr = r.objective;
            for (i, a) in r.plan.iter().enumerate() {
                replay.migrate(a.vm, a.pm, 16).expect("replay");
                if replay.fragment_rate(16) <= goal {
                    steps = i + 1;
                    fr = replay.fragment_rate(16);
                    break;
                }
            }
            if fr <= goal {
                reached += 1;
            }
            used.push(steps as f64);
            achieved.push(fr);
        }
        emit(&mut report, goal, "HA", &used, &achieved, reached);

        // MIP: branch-and-bound, then truncate at the goal.
        let mut used = Vec::new();
        let mut achieved = Vec::new();
        let mut reached = 0usize;
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            let r = branch_and_bound(
                state,
                &cs,
                Objective::default(),
                max_mnl,
                &SolverConfig {
                    time_limit: solver_budget(args.mode) * 2,
                    beam_width: Some(32),
                    ..Default::default()
                },
            );
            let mut replay = state.clone();
            let mut steps = r.plan.len();
            let mut fr = r.objective;
            for (i, a) in r.plan.iter().enumerate() {
                replay.migrate(a.vm, a.pm, 16).expect("replay");
                if replay.fragment_rate(16) <= goal {
                    steps = i + 1;
                    fr = replay.fragment_rate(16);
                    break;
                }
            }
            if fr <= goal {
                reached += 1;
            }
            used.push(steps as f64);
            achieved.push(fr);
        }
        emit(&mut report, goal, "MIP", &used, &achieved, reached);

        // VMR2L with the goal objective: episodes end when the goal is hit.
        let mut used = Vec::new();
        let mut achieved = Vec::new();
        let mut reached = 0usize;
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            let goal_obj = Objective::MnlToGoal { fr_goal: goal, cores: 16 };
            let (fr, plan) = greedy_eval(&agent, state, &cs, goal_obj, max_mnl).expect("eval");
            if fr <= goal {
                reached += 1;
            }
            used.push(plan.len() as f64);
            achieved.push(fr);
        }
        emit(&mut report, goal, "VMR2L", &used, &achieved, reached);
        eprintln!("goal {goal:.3} done");
    }
    report.emit();
}

fn emit(report: &mut Report, goal: f64, m: &str, used: &[f64], fr: &[f64], reached: usize) {
    let n = used.len().max(1) as f64;
    report.row(vec![
        json!((goal * 1e4).round() / 1e4),
        json!(m),
        json!(used.iter().sum::<f64>() / n),
        json!(fr.iter().sum::<f64>() / n),
        json!(format!("{reached}/{}", used.len())),
    ]);
}
