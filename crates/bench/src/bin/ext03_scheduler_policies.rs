//! Ext. 3 — how the VMS placement policy shapes initial fragmentation.
//!
//! §1 of the paper: production VMS runs best-fit under strict latency,
//! and best-fit under churn is what scatters the fragments VMR later
//! cleans up. This experiment fills the same cluster to the same target
//! utilization under each placement policy, applies identical churn, and
//! reports the resulting 16-core fragment rate — quantifying how much of
//! the problem is created upstream of rescheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use vmr_bench::{parse_args, scaled_config, Report, RunMode};
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::dynamics::DynamicCluster;
use vmr_sim::scheduler::VmsPolicy;

/// Fills a cluster to its target utilization under `policy`, then churns.
fn fill_and_churn(cfg: &ClusterConfig, policy: VmsPolicy, seed: u64) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cluster = DynamicCluster::from_pms(cfg.build_pms());
    let total_cpu: u64 =
        cfg.pm_groups.iter().map(|g| (g.count as u64) * 2 * g.cpu_per_numa as u64).sum();
    let target = (total_cpu as f64 * cfg.target_util) as u64;
    let mut failures = 0;
    while cluster.used_cpu() < target && failures < 64 {
        let flavor = cfg.vm_mix.sample(&mut rng);
        if cluster
            .arrival_with_policy(flavor.cpu, flavor.mem, flavor.numa, policy, &mut rng)
            .is_ok()
        {
            failures = 0;
        } else {
            failures += 1;
        }
    }
    for _ in 0..cfg.churn_cycles {
        if let Some(_exited) = cluster.exit_random(&mut rng) {
            let mut attempts = 0;
            while cluster.used_cpu() < target && attempts < 4 {
                let flavor = cfg.vm_mix.sample(&mut rng);
                let _ = cluster
                    .arrival_with_policy(flavor.cpu, flavor.mem, flavor.numa, policy, &mut rng)
                    .ok();
                attempts += 1;
            }
        }
    }
    (cluster.fragment_rate(16), cluster.alive_count())
}

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let trials = match args.mode {
        RunMode::Smoke => 2,
        RunMode::Default => 8,
        RunMode::Full => 20,
    };
    let mut report = Report::new(
        "ext03_scheduler_policies",
        "Ext. 3: initial FR produced by each VMS placement policy",
        &["policy", "fr_16_mean", "fr_16_min", "fr_16_max", "vms_placed"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("pms", cfg.num_pms());
    report.meta("trials", trials);
    for policy in VmsPolicy::ALL {
        let mut frs = Vec::with_capacity(trials);
        let mut placed = 0.0;
        for t in 0..trials {
            let (fr, alive) = fill_and_churn(&cfg, policy, args.seed + t as u64);
            frs.push(fr);
            placed += alive as f64;
        }
        let mean = frs.iter().sum::<f64>() / frs.len() as f64;
        let min = frs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = frs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        report.row(vec![
            json!(policy.name()),
            json!(mean),
            json!(min),
            json!(max),
            json!(placed / trials as f64),
        ]);
        eprintln!("{} done", policy.name());
    }
    report.emit();
}
