//! Ext. 8 — warm-starting the exact solver with the heuristic (§2).
//!
//! The paper notes that production MIP deployments estimate feasible
//! solutions with heuristics before branch-and-cut. This experiment
//! quantifies that on the in-repo B&B: cold start vs HA-warm-started,
//! under the same wall-clock budgets, reporting FR and nodes expanded.
//! The warm incumbent tightens the admissible bound immediately, so the
//! search should reach equal-or-better FR with fewer nodes — and under
//! tight (five-second-rule) budgets the warm solver should dominate.

use std::time::Duration;

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, branch_and_bound_warmstart, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let states = mappings(&cfg, args.mode.eval_mappings(), args.seed).expect("mappings");
    let obj = Objective::default();
    let mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 4,
        _ => 15,
    });
    let budgets_ms: Vec<u64> = match args.mode {
        RunMode::Smoke => vec![50, 200],
        RunMode::Default => vec![250, 1000, 5000],
        RunMode::Full => vec![1000, 5000, 30000],
    };

    let mut report = Report::new(
        "ext08_warmstart",
        "Ext. 8: cold vs HA-warm-started branch-and-bound",
        &["budget_ms", "fr_ha", "fr_cold", "fr_warm", "nodes_cold", "nodes_warm"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("mnl", mnl);
    for &ms in &budgets_ms {
        let solver_cfg = SolverConfig {
            time_limit: Duration::from_millis(ms),
            beam_width: Some(48),
            ..Default::default()
        };
        let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0);
        for state in &states {
            let cs = ConstraintSet::new(state.num_vms());
            let ha = ha_solve(state, &cs, obj, mnl);
            let cold = branch_and_bound(state, &cs, obj, mnl, &solver_cfg);
            let warm = branch_and_bound_warmstart(state, &cs, obj, mnl, &solver_cfg, &ha.plan);
            acc.0 += ha.objective;
            acc.1 += cold.objective;
            acc.2 += warm.objective;
            acc.3 += cold.nodes_expanded as f64;
            acc.4 += warm.nodes_expanded as f64;
        }
        let n = states.len() as f64;
        report.row(vec![
            json!(ms),
            json!(acc.0 / n),
            json!(acc.1 / n),
            json!(acc.2 / n),
            json!(acc.3 / n),
            json!(acc.4 / n),
        ]);
        eprintln!("budget {ms} ms done");
    }
    report.emit();
}
