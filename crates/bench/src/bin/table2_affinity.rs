//! Table 2 — FR under increasing hard anti-affinity levels.
//!
//! Affinity ratios follow the paper's levels (0 → 38.3%). The two-stage
//! framework absorbs the constraint in the stage-2 mask; the exact solver
//! respects it inside legality checks — at the extreme level the solver's
//! search space collapses and it times out ("OOT" in the paper).

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, solver_budget, synthesize_affinity, train_agent, train_cluster_config,
    AgentSpec, Report, RunMode,
};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 6, args.seed).expect("train");
    let eval_states =
        mappings(&cfg, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval");
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 8 });

    // Paper's Table 2 target ratios per level.
    let levels: Vec<(u32, f64)> = match args.mode {
        RunMode::Smoke => vec![(0, 0.0), (4, 0.065)],
        _ => vec![(0, 0.0), (1, 0.0112), (2, 0.0186), (3, 0.0346), (4, 0.065), (8, 0.383)],
    };

    // Train once with moderate affinity so the policy has seen masks.
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.mnl = mnl;
    let train_cs: Vec<_> = train_states
        .iter()
        .enumerate()
        .map(|(i, s)| synthesize_affinity(s, 0.02, args.seed + i as u64))
        .collect();
    eprintln!("training VMR2L under affinity constraints...");
    let agent = {
        let spec2 = spec.clone();
        let agent = vmr_bench::build_agent(&spec2);
        let mut tr = vmr_core::train::Trainer::with_constraints(
            agent,
            train_states.clone(),
            vec![],
            train_cs,
            spec2.train,
        )
        .expect("trainer");
        tr.train(|_| {}).expect("train");
        tr.into_agent()
    };
    let _ = train_agent; // (cache helper unused here: constraints are bespoke)

    let mut report = Report::new(
        "table2_affinity",
        "Table 2: FR under different anti-affinity levels",
        &["level", "target_ratio", "actual_ratio", "vmr2l_fr", "mip_fr", "mip_status"],
    );
    report.meta("mnl", mnl);
    for (level, ratio) in levels {
        let mut vmr_fr = 0.0;
        let mut mip_fr = 0.0;
        let mut actual = 0.0;
        let mut oot = false;
        for (i, state) in eval_states.iter().enumerate() {
            let cs = synthesize_affinity(state, ratio, args.seed + 77 + i as u64);
            actual += cs.affinity_ratio();
            let r = risk_seeking_eval(
                &agent,
                state,
                &cs,
                Objective::default(),
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 8 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("vmr2l eval");
            vmr_fr += r.best_objective;
            let m = branch_and_bound(
                state,
                &cs,
                Objective::default(),
                mnl,
                &SolverConfig {
                    time_limit: solver_budget(args.mode) * 2,
                    beam_width: Some(32),
                    ..Default::default()
                },
            );
            oot |= !m.proved_optimal;
            mip_fr += m.objective;
        }
        let n = eval_states.len() as f64;
        report.row(vec![
            json!(level),
            json!(ratio),
            json!(actual / n),
            json!(vmr_fr / n),
            json!(mip_fr / n),
            json!(if oot { "OOT/budget" } else { "ok" }),
        ]);
        eprintln!("level {level} done");
    }
    report.emit();
}
