//! Fig. 11 — distribution of stage-1 VM-selection probabilities.
//!
//! The paper observes that the trained policy concentrates: fewer than
//! 0.8% of VMs get more than a 1% selection probability, which motivates
//! the quantile action-thresholding of risk-seeking evaluation.

use serde_json::json;
use vmr_bench::{mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report};
use vmr_core::agent::{DecideOpts, InferCtx};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 8, args.seed).expect("train mappings");
    let eval_states = mappings(&cfg, args.mode.eval_mappings(), args.seed + 1000).expect("eval");
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let (agent, _) = train_agent(&spec, train_states, vec![], Some(&cfg.name)).expect("train");

    // Collect stage-1 probabilities along greedy trajectories.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
    let mut probs: Vec<f64> = Vec::new();
    let mut ictx = InferCtx::new();
    for state in &eval_states {
        let mut env =
            ReschedEnv::unconstrained(state.clone(), Objective::default(), spec.train.mnl)
                .expect("env");
        while !env.is_done() {
            let Some(d) = agent
                .decide_in(
                    &mut env,
                    &mut ictx,
                    &mut rng,
                    &DecideOpts { greedy: true, ..Default::default() },
                )
                .expect("decide")
            else {
                break;
            };
            probs.extend(d.vm_probs.iter().copied());
            if env.step(d.action).is_err() {
                break;
            }
        }
    }

    let buckets = [
        ("<1e-5", 0.0, 1e-5),
        ("1e-5..1e-4", 1e-5, 1e-4),
        ("1e-4..1e-3", 1e-4, 1e-3),
        ("1e-3..1e-2", 1e-3, 1e-2),
        ("1e-2..1e-1", 1e-2, 1e-1),
        (">=1e-1", 1e-1, f64::INFINITY),
    ];
    let mut report = Report::new(
        "fig11_probability_hist",
        "Fig. 11: VM selection probability distribution",
        &["bucket", "count", "fraction"],
    );
    let total = probs.len().max(1) as f64;
    let above_1pct = probs.iter().filter(|&&p| p > 0.01).count() as f64 / total;
    report.meta("total_probs", probs.len());
    report.meta("fraction_above_1pct", above_1pct);
    for (label, lo, hi) in buckets {
        let count = probs.iter().filter(|&&p| p >= lo && p < hi).count();
        report.row(vec![json!(label), json!(count), json!(count as f64 / total)]);
    }
    report.emit();
}
