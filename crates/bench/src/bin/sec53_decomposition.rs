//! §5.3 — performance decomposition: how much each VMR2L component
//! contributes, measured as the fraction of the (initial − MIP) potential
//! recovered when sparse attention and risk-seeking are added.

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, solver_budget, train_agent, train_cluster_config, AgentSpec, Report,
    RunMode,
};
use vmr_core::config::ExtractorKind;
use vmr_core::eval::{greedy_eval, risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 8, args.seed).expect("train");
    let eval_states =
        mappings(&cfg, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval");
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 8 });

    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.mnl = mnl;
    eprintln!("training sparse-attention agent...");
    let (sparse, _) =
        train_agent(&spec, train_states.clone(), vec![], Some(&cfg.name)).expect("train sparse");
    let mut vspec = spec.clone();
    vspec.extractor = ExtractorKind::VanillaAttention;
    eprintln!("training vanilla-attention agent...");
    let (vanilla, _) =
        train_agent(&vspec, train_states, vec![], Some(&cfg.name)).expect("train vanilla");

    let rs = RiskSeekingConfig {
        trajectories: if args.mode == RunMode::Smoke { 2 } else { 8 },
        seed: args.seed,
        ..Default::default()
    };
    let mut rows: Vec<(&str, f64)> = vec![
        ("initial", 0.0),
        ("MIP (reference)", 0.0),
        ("VMR2L (full)", 0.0),
        ("w/o sparse attention", 0.0),
        ("w/o risk-seeking", 0.0),
    ];
    for state in &eval_states {
        let cs = ConstraintSet::new(state.num_vms());
        rows[0].1 += state.fragment_rate(16);
        rows[1].1 += branch_and_bound(
            state,
            &cs,
            Objective::default(),
            mnl,
            &SolverConfig {
                time_limit: solver_budget(args.mode) * 2,
                beam_width: Some(32),
                ..Default::default()
            },
        )
        .objective;
        rows[2].1 += risk_seeking_eval(&sparse, state, &cs, Objective::default(), mnl, &rs)
            .expect("eval")
            .best_objective;
        rows[3].1 += risk_seeking_eval(&vanilla, state, &cs, Objective::default(), mnl, &rs)
            .expect("eval")
            .best_objective;
        rows[4].1 += greedy_eval(&sparse, state, &cs, Objective::default(), mnl).expect("eval").0;
    }
    let n = eval_states.len() as f64;
    let mip = rows[1].1 / n;
    let full = rows[2].1 / n;
    let mut report = Report::new(
        "sec53_decomposition",
        "Sec 5.3: component decomposition (fraction of potential achieved)",
        &["variant", "fr", "room_to_mip_pct"],
    );
    report.meta("mnl", mnl);
    for (name, total) in &rows {
        let fr = total / n;
        // "Room" metric as in §5.3: how much of (variant − MIP) the full
        // model closes: (variant − full)/(variant − MIP).
        let room =
            if (fr - mip).abs() > 1e-9 && *name != "VMR2L (full)" && *name != "MIP (reference)" {
                ((fr - full) / (fr - mip) * 1000.0).round() / 10.0
            } else {
                f64::NAN
            };
        report.row(vec![json!(name), json!(fr), json!(room)]);
    }
    report.emit();
}
