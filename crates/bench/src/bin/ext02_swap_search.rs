//! Ext. 2 — swap-aware local search vs single-move baselines (§8).
//!
//! The paper's future work proposes multi-VM swaps to escape the
//! feasibility bottleneck of one-at-a-time migration. This experiment
//! compares, per MNL: HA (the production heuristic), single-move
//! steepest descent, and the full swap-aware search — all under the
//! same migration budget (a swap consumes two units).

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_baselines::swap::{swap_search_solve, SwapMove, SwapSearchConfig};
use vmr_bench::{mappings, parse_args, scaled_config, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let obj = Objective::default();

    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 4],
        _ => vec![5, 10, 25, 50],
    };
    let single_only = SwapSearchConfig { pair_candidates: 0, ..Default::default() };
    let with_swaps = SwapSearchConfig::default();

    let mut report = Report::new(
        "ext02_swap_search",
        "Ext. 2: swap-aware local search vs single-move methods",
        &[
            "cluster",
            "mnl",
            "fr_initial",
            "fr_ha",
            "fr_single_descent",
            "fr_swap_search",
            "swaps_used",
            "time_s",
        ],
    );
    report.meta("mode", format!("{:?}", args.mode));

    // Two regimes: the standard Medium-shaped cluster, and a
    // tightly-packed one (95% target utilization) where single
    // migrations often have nowhere to go — §8's motivation for swaps.
    let normal = scaled_config(&ClusterConfig::medium(), args.mode);
    let tight = {
        let mut t = scaled_config(&ClusterConfig::medium(), args.mode);
        t.target_util = 0.95;
        t.name = format!("{}_tight", t.name);
        t
    };
    for (label, cfg) in [("normal", normal), ("tight", tight)] {
        run_regime(&args, label, &cfg, obj, &mnls, &single_only, &with_swaps, &mut report);
    }
    report.emit();
}

#[allow(clippy::too_many_arguments)]
fn run_regime(
    args: &vmr_bench::BenchArgs,
    label: &str,
    cfg: &ClusterConfig,
    obj: Objective,
    mnls: &[usize],
    single_only: &SwapSearchConfig,
    with_swaps: &SwapSearchConfig,
    report: &mut Report,
) {
    let states = mappings(cfg, args.mode.eval_mappings(), args.seed).expect("mappings");
    for &mnl in mnls {
        let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        for state in &states {
            let cs = ConstraintSet::new(state.num_vms());
            acc.0 += obj.value(state);
            acc.1 += ha_solve(state, &cs, obj, mnl).objective;
            acc.2 += swap_search_solve(state, &cs, obj, mnl, single_only).objective;
            let full = swap_search_solve(state, &cs, obj, mnl, with_swaps);
            acc.3 += full.objective;
            acc.4 += full.moves.iter().filter(|m| matches!(m, SwapMove::Swap(..))).count() as f64;
            acc.5 += full.elapsed.as_secs_f64();
        }
        let n = states.len() as f64;
        report.row(vec![
            json!(label),
            json!(mnl),
            json!(acc.0 / n),
            json!(acc.1 / n),
            json!(acc.2 / n),
            json!(acc.3 / n),
            json!(acc.4 / n),
            json!(acc.5 / n),
        ]);
        eprintln!("{label} mnl {mnl} done");
    }
}
