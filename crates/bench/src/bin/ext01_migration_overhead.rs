//! Ext. 1 — live-migration execution cost of rescheduling plans (§1).
//!
//! The paper argues VMR is cheap because pre-copy live migration moves
//! only memory over high-bandwidth links. This experiment quantifies
//! that: HA plans at increasing MNL are scheduled under the pre-copy
//! cost model with per-PM NIC stream limits, reporting the execution
//! window (makespan), cumulative VM downtime, and the parallel speedup
//! over strictly sequential execution.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::migration::{schedule_plan, NicLimits, PrecopyModel};
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let states = mappings(&cfg, args.mode.eval_mappings(), args.seed).expect("mappings");
    let model = PrecopyModel::default();
    let obj = Objective::default();

    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 5],
        _ => vec![5, 10, 25, 50],
    };
    let mut report = Report::new(
        "ext01_migration_overhead",
        "Ext. 1: live-migration cost of HA plans (pre-copy model)",
        &[
            "mnl",
            "plan_len",
            "streams",
            "makespan_s",
            "sequential_s",
            "speedup",
            "downtime_ms_per_vm",
            "transferred_gib",
        ],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("bandwidth_gib_s", model.bandwidth_gib_s);
    report.meta("dirty_rate_gib_s", model.dirty_rate_gib_s);
    for &mnl in &mnls {
        for streams in [1u32, 2, 4] {
            let limits = NicLimits { streams_per_pm: streams };
            let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
            for state in &states {
                let cs = ConstraintSet::new(state.num_vms());
                let plan = ha_solve(state, &cs, obj, mnl).plan;
                let sched =
                    schedule_plan(state, &plan, &model, limits).expect("plan must schedule");
                let per_vm =
                    if plan.is_empty() { 0.0 } else { sched.total_downtime_ms / plan.len() as f64 };
                acc.0 += plan.len() as f64;
                acc.1 += sched.makespan_secs;
                acc.2 += sched.sequential_secs;
                acc.3 += sched.speedup();
                acc.4 += per_vm;
                acc.5 += sched.total_transferred_gib;
            }
            let n = states.len() as f64;
            report.row(vec![
                json!(mnl),
                json!(acc.0 / n),
                json!(streams),
                json!(acc.1 / n),
                json!(acc.2 / n),
                json!(acc.3 / n),
                json!(acc.4 / n),
                json!(acc.5 / n),
            ]);
        }
        eprintln!("mnl {mnl} done");
    }
    report.emit();
}
