//! Table 5 — generalization to abnormal workloads (§5.6.1).
//!
//! VMR2L agents trained on Low (L), Middle (M), High (H), and the L+H mix
//! are each evaluated on all three workload levels, against HA and POP.
//! The paper's headline: the (L,H) agent generalizes to M without ever
//! seeing middle workloads.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, solver_budget, AgentSpec, Report, RunMode};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::SolverConfig;
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    // Scale PM counts to the mode but keep the three utilization levels.
    let cfgs = [
        ("L", scaled_config(&ClusterConfig::workload_low(), args.mode)),
        ("M", scaled_config(&ClusterConfig::workload_mid(), args.mode)),
        ("H", scaled_config(&ClusterConfig::workload_high(), args.mode)),
    ];
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 12 });
    let train_per: usize = if args.mode == RunMode::Smoke { 2 } else { 6 };
    let train_sets: Vec<Vec<_>> =
        cfgs.iter().map(|(_, c)| mappings(c, train_per, args.seed).expect("train")).collect();
    let eval_sets: Vec<Vec<_>> = cfgs
        .iter()
        .map(|(_, c)| {
            mappings(c, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval")
        })
        .collect();

    // Agents: trained on L, M, H, and L+H.
    let mut agents = Vec::new();
    let specs: Vec<(&str, Vec<usize>)> = vec![
        ("VMR2L(L)", vec![0]),
        ("VMR2L(M)", vec![1]),
        ("VMR2L(H)", vec![2]),
        ("VMR2L(L,H)", vec![0, 2]),
    ];
    for (name, sets) in &specs {
        let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
        spec.train.updates = args.updates.unwrap_or(spec.train.updates / 2).max(1);
        spec.train.mnl = mnl;
        let mut train: Vec<_> = Vec::new();
        for &i in sets {
            train.extend(train_sets[i].iter().cloned());
        }
        eprintln!("training {name}...");
        let (agent, _) = vmr_bench::train_agent(&spec, train, vec![], Some(&format!("t5_{name}")))
            .expect("train");
        agents.push((name.to_string(), agent));
    }

    let mut report = Report::new(
        "table5_workloads",
        "Table 5: generalization to abnormal workloads (FR on L/M/H)",
        &["method", "L", "M", "H"],
    );
    report.meta("mnl", mnl);
    let eval = |f: &dyn Fn(&vmr_sim::cluster::ClusterState, &ConstraintSet) -> f64| -> Vec<f64> {
        eval_sets
            .iter()
            .map(|set| {
                set.iter().map(|s| f(s, &ConstraintSet::new(s.num_vms()))).sum::<f64>()
                    / set.len() as f64
            })
            .collect()
    };

    let ha_row = eval(&|s, cs| ha_solve(s, cs, Objective::default(), mnl).objective);
    report.row(vec![json!("HA"), json!(ha_row[0]), json!(ha_row[1]), json!(ha_row[2])]);
    for (name, agent) in &agents {
        let row = eval(&|s, cs| {
            risk_seeking_eval(
                agent,
                s,
                cs,
                Objective::default(),
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("eval")
            .best_objective
        });
        report.row(vec![json!(name), json!(row[0]), json!(row[1]), json!(row[2])]);
        eprintln!("{name} evaluated");
    }
    let pop_row = eval(&|s, cs| {
        pop_solve(
            s,
            cs,
            Objective::default(),
            mnl,
            &PopConfig {
                partitions: if args.mode == RunMode::Full { 16 } else { 4 },
                sub: SolverConfig {
                    time_limit: solver_budget(args.mode),
                    beam_width: Some(24),
                    ..Default::default()
                },
                seed: args.seed,
            },
        )
        .objective
    });
    report.row(vec![json!("POP"), json!(pop_row[0]), json!(pop_row[1]), json!(pop_row[2])]);
    report.emit();
}
