//! Fig. 1 — VM arrivals and exits per minute over 24 hours.
//!
//! Regenerates the diurnal churn trace that motivates running VMR during
//! the off-peak window. Prints half-hour buckets (average per-minute
//! arrivals/exits) and marks the off-peak minute the scheduler would use.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use vmr_bench::{parse_args, Report};
use vmr_sim::trace::{generate_day_trace, DiurnalModel, MINUTES_PER_DAY};

fn main() {
    let args = parse_args();
    let model = DiurnalModel::default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let trace = generate_day_trace(&model, 2000, 0.012, &mut rng);

    let mut report = Report::new(
        "fig01_trace",
        "Fig. 1: VM arrivals/exits per minute (30-min buckets)",
        &["hour", "arrivals_per_min", "exits_per_min", "note"],
    );
    report.meta("off_peak_minute", model.off_peak_minute());
    report.meta("seed", args.seed);
    let bucket = 30u32;
    for start in (0..MINUTES_PER_DAY).step_by(bucket as usize) {
        let slice: Vec<_> =
            trace.iter().filter(|c| c.minute >= start && c.minute < start + bucket).collect();
        let arr: f64 = slice.iter().map(|c| c.arrivals as f64).sum::<f64>() / slice.len() as f64;
        let ex: f64 = slice.iter().map(|c| c.exits as f64).sum::<f64>() / slice.len() as f64;
        let off_peak = model.off_peak_minute() >= start && model.off_peak_minute() < start + bucket;
        report.row(vec![
            json!(format!("{:02}:{:02}", start / 60, start % 60)),
            json!((arr * 100.0).round() / 100.0),
            json!((ex * 100.0).round() / 100.0),
            json!(if off_peak { "<- off-peak VMR window" } else { "" }),
        ]);
    }
    report.emit();
}
