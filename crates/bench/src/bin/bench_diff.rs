//! Compares two bench captures and fails on median regressions.
//!
//! ```text
//! bench_diff <OLD.json> <NEW.json> [--threshold PCT]
//! ```
//!
//! Accepts both the wrapped `BENCH_*.json` format and the raw JSON-lines
//! stream the criterion shim writes via `VMR_BENCH_JSON`. Exits nonzero
//! when any benchmark id present in both captures is more than
//! `--threshold` percent (default 25) slower in NEW — the CI gate that
//! keeps the simulator hot paths from silently regressing.

use std::process::ExitCode;

use vmr_bench::diff::{fmt_ns, parse_capture, BenchDiff};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a numeric percentage");
                    return ExitCode::from(2);
                };
                threshold_pct = v;
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_diff <OLD.json> <NEW.json> [--threshold PCT]");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff <OLD.json> <NEW.json> [--threshold PCT]");
        return ExitCode::from(2);
    }
    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        parse_capture(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let diff = BenchDiff::compare(&old, &new);
    let threshold = threshold_pct / 100.0;
    println!("{:<55} {:>12} {:>12} {:>8}", "benchmark", "old", "new", "ratio");
    for e in &diff.entries {
        let flag = if e.regressed(threshold) {
            "  << REGRESSION"
        } else if e.ratio() < 0.75 {
            "  (improved)"
        } else {
            ""
        };
        println!(
            "{:<55} {:>12} {:>12} {:>7.2}x{}",
            e.id,
            fmt_ns(e.old_ns),
            fmt_ns(e.new_ns),
            e.ratio(),
            flag
        );
    }
    for id in &diff.only_old {
        println!("{id:<55} (only in old capture)");
    }
    for id in &diff.only_new {
        println!("{id:<55} (new benchmark)");
    }

    if diff.entries.is_empty() {
        // Zero shared ids means the gate would pass vacuously — treat a
        // comparison that compares nothing as an error, not a pass.
        println!("\nFAIL: the captures share no benchmark ids; nothing was compared");
        return ExitCode::from(2);
    }
    let regressions = diff.regressions(threshold);
    if regressions.is_empty() {
        println!(
            "\nOK: no shared benchmark regressed by more than {threshold_pct:.0}% \
             ({} compared)",
            diff.entries.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} benchmark(s) regressed by more than {threshold_pct:.0}%",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}
