//! Compares two bench captures and fails on median regressions.
//!
//! ```text
//! bench_diff <OLD.json> <NEW.json> [--threshold PCT] [--threshold-for FAMILY=PCT]...
//!            [--max-ratio NUM_ID:DEN_ID=R]...
//! ```
//!
//! Accepts both the wrapped `BENCH_*.json` format and the raw JSON-lines
//! stream the criterion shim writes via `VMR_BENCH_JSON`. Exits nonzero
//! when any benchmark id present in both captures is more than its gate
//! percentage slower in NEW — the CI gate that keeps the simulator hot
//! paths from silently regressing. The gate is `--threshold` (default
//! 25) unless the id's family — its first `/`-segment — has a
//! `--threshold-for` override, e.g. `--threshold-for policy_forward=50`
//! for a noisy family; the flag repeats. An override whose family
//! matches no compared id is a config error (exit 2), not a no-op.
//!
//! `--max-ratio` adds a *within-NEW* gate between two paired ids —
//! `median(NUM_ID) <= R * median(DEN_ID)` — for costs best expressed
//! host-independently, like holding telemetry's enabled-vs-disabled
//! overhead under 3%. Either id missing from NEW is a config error
//! (exit 2). The flag repeats.

use std::process::ExitCode;

use vmr_bench::diff::{fmt_ns, parse_capture, BenchDiff, RatioGate, Thresholds};

const USAGE: &str = "usage: bench_diff <OLD.json> <NEW.json> [--threshold PCT] \
                     [--threshold-for FAMILY=PCT]... [--max-ratio NUM_ID:DEN_ID=R]...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut thresholds = Thresholds::uniform(0.25);
    let mut ratio_gates: Vec<RatioGate> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a numeric percentage");
                    return ExitCode::from(2);
                };
                thresholds.default = v / 100.0;
            }
            "--threshold-for" => {
                let parsed = it.next().and_then(|s| {
                    let (family, pct) = s.split_once('=')?;
                    let pct = pct.parse::<f64>().ok()?;
                    (!family.is_empty()).then(|| (family.to_string(), pct / 100.0))
                });
                let Some((family, gate)) = parsed else {
                    eprintln!("--threshold-for needs FAMILY=PCT, e.g. policy_forward=50");
                    return ExitCode::from(2);
                };
                thresholds.per_family.insert(family, gate);
            }
            "--max-ratio" => {
                let Some(gate) = it.next().and_then(|s| RatioGate::parse(s)) else {
                    eprintln!(
                        "--max-ratio needs NUM_ID:DEN_ID=R, e.g. \
                         telemetry_overhead/serve_plan_enabled:telemetry_overhead/serve_plan_disabled=1.03"
                    );
                    return ExitCode::from(2);
                };
                ratio_gates.push(gate);
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        parse_capture(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let diff = BenchDiff::compare(&old, &new);
    println!("{:<55} {:>12} {:>12} {:>8}", "benchmark", "old", "new", "ratio");
    for e in &diff.entries {
        let flag = if e.regressed(thresholds.for_id(&e.id)) {
            "  << REGRESSION"
        } else if e.ratio() < 0.75 {
            "  (improved)"
        } else {
            ""
        };
        println!(
            "{:<55} {:>12} {:>12} {:>7.2}x{}",
            e.id,
            fmt_ns(e.old_ns),
            fmt_ns(e.new_ns),
            e.ratio(),
            flag
        );
    }
    for id in &diff.only_old {
        println!("{id:<55} (only in old capture)");
    }
    for id in &diff.only_new {
        println!("{id:<55} (new benchmark)");
    }

    if diff.entries.is_empty() {
        // Zero shared ids means the gate would pass vacuously — treat a
        // comparison that compares nothing as an error, not a pass.
        println!("\nFAIL: the captures share no benchmark ids; nothing was compared");
        return ExitCode::from(2);
    }
    let unmatched = diff.unmatched_families(&thresholds);
    if !unmatched.is_empty() {
        // An override naming no compared family is a config error (most
        // likely a typo'd family), not a loosened gate — fail loudly
        // rather than silently keeping that family on the default.
        println!(
            "\nFAIL: --threshold-for famil{} matched no compared benchmark id: {}",
            if unmatched.len() == 1 { "y" } else { "ies" },
            unmatched.join(", ")
        );
        return ExitCode::from(2);
    }
    let overrides = if thresholds.per_family.is_empty() {
        String::new()
    } else {
        let list: Vec<String> =
            thresholds.per_family.iter().map(|(f, t)| format!("{f}={:.0}%", t * 100.0)).collect();
        format!(", overrides: {}", list.join(" "))
    };
    // Within-NEW ratio gates (paired-benchmark overhead budgets).
    let mut ratio_failures = 0usize;
    for gate in &ratio_gates {
        let check = match gate.check(&new) {
            Ok(c) => c,
            Err(e) => {
                println!("\nFAIL: --max-ratio {}:{}={}: {e}", gate.num_id, gate.den_id, gate.max);
                return ExitCode::from(2);
            }
        };
        let verdict = if check.passed() { "ok" } else { "EXCEEDED" };
        println!(
            "ratio {} / {} = {:.4} (gate {:.4}, {} vs {}): {verdict}",
            gate.num_id,
            gate.den_id,
            check.ratio(),
            gate.max,
            fmt_ns(check.num_ns),
            fmt_ns(check.den_ns),
        );
        ratio_failures += usize::from(!check.passed());
    }

    let regressions = diff.regressions_with(&thresholds);
    if ratio_failures > 0 {
        println!(
            "\nFAIL: {ratio_failures} --max-ratio gate(s) exceeded \
             (plus {} median regression(s))",
            regressions.len()
        );
        return ExitCode::FAILURE;
    }
    if regressions.is_empty() {
        println!(
            "\nOK: no shared benchmark regressed beyond its gate \
             (default {:.0}%{overrides}; {} compared)",
            thresholds.default * 100.0,
            diff.entries.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} benchmark(s) regressed beyond the gate \
             (default {:.0}%{overrides})",
            regressions.len(),
            thresholds.default * 100.0
        );
        ExitCode::FAILURE
    }
}
