//! Fig. 10 — feature-extractor ablation: sparse tree-attention vs vanilla
//! attention vs flat MLP, test-FR convergence curves.
//!
//! The paper's finding: the MLP fails to converge (too many parameters,
//! scaling with cluster size), vanilla attention converges but plateaus
//! higher, sparse attention learns the tree-level relations and wins.

use serde_json::json;
use vmr_bench::{mappings, parse_args, train_cluster_config, AgentSpec, Report};
use vmr_core::agent::Vmr2lAgent;
use vmr_core::config::{ActionMode, ExtractorKind};
use vmr_core::train::{TrainConfig, Trainer};
use vmr_sim::obs::{PM_FEAT, VM_FEAT};

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 8, args.seed).expect("train mappings");
    let eval_states = mappings(&cfg, 3, args.seed + 500).expect("eval mappings");
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.eval_every = 2;
    spec.train.eval_episodes = 3;

    let mut curves: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for kind in [ExtractorKind::SparseAttention, ExtractorKind::VanillaAttention] {
        eprintln!("training {kind:?}...");
        let mut s = spec.clone();
        s.extractor = kind;
        let agent = vmr_bench::build_agent(&s);
        let mut tr = Trainer::new(agent, train_states.clone(), eval_states.clone(), s.train)
            .expect("trainer");
        let hist = tr
            .train(|st| {
                if !st.eval_objective.is_nan() {
                    eprintln!("  {kind:?} update {} test FR {:.4}", st.update, st.eval_objective);
                }
            })
            .expect("train");
        curves.push((
            format!("{kind:?}"),
            hist.iter()
                .filter(|h| !h.eval_objective.is_nan())
                .map(|h| (h.update, h.eval_objective))
                .collect(),
        ));
    }
    // MLP extractor (parameters scale with cluster size).
    {
        eprintln!("training Mlp extractor...");
        let max_vms = train_states.iter().map(|s| s.num_vms()).max().unwrap() + 16;
        let max_pms = train_states.iter().map(|s| s.num_pms()).max().unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
        let policy = vmr_core::ablate::MlpPolicy::new(max_vms, max_pms, 64, &mut rng);
        eprintln!(
            "  (mlp input width {} vs attention feature widths {}/{})",
            max_vms * VM_FEAT + max_pms * PM_FEAT,
            VM_FEAT,
            PM_FEAT
        );
        let agent = Vmr2lAgent::new(policy, ActionMode::TwoStage);
        let cfg_t = TrainConfig { eval_every: 2, eval_episodes: 3, ..spec.train };
        let mut tr =
            Trainer::new(agent, train_states.clone(), eval_states.clone(), cfg_t).expect("trainer");
        let hist = tr.train(|_| {}).expect("train mlp");
        curves.push((
            "Mlp".into(),
            hist.iter()
                .filter(|h| !h.eval_objective.is_nan())
                .map(|h| (h.update, h.eval_objective))
                .collect(),
        ));
    }

    let mut report = Report::new(
        "fig10_attention_ablation",
        "Fig. 10: test FR during training — sparse vs vanilla vs MLP",
        &["update", "sparse_fr", "vanilla_fr", "mlp_fr"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("updates", spec.train.updates);
    let points: Vec<usize> = curves[0].1.iter().map(|p| p.0).collect();
    for (i, u) in points.iter().enumerate() {
        let get = |c: usize| curves[c].1.get(i).map(|p| p.1).unwrap_or(f64::NAN);
        report.row(vec![json!(u), json!(get(0)), json!(get(1)), json!(get(2))]);
    }
    report.emit();
}
