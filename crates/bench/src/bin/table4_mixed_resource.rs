//! Table 4 — mixed multi-resource objective: λ·Mem64 + (1−λ)·FR16 (§5.5.3)
//! on the Multi-Resource cluster, VMR2L vs POP.

use serde_json::json;
use vmr_bench::{mappings, parse_args, scaled_config, solver_budget, AgentSpec, Report, RunMode};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::SolverConfig;
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::multi_resource(), args.mode);
    let train_states = mappings(&cfg, 6, args.seed).expect("train");
    let eval_states =
        mappings(&cfg, args.mode.eval_mappings().min(3), args.seed + 1000).expect("eval");
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 8 });
    let lambdas: Vec<f64> = match args.mode {
        RunMode::Smoke => vec![0.0, 1.0],
        _ => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    };

    let mut report = Report::new(
        "table4_mixed_resource",
        "Table 4: mixed objective λ·Mem64 + (1−λ)·FR16",
        &["lambda", "method", "fr16", "mem64", "obj"],
    );
    report.meta("mnl", mnl);
    for &lambda in &lambdas {
        let obj = Objective::MixedResource { lambda, cpu_cores: 16, mem_gib: 64 };
        let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
        spec.train.updates = args.updates.unwrap_or(spec.train.updates / 2).max(1);
        spec.train.objective = obj;
        spec.train.mnl = mnl;
        eprintln!("training VMR2L for λ={lambda}...");
        let (agent, _) = vmr_bench::train_agent(
            &spec,
            train_states.clone(),
            vec![],
            Some(&format!("{}_t4_l{}", cfg.name, (lambda * 10.0) as u32)),
        )
        .expect("train");

        let (mut v16, mut vmem, mut vobj) = (0.0, 0.0, 0.0);
        let (mut p16, mut pmem, mut pobj) = (0.0, 0.0, 0.0);
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            let r = risk_seeking_eval(
                &agent,
                state,
                &cs,
                obj,
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("eval");
            let mut replay = state.clone();
            for a in &r.best_plan {
                replay.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
            }
            v16 += replay.fragment_rate(16);
            vmem += replay.mem_fragment_rate(64);
            vobj += r.best_objective;

            let p = pop_solve(
                state,
                &cs,
                obj,
                mnl,
                &PopConfig {
                    partitions: if args.mode == RunMode::Full { 16 } else { 4 },
                    sub: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(24),
                        ..Default::default()
                    },
                    seed: args.seed,
                },
            );
            let mut replay = state.clone();
            for a in &p.plan {
                replay.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
            }
            p16 += replay.fragment_rate(16);
            pmem += replay.mem_fragment_rate(64);
            pobj += p.objective;
        }
        let n = eval_states.len() as f64;
        report.row(vec![
            json!(lambda),
            json!("VMR2L"),
            json!(v16 / n),
            json!(vmem / n),
            json!(vobj / n),
        ]);
        report.row(vec![
            json!(lambda),
            json!("POP"),
            json!(p16 / n),
            json!(pmem / n),
            json!(pobj / n),
        ]);
        eprintln!("lambda {lambda} done");
    }
    report.emit();
}
