//! Ext. 6 — noisy-neighbor mitigation via derived anti-affinity (§7).
//!
//! The paper's discussion proposes handling performance interference by
//! feeding resource profiles into the existing constraint machinery.
//! This experiment generates a bimodal utilization population, derives a
//! hard anti-affinity group over the noisiest VMs, and reschedules with
//! HA under (a) no constraints, (b) the derived constraints, and (c) the
//! derived constraints plus an eviction pre-pass that actively separates
//! already-colocated noisy pairs — reporting fragment rate *and* cluster
//! interference score, to show the FR-vs-interference trade-off an
//! operator buys. Constraints alone only prevent *new* colocations;
//! separating existing ones costs migration budget.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, Report, RunMode};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::interference::{InterferenceModel, UsageProfiles};
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::medium(), args.mode);
    let states = mappings(&cfg, args.mode.eval_mappings(), args.seed).expect("mappings");
    let obj = Objective::default();
    let model = InterferenceModel { threshold: 0.55, use_burst: true };
    let mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 4,
        _ => 25,
    });
    let group_size = match args.mode {
        RunMode::Smoke => 4,
        _ => 12,
    };

    let mut report = Report::new(
        "ext06_interference",
        "Ext. 6: rescheduling with interference-derived anti-affinity",
        &[
            "variant",
            "fr_after",
            "interference_before",
            "interference_after",
            "noisy_pairs_colocated",
        ],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("mnl", mnl);
    report.meta("noisy_group", group_size);

    let mut acc_unconstrained = (0.0, 0.0, 0.0, 0.0);
    let mut acc_constrained = (0.0, 0.0, 0.0, 0.0);
    let mut acc_evicted = (0.0, 0.0, 0.0, 0.0);
    for (i, state) in states.iter().enumerate() {
        let profiles = UsageProfiles::generate(state, 0.2, args.seed + 77 + i as u64);
        let before = model.cluster_score(state, &profiles);
        let noisy: Vec<_> =
            model.noisiest_vms(state, &profiles, group_size).into_iter().map(|(v, _)| v).collect();
        let colocated = |s: &vmr_sim::cluster::ClusterState| -> f64 {
            let mut pairs = 0;
            for (j, &a) in noisy.iter().enumerate() {
                for &b in noisy.iter().skip(j + 1) {
                    if s.placement(a).pm == s.placement(b).pm {
                        pairs += 1;
                    }
                }
            }
            pairs as f64
        };

        // Unconstrained HA.
        let free = ha_solve(state, &ConstraintSet::new(state.num_vms()), obj, mnl);
        let mut free_state = state.clone();
        for a in &free.plan {
            free_state.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
        }
        acc_unconstrained.0 += free.objective;
        acc_unconstrained.1 += before;
        acc_unconstrained.2 += model.cluster_score(&free_state, &profiles);
        acc_unconstrained.3 += colocated(&free_state);

        // HA under the derived anti-affinity.
        let cs = model.derive_anti_affinity(state, &profiles, group_size).expect("constraints");
        let bound = ha_solve(state, &cs, obj, mnl);
        let mut bound_state = state.clone();
        for a in &bound.plan {
            bound_state.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
        }
        acc_constrained.0 += bound.objective;
        acc_constrained.1 += before;
        acc_constrained.2 += model.cluster_score(&bound_state, &profiles);
        acc_constrained.3 += colocated(&bound_state);

        // Eviction pre-pass: while budget remains, migrate one VM of
        // each colocated noisy pair to any legal destination, then spend
        // the remainder on HA under the same constraints.
        let mut evict_state = state.clone();
        let mut used = 0usize;
        'pairs: for (j, &a) in noisy.iter().enumerate() {
            for &b in noisy.iter().skip(j + 1) {
                if used >= mnl {
                    break 'pairs;
                }
                if evict_state.placement(a).pm != evict_state.placement(b).pm {
                    continue;
                }
                // Prefer the destination that least hurts the objective.
                let mut best: Option<(vmr_sim::types::PmId, f64)> = None;
                for p in 0..evict_state.num_pms() {
                    let pm = vmr_sim::types::PmId(p as u32);
                    if cs.migration_legal(&evict_state, a, pm).is_err() {
                        continue;
                    }
                    let Ok(rec) = evict_state.migrate(a, pm, obj.frag_cores()) else {
                        continue;
                    };
                    let score = obj.value(&evict_state);
                    evict_state.undo(&rec).expect("probe undo");
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((pm, score));
                    }
                }
                if let Some((pm, _)) = best {
                    evict_state.migrate(a, pm, obj.frag_cores()).expect("evict");
                    used += 1;
                }
            }
        }
        let evicted = ha_solve(&evict_state, &cs, obj, mnl.saturating_sub(used));
        let mut evicted_state = evict_state.clone();
        for a in &evicted.plan {
            evicted_state.migrate(a.vm, a.pm, obj.frag_cores()).expect("replay");
        }
        acc_evicted.0 += evicted.objective;
        acc_evicted.1 += before;
        acc_evicted.2 += model.cluster_score(&evicted_state, &profiles);
        acc_evicted.3 += colocated(&evicted_state);
        eprintln!("mapping {i} done");
    }
    let n = states.len() as f64;
    for (label, acc) in [
        ("unconstrained", acc_unconstrained),
        ("anti_affinity", acc_constrained),
        ("evict_then_ha", acc_evicted),
    ] {
        report.row(vec![
            json!(label),
            json!(acc.0 / n),
            json!(acc.1 / n),
            json!(acc.2 / n),
            json!(acc.3 / n),
        ]);
    }
    report.emit();
}
