//! Fig. 12 — risk-seeking evaluation: test FR vs number of sampled
//! trajectories, with and without quantile action-thresholding (§3.4).

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report, RunMode,
};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 8, args.seed).expect("train mappings");
    let eval_states = mappings(&cfg, args.mode.eval_mappings(), args.seed + 1000).expect("eval");
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let (agent, _) = train_agent(&spec, train_states, vec![], Some(&cfg.name)).expect("train");
    let obj = Objective::default();
    let mnl = args.mnl.unwrap_or(spec.train.mnl);

    let counts: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![1, 2],
        _ => vec![1, 2, 4, 8, 16, 32],
    };
    let mut report = Report::new(
        "fig12_risk_seeking",
        "Fig. 12: FR vs #sampled trajectories, baseline vs thresholded",
        &["trajectories", "fr_baseline", "fr_thresholded", "time_s"],
    );
    report.meta("mnl", mnl);
    report.meta("mode", format!("{:?}", args.mode));
    for &t in &counts {
        let mut base = 0.0;
        let mut thr = 0.0;
        let mut secs = 0.0;
        for (i, state) in eval_states.iter().enumerate() {
            let cs = ConstraintSet::new(state.num_vms());
            let no_thr = risk_seeking_eval(
                &agent,
                state,
                &cs,
                obj,
                mnl,
                &RiskSeekingConfig {
                    trajectories: t,
                    vm_quantile: None,
                    pm_quantile: None,
                    seed: args.seed + i as u64,
                    ..Default::default()
                },
            )
            .expect("eval");
            let with_thr = risk_seeking_eval(
                &agent,
                state,
                &cs,
                obj,
                mnl,
                &RiskSeekingConfig {
                    trajectories: t,
                    vm_quantile: Some(0.98),
                    pm_quantile: Some(0.95),
                    seed: args.seed + i as u64,
                    ..Default::default()
                },
            )
            .expect("eval");
            base += no_thr.best_objective;
            thr += with_thr.best_objective;
            secs += with_thr.elapsed.as_secs_f64();
        }
        let n = eval_states.len() as f64;
        report.row(vec![json!(t), json!(base / n), json!(thr / n), json!(secs / n)]);
        eprintln!("trajectories {t} done");
    }
    report.emit();
}
