//! Fig. 15 — CDF of per-PM CPU usage under the Low/Middle/High workload
//! datasets (§5.6.1), showing the three distributions are strictly
//! non-overlapping in aggregate utilization.

use serde_json::json;
use vmr_bench::{parse_args, scaled_config, Report};
use vmr_sim::dataset::{generate_mapping, ClusterConfig};

fn main() {
    let args = parse_args();
    let configs = [
        ("low", ClusterConfig::workload_low()),
        ("mid", ClusterConfig::workload_mid()),
        ("high", ClusterConfig::workload_high()),
    ];
    let mut report = Report::new(
        "fig15_workload_cdf",
        "Fig. 15: CPU usage CDF across PMs per workload level",
        &["percentile", "low", "mid", "high"],
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for (_, base) in &configs {
        let cfg = scaled_config(base, args.mode);
        let state = generate_mapping(&cfg, args.seed).expect("mapping");
        let mut usages: Vec<f64> = state
            .pms()
            .iter()
            .map(|pm| 1.0 - pm.free_cpu() as f64 / pm.cpu_total() as f64)
            .collect();
        usages.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        columns.push(usages);
    }
    for pct in (0..=100).step_by(10) {
        let mut row = vec![json!(pct)];
        for usages in &columns {
            let idx = ((usages.len() - 1) * pct) / 100;
            row.push(json!(usages[idx]));
        }
        report.row(row);
    }
    report.meta("mode", format!("{:?}", args.mode));
    report.emit();
}
