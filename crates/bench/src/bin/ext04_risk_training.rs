//! Ext. 4 — risk-seeking *training* ablation (§8 future work).
//!
//! The paper deploys risk-seeking at evaluation time and names
//! risk-seeking training (Petersen et al.) as future work. This
//! experiment trains two otherwise-identical agents — standard PPO vs
//! elite-episode-filtered PPO — and compares their greedy and
//! risk-seeking evaluation FR, showing whether optimizing the best-case
//! tail during training composes with best-of-k deployment.

use serde_json::json;
use vmr_bench::{mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report};
use vmr_core::eval::{greedy_eval, risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;

fn main() {
    let args = parse_args();
    let cfg = train_cluster_config(args.mode);
    let train_states = mappings(&cfg, 8, args.seed).expect("train mappings");
    let eval_states = mappings(&cfg, args.mode.eval_mappings(), args.seed + 1000).expect("eval");
    let obj = Objective::default();

    let mut report = Report::new(
        "ext04_risk_training",
        "Ext. 4: standard PPO vs risk-seeking (elite-filtered) training",
        &["variant", "fr_greedy", "fr_risk_eval_k8", "final_mean_reward"],
    );
    report.meta("mode", format!("{:?}", args.mode));
    for (label, quantile) in [("ppo", None), ("risk_q0.5", Some(0.5)), ("risk_q0.75", Some(0.75))] {
        let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
        if let Some(u) = args.updates {
            spec.train.updates = u;
        }
        spec.train.risk_quantile = quantile;
        // Distinct cache names per variant: the quantile is not part of
        // the architecture key.
        let cache = format!("{}-{}", cfg.name, label);
        let (agent, history) =
            train_agent(&spec, train_states.clone(), vec![], Some(&cache)).expect("train");
        let mnl = args.mnl.unwrap_or(spec.train.mnl);

        let mut greedy = 0.0;
        let mut risky = 0.0;
        for (i, state) in eval_states.iter().enumerate() {
            let cs = ConstraintSet::new(state.num_vms());
            greedy += greedy_eval(&agent, state, &cs, obj, mnl).expect("greedy").0;
            risky += risk_seeking_eval(
                &agent,
                state,
                &cs,
                obj,
                mnl,
                &RiskSeekingConfig {
                    trajectories: 8,
                    seed: args.seed + i as u64,
                    ..Default::default()
                },
            )
            .expect("risk eval")
            .best_objective;
        }
        let n = eval_states.len() as f64;
        let final_reward = history.last().map(|h| h.mean_reward).unwrap_or(f64::NAN);
        report.row(vec![json!(label), json!(greedy / n), json!(risky / n), json!(final_reward)]);
        eprintln!("{label} done");
    }
    report.emit();
}
