//! Request/latency profile of the `vmr-serve` daemon over loopback TCP:
//! per-policy `plan` latency percentiles plus delta-ingest throughput,
//! measured end-to-end (client encode → socket → parse → session lock →
//! policy → validation replay → response).
//!
//! Smoke mode uses the tiny preset and a handful of requests; the
//! default mode profiles the paper's Medium scale.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

use vmr_bench::{parse_args, Report, RunMode};
use vmr_core::agent::Vmr2lAgent;
use vmr_core::config::PrecisionConfig;
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::infer::SharedAgent;
use vmr_core::model::Vmr2lModel;
use vmr_serve::client::ServeClient;
use vmr_serve::proto::PlanParams;
use vmr_serve::server::{serve, ServerConfig};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::NumaPolicy;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = parse_args();
    let (preset, requests, mnl) = match args.mode {
        RunMode::Smoke => ("tiny", 5usize, 2usize),
        RunMode::Default => ("medium", 20, 4),
        RunMode::Full => ("medium", 100, 10),
    };

    // Untrained weights: serving latency is architecture-dependent, not
    // training-dependent.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    let agent = SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage));
    let handle = serve(ServerConfig { threads: 4, agent: Some(agent), ..Default::default() })
        .expect("daemon");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    client.create_session("lat", preset, args.seed, mnl).expect("create");

    let mut report = Report::new(
        "serve_latency",
        "vmr-serve per-request latency over loopback TCP",
        &["op", "requests", "p50_us", "p90_us", "p99_us", "max_us"],
    );
    report.meta("preset", preset);
    report.meta("mnl", mnl as u64);

    // Delta ingest (VM create/delete pairs keep the population stable).
    let mut lat = Vec::new();
    for i in 0..requests {
        let t = Instant::now();
        let d = client
            .apply_delta(
                "lat",
                ClusterDelta::VmCreate {
                    cpu: 2 + (i as u32 % 4) * 2,
                    mem: 4,
                    numa: NumaPolicy::Single,
                },
            )
            .expect("create delta");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        let vm = vmr_sim::types::VmId(d.created_vm.expect("created"));
        let t = Instant::now();
        client.apply_delta("lat", ClusterDelta::VmDelete { vm }).expect("delete delta");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    emit_row(&mut report, "apply_delta", &mut lat);

    // Per-policy plan latency; fresh seeds defeat the coalescing cache so
    // every request runs its policy.
    for policy in ["ha", "agent", "swap"] {
        let mut lat = Vec::new();
        for i in 0..requests {
            let t = Instant::now();
            client
                .plan(PlanParams {
                    session: "lat".into(),
                    policy: policy.into(),
                    mnl,
                    seed: 1000 + i as u64,
                    budget_ms: 200,
                    shards: 0,
                    workers: 0,
                    precision: PrecisionConfig::Exact64,
                    commit: false,
                })
                .expect("plan");
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        emit_row(&mut report, &format!("plan_{policy}"), &mut lat);
    }

    // Cached plans: identical parameters, answered from one invocation.
    let mut lat = Vec::new();
    for _ in 0..requests {
        let t = Instant::now();
        client
            .plan(PlanParams {
                session: "lat".into(),
                policy: "ha".into(),
                mnl,
                seed: 0,
                budget_ms: 200,
                shards: 0,
                workers: 0,
                precision: PrecisionConfig::Exact64,
                commit: false,
            })
            .expect("plan");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    emit_row(&mut report, "plan_ha_cached", &mut lat);

    let stats = client.stats("").expect("stats");
    report.meta("plans_served", stats.plans_served);
    report.meta("plans_computed", stats.plans_computed);
    report.emit();
    drop(client);
    handle.shutdown();
}

fn emit_row(report: &mut Report, op: &str, lat: &mut [f64]) {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let max = lat.last().copied().unwrap_or(0.0);
    report.row(vec![
        json!(op),
        json!(lat.len()),
        json!(percentile(lat, 0.5).round()),
        json!(percentile(lat, 0.9).round()),
        json!(percentile(lat, 0.99).round()),
        json!(max.round()),
    ]);
}
