//! Fig. 18 — the Large dataset (§5.6.4): FR and inference time at high
//! MNLs for HA, POP, Decima, NeuPlan, and VMR2L. The exact solver is
//! excluded, as in the paper (it exceeds an hour per mapping).

use std::time::Instant;

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_baselines::neuplan::{neuplan_solve, NeuPlanConfig};
use vmr_bench::{mappings, parse_args, scaled_config, solver_budget, AgentSpec, Report, RunMode};
use vmr_core::config::ExtractorKind;
use vmr_core::eval::{greedy_eval, risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::SolverConfig;
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    let cfg = scaled_config(&ClusterConfig::large(), args.mode);
    let train_states = mappings(&cfg, 4, args.seed).expect("train");
    let eval_states = mappings(&cfg, 2, args.seed + 1000).expect("eval");
    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![3],
        RunMode::Default => vec![10, 20, 30],
        RunMode::Full => vec![50, 100, 150, 200],
    };
    let max_mnl = *mnls.last().expect("non-empty");

    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    spec.train.updates = args.updates.unwrap_or(spec.train.updates / 2).max(1);
    spec.train.mnl = max_mnl.min(16);
    eprintln!("training VMR2L on the large cluster ({} PMs)...", cfg.num_pms());
    let (vmr2l, _) = vmr_bench::train_agent(&spec, train_states.clone(), vec![], Some(&cfg.name))
        .expect("train");
    let mut dspec = spec.clone();
    dspec.extractor = ExtractorKind::VanillaAttention;
    dspec.pm_subset = Some(8);
    eprintln!("training Decima...");
    let (decima, _) =
        vmr_bench::train_agent(&dspec, train_states, vec![], Some(&cfg.name)).expect("train");

    let mut report = Report::new(
        "fig18_large",
        "Fig. 18: Large dataset — FR and time at high MNLs",
        &["mnl", "method", "fr", "time_s"],
    );
    report.meta("pms", eval_states[0].num_pms());
    report.meta("vms", eval_states[0].num_vms());
    report.meta(
        "initial_fr",
        eval_states.iter().map(|s| s.fragment_rate(16)).sum::<f64>() / eval_states.len() as f64,
    );
    for &mnl in &mnls {
        let mut rows: Vec<(&str, f64, f64)> = Vec::new();
        for state in &eval_states {
            let cs = ConstraintSet::new(state.num_vms());
            let r = ha_solve(state, &cs, Objective::default(), mnl);
            rows.push(("HA", r.objective, r.elapsed.as_secs_f64()));
            let r = pop_solve(
                state,
                &cs,
                Objective::default(),
                mnl,
                &PopConfig {
                    partitions: if args.mode == RunMode::Full { 16 } else { 4 },
                    sub: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(24),
                        ..Default::default()
                    },
                    seed: args.seed,
                },
            );
            rows.push(("POP", r.objective, r.elapsed.as_secs_f64()));
            let t0 = Instant::now();
            let (fr, _) =
                greedy_eval(&decima, state, &cs, Objective::default(), mnl).expect("decima");
            rows.push(("Decima", fr, t0.elapsed().as_secs_f64()));
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
            let r = neuplan_solve(
                &vmr2l,
                state,
                &cs,
                Objective::default(),
                mnl,
                &NeuPlanConfig {
                    beta: (mnl / 3).max(1),
                    solver: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(16),
                        ..Default::default()
                    },
                },
                &mut rng,
            )
            .expect("neuplan");
            rows.push(("NeuPlan", r.objective, r.elapsed.as_secs_f64()));
            let r = risk_seeking_eval(
                &vmr2l,
                state,
                &cs,
                Objective::default(),
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("vmr2l");
            rows.push(("VMR2L", r.best_objective, r.elapsed.as_secs_f64()));
        }
        for m in ["HA", "POP", "Decima", "NeuPlan", "VMR2L"] {
            let sel: Vec<_> = rows.iter().filter(|r| r.0 == m).collect();
            let n = sel.len() as f64;
            report.row(vec![
                json!(mnl),
                json!(m),
                json!(sel.iter().map(|r| r.1).sum::<f64>() / n),
                json!(sel.iter().map(|r| r.2).sum::<f64>() / n),
            ]);
        }
        eprintln!("mnl {mnl} done");
    }
    report.emit();
}
