//! Fig. 19 — FR on the Low and Middle workload datasets across MNLs
//! (§5.6.5): HA plateaus at high MNL while POP and VMR2L keep improving.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{mappings, parse_args, scaled_config, solver_budget, AgentSpec, Report, RunMode};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::ClusterConfig;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::SolverConfig;
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    let panels = [
        ("low", scaled_config(&ClusterConfig::workload_low(), args.mode)),
        ("mid", scaled_config(&ClusterConfig::workload_mid(), args.mode)),
    ];
    let mnls: Vec<usize> = match args.mode {
        RunMode::Smoke => vec![2, 4],
        RunMode::Default => vec![5, 10, 15, 20],
        RunMode::Full => vec![25, 50, 75, 100],
    };
    let mut report = Report::new(
        "fig19_workload_mnl",
        "Fig. 19: FR on low/middle workloads across MNLs",
        &["workload", "mnl", "ha_fr", "pop_fr", "vmr2l_fr"],
    );
    for (name, cfg) in panels {
        let train_states = mappings(&cfg, 4, args.seed).expect("train");
        let eval_states = mappings(&cfg, 2, args.seed + 1000).expect("eval");
        let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
        spec.train.updates = args.updates.unwrap_or(spec.train.updates / 2).max(1);
        spec.train.mnl = (*mnls.last().unwrap()).min(16);
        eprintln!("training on {name} workload...");
        let (agent, _) =
            vmr_bench::train_agent(&spec, train_states, vec![], Some(&format!("fig19_{name}")))
                .expect("train");
        for &mnl in &mnls {
            let mut ha = 0.0;
            let mut pop = 0.0;
            let mut vmr = 0.0;
            for state in &eval_states {
                let cs = ConstraintSet::new(state.num_vms());
                ha += ha_solve(state, &cs, Objective::default(), mnl).objective;
                pop += pop_solve(
                    state,
                    &cs,
                    Objective::default(),
                    mnl,
                    &PopConfig {
                        partitions: 4,
                        sub: SolverConfig {
                            time_limit: solver_budget(args.mode),
                            beam_width: Some(24),
                            ..Default::default()
                        },
                        seed: args.seed,
                    },
                )
                .objective;
                vmr += risk_seeking_eval(
                    &agent,
                    state,
                    &cs,
                    Objective::default(),
                    mnl,
                    &RiskSeekingConfig {
                        trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
                        seed: args.seed,
                        ..Default::default()
                    },
                )
                .expect("eval")
                .best_objective;
            }
            let n = eval_states.len() as f64;
            report.row(vec![
                json!(name),
                json!(mnl),
                json!(ha / n),
                json!(pop / n),
                json!(vmr / n),
            ]);
            eprintln!("{name} mnl {mnl} done");
        }
    }
    report.emit();
}
