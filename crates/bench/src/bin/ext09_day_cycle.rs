//! Ext. 9 — the full daily operational loop (Figs. 1–3, end-to-end).
//!
//! Continuous best-fit VMS under diurnal churn, with one off-peak VMR
//! window per day, comparing planners: none (fragments accumulate), HA,
//! and a trained VMR2L agent (greedy deployment). Reports the mean
//! fragment rate over the whole series, the mean FR drop per VMR
//! window, and footnote-7 drop counts — the operator's view the paper's
//! introduction paints.

use serde_json::json;
use vmr_baselines::ha::ha_solve;
use vmr_bench::{
    mappings, parse_args, train_agent, train_cluster_config, AgentSpec, Report, RunMode,
};
use vmr_core::eval::greedy_eval;
use vmr_sim::cluster::ClusterState;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::VmMix;
use vmr_sim::daycycle::{run_day_cycle, DayCycleConfig};
use vmr_sim::env::Action;
use vmr_sim::objective::Objective;
use vmr_sim::trace::DiurnalModel;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = parse_args();
    let cluster_cfg = train_cluster_config(args.mode);
    let initial = &mappings(&cluster_cfg, 1, args.seed).expect("mapping")[0];
    let obj = Objective::default();

    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    let train_states = mappings(&cluster_cfg, 8, args.seed).expect("train mappings");
    let (agent, _) =
        train_agent(&spec, train_states, vec![], Some(&cluster_cfg.name)).expect("train");

    let mut cycle_cfg = DayCycleConfig::new(VmMix::standard());
    cycle_cfg.mnl = args.mnl.unwrap_or(match args.mode {
        RunMode::Smoke => 4,
        _ => 15,
    });
    match args.mode {
        RunMode::Smoke => {
            cycle_cfg.days = 1;
            cycle_cfg.sample_every = 120;
            cycle_cfg.model = DiurnalModel { base_rate: 0.5, amplitude: 0.5, peak_minute: 840 };
            cycle_cfg.exit_frac = 0.0005;
        }
        _ => {
            cycle_cfg.days = 3;
            cycle_cfg.sample_every = 30;
            // Churn scaled to the 40-PM training cluster: the exit rate
            // is proportional to population, so the equilibrium sits at
            // base_rate / exit_frac ≈ 285 VMs — the cluster neither
            // drains nor saturates over the simulated days.
            cycle_cfg.model = DiurnalModel { base_rate: 1.0, amplitude: 0.6, peak_minute: 840 };
            cycle_cfg.exit_frac = 0.0035;
        }
    }

    let mut report = Report::new(
        "ext09_day_cycle",
        "Ext. 9: daily VMS churn + off-peak VMR windows",
        &[
            "planner",
            "mean_fr",
            "mean_population",
            "mean_window_drop",
            "applied_per_window",
            "dropped_per_window",
        ],
    );
    report.meta("mode", format!("{:?}", args.mode));
    report.meta("days", cycle_cfg.days);
    report.meta("mnl", cycle_cfg.mnl);

    type Planner<'a> = Box<dyn FnMut(&ClusterState, usize) -> Vec<Action> + 'a>;
    let planners: Vec<(&str, Planner)> = vec![
        ("none", Box::new(|_: &ClusterState, _| Vec::new())),
        (
            "ha",
            Box::new(move |s: &ClusterState, mnl: usize| {
                ha_solve(s, &ConstraintSet::new(s.num_vms()), obj, mnl).plan
            }),
        ),
        (
            "vmr2l",
            Box::new(move |s: &ClusterState, mnl: usize| {
                let cs = ConstraintSet::new(s.num_vms());
                greedy_eval(&agent, s, &cs, obj, mnl).map(|(_, plan)| plan).unwrap_or_default()
            }),
        ),
    ];

    let trials: u64 = match args.mode {
        RunMode::Smoke => 1,
        _ => 5,
    };
    report.meta("trials", trials);
    for (label, mut planner) in planners {
        let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0);
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(args.seed ^ 0xda11 ^ (trial * 7919));
            let out =
                run_day_cycle(initial, &mut planner, &cycle_cfg, &mut rng).expect("day cycle");
            let windows = out.windows.len().max(1) as f64;
            let applied: usize = out.windows.iter().map(|w| w.applied).sum();
            let dropped: usize = out.windows.iter().map(|w| w.dropped).sum();
            // A defragmented cluster admits more arrivals, so its
            // population (and utilization) runs higher — which
            // mechanically raises the FR ratio. Report population
            // alongside FR so the comparison is read correctly: the
            // business win is VMs hosted, not raw FR.
            let mean_population = out.samples.iter().map(|s| s.population as f64).sum::<f64>()
                / out.samples.len().max(1) as f64;
            acc.0 += out.mean_fr();
            acc.1 += mean_population;
            acc.2 += out.mean_window_drop();
            acc.3 += applied as f64 / windows;
            acc.4 += dropped as f64 / windows;
        }
        let n = trials as f64;
        report.row(vec![
            json!(label),
            json!(acc.0 / n),
            json!(acc.1 / n),
            json!(acc.2 / n),
            json!(acc.3 / n),
            json!(acc.4 / n),
        ]);
        eprintln!("{label} done (mean FR {:.4})", acc.0 / n);
    }
    report.emit();
}
