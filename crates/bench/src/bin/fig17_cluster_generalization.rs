//! Fig. 17 — generalization to different cluster sizes (§5.6.3): the agent
//! trained on one cluster is deployed on clusters with ±PM-count deltas;
//! reported as the ratio of "potential FR" achieved (initial − achieved)
//! / (initial − MIP), vs POP.

use serde_json::json;
use vmr_bench::{
    mappings, parse_args, solver_budget, train_agent, train_cluster_config, AgentSpec, Report,
    RunMode,
};
use vmr_core::eval::{risk_seeking_eval, RiskSeekingConfig};
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};
use vmr_solver::pop::{pop_solve, PopConfig};

fn main() {
    let args = parse_args();
    let base_cfg = train_cluster_config(args.mode);
    let train_states = mappings(&base_cfg, 6, args.seed).expect("train");
    let mnl = args.mnl.unwrap_or(if args.mode == RunMode::Smoke { 3 } else { 8 });
    let mut spec = AgentSpec::vmr2l(args.mode, args.seed);
    if let Some(u) = args.updates {
        spec.train.updates = u;
    }
    spec.train.mnl = mnl;
    eprintln!("training on {} PMs...", base_cfg.num_pms());
    let (agent, _) =
        train_agent(&spec, train_states, vec![], Some(&format!("{}_fig17", base_cfg.name)))
            .expect("train");

    let factors: Vec<f64> = match args.mode {
        RunMode::Smoke => vec![1.0, 1.3],
        _ => vec![0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4],
    };
    let mut report = Report::new(
        "fig17_cluster_generalization",
        "Fig. 17: potential-FR ratio on clusters of different sizes",
        &["pm_factor", "pms", "initial_fr", "mip_fr", "vmr2l_ratio", "pop_ratio"],
    );
    report.meta("trained_pms", base_cfg.num_pms());
    report.meta("mnl", mnl);
    for &f in &factors {
        let cfg = base_cfg.scaled_pms(f);
        let states = mappings(&cfg, 2, args.seed + 2000 + (f * 100.0) as u64).expect("eval");
        let mut init = 0.0;
        let mut mip = 0.0;
        let mut vmr = 0.0;
        let mut pop = 0.0;
        for state in &states {
            let cs = ConstraintSet::new(state.num_vms());
            init += state.fragment_rate(16);
            mip += branch_and_bound(
                state,
                &cs,
                Objective::default(),
                mnl,
                &SolverConfig {
                    time_limit: solver_budget(args.mode) * 2,
                    beam_width: Some(32),
                    ..Default::default()
                },
            )
            .objective;
            vmr += risk_seeking_eval(
                &agent,
                state,
                &cs,
                Objective::default(),
                mnl,
                &RiskSeekingConfig {
                    trajectories: if args.mode == RunMode::Smoke { 2 } else { 6 },
                    seed: args.seed,
                    ..Default::default()
                },
            )
            .expect("eval")
            .best_objective;
            pop += pop_solve(
                state,
                &cs,
                Objective::default(),
                mnl,
                &PopConfig {
                    partitions: 4,
                    sub: SolverConfig {
                        time_limit: solver_budget(args.mode),
                        beam_width: Some(24),
                        ..Default::default()
                    },
                    seed: args.seed,
                },
            )
            .objective;
        }
        let n = states.len() as f64;
        let (init, mip, vmr, pop) = (init / n, mip / n, vmr / n, pop / n);
        let potential = (init - mip).max(1e-9);
        report.row(vec![
            json!(f),
            json!(cfg.num_pms()),
            json!(init),
            json!(mip),
            json!(((init - vmr) / potential * 1000.0).round() / 1000.0),
            json!(((init - pop) / potential * 1000.0).round() / 1000.0),
        ]);
        eprintln!("factor {f} done");
    }
    report.emit();
}
