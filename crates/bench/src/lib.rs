//! # vmr-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). All binaries share this library: run-mode scaling, dataset
//! generation, agent training/caching, and report emission.
//!
//! ## Run modes
//!
//! The paper's experiments were run on a GPU server against production
//! traces; this harness scales them to the host it runs on:
//!
//! * `--smoke` — seconds-scale CI mode: tiny clusters, one or two updates.
//! * default — laptop-scale: clusters at ~25% of paper PM counts, enough
//!   training to show the qualitative shapes.
//! * `--full` — paper-scale cluster sizes (slow on CPU; documented in
//!   EXPERIMENTS.md).
//!
//! Every binary prints a table to stdout and writes machine-readable JSON
//! under `results/`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod cli;
pub mod diff;
pub mod report;
pub mod setup;

pub use cli::{parse_args, BenchArgs, RunMode};
pub use report::Report;
pub use setup::{
    build_agent, mappings, scaled_config, solver_budget, synthesize_affinity, train_agent,
    train_cluster_config, AgentSpec,
};
