//! Bench-capture comparison: the library behind the `bench_diff` binary.
//!
//! A capture is either a `BENCH_*.json` object (`{"results": [{"id": ...,
//! "median_ns": ...}, ...]}`) or the raw JSON-lines stream the criterion
//! shim appends under `VMR_BENCH_JSON`. Two captures are compared by
//! benchmark id; ids present in only one capture are reported but never
//! fail the gate. The gate fails on any shared id whose median regressed
//! by more than the threshold (default 25%).

use std::collections::BTreeMap;

use serde_json::Value;

/// Median (ns) per benchmark id.
pub type Capture = BTreeMap<String, f64>;

/// Comparison of one shared benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Benchmark id, e.g. `simulator/pm_mask/medium_280pm`.
    pub id: String,
    /// Median in the old capture (ns).
    pub old_ns: f64,
    /// Median in the new capture (ns).
    pub new_ns: f64,
}

impl DiffEntry {
    /// `new / old` — values above 1 are slower.
    pub fn ratio(&self) -> f64 {
        if self.old_ns > 0.0 {
            self.new_ns / self.old_ns
        } else {
            f64::INFINITY
        }
    }

    /// Whether this entry regressed beyond `threshold` (0.25 = +25%).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Result of comparing two captures.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Shared ids, in id order.
    pub entries: Vec<DiffEntry>,
    /// Ids only in the old capture (removed benchmarks).
    pub only_old: Vec<String>,
    /// Ids only in the new capture (added benchmarks).
    pub only_new: Vec<String>,
}

impl BenchDiff {
    /// Compares two captures by id.
    pub fn compare(old: &Capture, new: &Capture) -> Self {
        let mut diff = BenchDiff::default();
        for (id, &old_ns) in old {
            match new.get(id) {
                Some(&new_ns) => {
                    diff.entries.push(DiffEntry { id: id.clone(), old_ns, new_ns });
                }
                None => diff.only_old.push(id.clone()),
            }
        }
        for id in new.keys() {
            if !old.contains_key(id) {
                diff.only_new.push(id.clone());
            }
        }
        diff
    }

    /// Shared entries that regressed beyond `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regressed(threshold)).collect()
    }

    /// Shared entries that regressed beyond their *per-family* threshold.
    pub fn regressions_with(&self, thresholds: &Thresholds) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regressed(thresholds.for_id(&e.id))).collect()
    }

    /// Per-family override names matching no *compared* (shared) id —
    /// a typo'd `--threshold-for` family would otherwise be silently
    /// ignored, leaving the noisy family on the tight default gate.
    pub fn unmatched_families<'a>(&self, thresholds: &'a Thresholds) -> Vec<&'a str> {
        let compared: std::collections::BTreeSet<&str> =
            self.entries.iter().map(|e| family(&e.id)).collect();
        thresholds.per_family.keys().map(String::as_str).filter(|f| !compared.contains(f)).collect()
    }
}

/// Benchmark family of an id: the first `/`-separated segment, so
/// `policy_forward/medium_280pm` and `policy_forward/xxl` share the
/// `policy_forward` gate.
pub fn family(id: &str) -> &str {
    id.split('/').next().unwrap_or(id)
}

/// Regression gate with per-family overrides. Noisy families (sub-µs
/// kernels, allocator-bound paths) can carry a looser gate than the
/// default without loosening it for everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Gate for families without an override (0.25 = +25%).
    pub default: f64,
    /// Per-family overrides, keyed by [`family`] name.
    pub per_family: BTreeMap<String, f64>,
}

impl Thresholds {
    /// Uniform gate with no overrides.
    pub fn uniform(default: f64) -> Self {
        Thresholds { default, per_family: BTreeMap::new() }
    }

    /// Gate applying to benchmark `id`.
    pub fn for_id(&self, id: &str) -> f64 {
        self.per_family.get(family(id)).copied().unwrap_or(self.default)
    }
}

/// A within-capture ratio gate: `median(num_id) <= max * median(den_id)`,
/// evaluated against the NEW capture only. This is how CI prices paired
/// benchmarks whose absolute medians drift with the host — e.g. the
/// instrumentation-overhead gate holding
/// `telemetry_overhead/decide_enabled_* / .../decide_disabled_*` under
/// 1.03 regardless of what the machine was doing that day.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioGate {
    /// Numerator benchmark id (the instrumented / expensive side).
    pub num_id: String,
    /// Denominator benchmark id (the baseline side).
    pub den_id: String,
    /// Largest acceptable `num / den` (1.03 = +3%).
    pub max: f64,
}

impl RatioGate {
    /// Parses the `--max-ratio` argument form `NUM_ID:DEN_ID=R`.
    pub fn parse(spec: &str) -> Option<RatioGate> {
        let (ids, max) = spec.rsplit_once('=')?;
        let max = max.parse::<f64>().ok()?;
        let (num_id, den_id) = ids.split_once(':')?;
        (!num_id.is_empty() && !den_id.is_empty() && max > 0.0).then(|| RatioGate {
            num_id: num_id.to_string(),
            den_id: den_id.to_string(),
            max,
        })
    }

    /// Evaluates this gate against `capture`; `Err` when either id is
    /// absent (a gate comparing nothing must not pass vacuously).
    pub fn check(&self, capture: &Capture) -> Result<RatioCheck, String> {
        let lookup = |id: &str| {
            capture.get(id).copied().ok_or_else(|| format!("ratio gate id {id:?} not in capture"))
        };
        Ok(RatioCheck {
            num_ns: lookup(&self.num_id)?,
            den_ns: lookup(&self.den_id)?,
            gate: self.clone(),
        })
    }
}

/// Outcome of evaluating one [`RatioGate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RatioCheck {
    /// The gate evaluated.
    pub gate: RatioGate,
    /// Numerator median (ns).
    pub num_ns: f64,
    /// Denominator median (ns).
    pub den_ns: f64,
}

impl RatioCheck {
    /// `num / den` (infinite when the denominator is 0).
    pub fn ratio(&self) -> f64 {
        if self.den_ns > 0.0 {
            self.num_ns / self.den_ns
        } else {
            f64::INFINITY
        }
    }

    /// Whether the measured ratio is within the gate.
    pub fn passed(&self) -> bool {
        self.ratio() <= self.gate.max
    }
}

/// Parses a capture from either the wrapped-object or JSON-lines format.
/// Entries missing `id` or `median_ns` are skipped; duplicate ids keep the
/// last value (matches the shim's append semantics).
pub fn parse_capture(text: &str) -> Result<Capture, String> {
    // Wrapped object with a "results" array?
    if let Ok(value) = serde_json::from_str::<Value>(text) {
        if let Some(results) = value.get("results").and_then(Value::as_array) {
            return Ok(collect_entries(results.iter()));
        }
        if value.get("id").is_some() {
            // A single JSON-line file that happens to parse whole.
            return Ok(collect_entries(std::iter::once(&value)));
        }
    }
    // JSON-lines stream.
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Value =
            serde_json::from_str(line).map_err(|e| format!("bad capture line {line:?}: {e:?}"))?;
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("capture contains no benchmark entries".into());
    }
    Ok(collect_entries(rows.iter()))
}

fn collect_entries<'a>(rows: impl Iterator<Item = &'a Value>) -> Capture {
    let mut capture = Capture::new();
    for row in rows {
        let (Some(id), Some(median)) =
            (row.get("id").and_then(Value::as_str), row.get("median_ns").and_then(Value::as_f64))
        else {
            continue;
        };
        capture.insert(id.to_string(), median);
    }
    capture
}

/// Human-readable nanosecond formatting (matches the criterion shim).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(pairs: &[(&str, f64)]) -> Capture {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn parse_wrapped_object() {
        let text = r#"{
            "captured": "2026-01-01",
            "results": [
                {"id": "a/b", "median_ns": 10.0, "min_ns": 9.0},
                {"id": "c/d", "median_ns": 20.5}
            ]
        }"#;
        let c = parse_capture(text).unwrap();
        assert_eq!(c, cap(&[("a/b", 10.0), ("c/d", 20.5)]));
    }

    #[test]
    fn parse_json_lines() {
        let text = "{\"id\": \"a\", \"median_ns\": 1.0}\n{\"id\": \"b\", \"median_ns\": 2.0}\n";
        let c = parse_capture(text).unwrap();
        assert_eq!(c, cap(&[("a", 1.0), ("b", 2.0)]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_capture("not json").is_err());
        assert!(parse_capture("").is_err());
    }

    #[test]
    fn duplicate_ids_keep_last() {
        let text = "{\"id\": \"a\", \"median_ns\": 1.0}\n{\"id\": \"a\", \"median_ns\": 3.0}\n";
        let c = parse_capture(text).unwrap();
        assert_eq!(c, cap(&[("a", 3.0)]));
    }

    #[test]
    fn compare_classifies_ids() {
        let old = cap(&[("shared", 100.0), ("removed", 5.0)]);
        let new = cap(&[("shared", 110.0), ("added", 7.0)]);
        let diff = BenchDiff::compare(&old, &new);
        assert_eq!(diff.entries.len(), 1);
        assert_eq!(diff.only_old, vec!["removed".to_string()]);
        assert_eq!(diff.only_new, vec!["added".to_string()]);
        assert!((diff.entries[0].ratio() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn regression_gate_uses_threshold() {
        let old = cap(&[("fast", 100.0), ("slow", 100.0), ("improved", 100.0)]);
        let new = cap(&[("fast", 120.0), ("slow", 130.0), ("improved", 10.0)]);
        let diff = BenchDiff::compare(&old, &new);
        let regressions = diff.regressions(0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "slow");
        // A tighter gate catches both.
        assert_eq!(diff.regressions(0.1).len(), 2);
    }

    #[test]
    fn per_family_thresholds_override_the_default() {
        let old = cap(&[("policy_forward/medium", 100.0), ("simulator/pm_mask", 100.0)]);
        let new = cap(&[("policy_forward/medium", 140.0), ("simulator/pm_mask", 140.0)]);
        let diff = BenchDiff::compare(&old, &new);
        // Uniform 25% gate flags both...
        assert_eq!(diff.regressions_with(&Thresholds::uniform(0.25)).len(), 2);
        // ...a 50% override on policy_forward exempts only that family.
        let mut t = Thresholds::uniform(0.25);
        t.per_family.insert("policy_forward".into(), 0.5);
        let r = diff.regressions_with(&t);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, "simulator/pm_mask");
        // Overrides can also tighten below the default.
        let mut tight = Thresholds::uniform(0.5);
        tight.per_family.insert("simulator".into(), 0.1);
        let r = diff.regressions_with(&tight);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, "simulator/pm_mask");
    }

    #[test]
    fn unmatched_override_families_are_reported() {
        let old = cap(&[("policy_forward/medium", 100.0), ("only_old/x", 5.0)]);
        let new = cap(&[("policy_forward/medium", 110.0), ("only_new/y", 7.0)]);
        let diff = BenchDiff::compare(&old, &new);
        let mut t = Thresholds::uniform(0.25);
        t.per_family.insert("policy_forward".into(), 0.5);
        assert!(diff.unmatched_families(&t).is_empty());
        // A typo'd family matches nothing...
        t.per_family.insert("policy_forwrad".into(), 3.0);
        // ...and so does a family present only on one side (it is never
        // compared, so a gate for it is inert).
        t.per_family.insert("only_new".into(), 3.0);
        assert_eq!(diff.unmatched_families(&t), vec!["only_new", "policy_forwrad"]);
    }

    #[test]
    fn family_is_the_first_segment() {
        assert_eq!(family("policy_forward/medium_280pm"), "policy_forward");
        assert_eq!(family("bare_id"), "bare_id");
    }

    #[test]
    fn ratio_gate_parses_the_cli_form() {
        let g = RatioGate::parse("a/enabled:a/disabled=1.03").unwrap();
        assert_eq!(g.num_id, "a/enabled");
        assert_eq!(g.den_id, "a/disabled");
        assert!((g.max - 1.03).abs() < 1e-12);
        for bad in ["a:b", "a=1.0", ":b=1.0", "a:=1.0", "a:b=zero", "a:b=0"] {
            assert!(RatioGate::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn ratio_gate_checks_within_one_capture() {
        let capture = cap(&[("t/enabled", 102.0), ("t/disabled", 100.0)]);
        let gate = RatioGate::parse("t/enabled:t/disabled=1.03").unwrap();
        let check = gate.check(&capture).unwrap();
        assert!((check.ratio() - 1.02).abs() < 1e-12);
        assert!(check.passed());
        let tight = RatioGate::parse("t/enabled:t/disabled=1.01").unwrap();
        assert!(!tight.check(&capture).unwrap().passed());
    }

    #[test]
    fn ratio_gate_missing_id_is_an_error_not_a_pass() {
        let capture = cap(&[("t/enabled", 102.0)]);
        let gate = RatioGate::parse("t/enabled:t/disabled=1.03").unwrap();
        assert!(gate.check(&capture).is_err());
        let gate = RatioGate::parse("t/gone:t/enabled=1.03").unwrap();
        assert!(gate.check(&capture).is_err());
    }

    #[test]
    fn ratio_gate_zero_denominator_fails() {
        let capture = cap(&[("n", 1.0), ("d", 0.0)]);
        let gate = RatioGate::parse("n:d=1000").unwrap();
        assert!(!gate.check(&capture).unwrap().passed());
    }

    #[test]
    fn zero_old_median_counts_as_regression() {
        let old = cap(&[("a", 0.0)]);
        let new = cap(&[("a", 1.0)]);
        let diff = BenchDiff::compare(&old, &new);
        assert!(diff.entries[0].regressed(0.25));
    }
}
