//! The PR 8 acceptance pair: instrumented hot paths with telemetry
//! enabled vs disabled. Each pair runs the *same* code — only the
//! process-wide [`vmr_telemetry::set_enabled`] flag differs — so the
//! ratio prices exactly the observability tax: clock reads plus
//! lock-free histogram records on the spans the serve daemon and the
//! decision path emit. The `bench_diff --max-ratio` CI gate holds
//! `enabled / disabled` under 1.03 for both pairs.
//!
//! The disabled id of each pair runs first so a daemon boot (which sets
//! the flag per its config) can never leak an enabled flag into the
//! disabled measurement.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::agent::{DecideOpts, InferCtx, Vmr2lAgent};
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig, PrecisionConfig};
use vmr_core::model::Vmr2lModel;
use vmr_serve::client::ServeClient;
use vmr_serve::proto::PlanParams;
use vmr_serve::server::{serve, ServerConfig};
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;

fn bench_decide_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let state = generate_mapping(&ClusterConfig::medium(), 7).expect("mapping");
    let mut rng = StdRng::seed_from_u64(0);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    let agent = Vmr2lAgent::new(model, ActionMode::TwoStage);
    let mut env = ReschedEnv::unconstrained(state, Objective::default(), 64).expect("env");
    let _ = env.observe(); // warm the incremental engine
    let opts = DecideOpts::default();
    let mut ictx = InferCtx::new();

    for (id, enabled) in
        [("decide_disabled_medium_280pm", false), ("decide_enabled_medium_280pm", true)]
    {
        vmr_telemetry::set_enabled(enabled);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(id, |b| {
            b.iter(|| {
                black_box(agent.act(&mut env, &mut ictx, &mut rng, &opts).unwrap());
            })
        });
    }
    vmr_telemetry::set_enabled(false);
    group.finish();
}

fn bench_serve_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    // Uncached HA plans (fresh seed each round trip) against a Medium
    // session: the request walks every instrumented serve phase — frame
    // decode, session lock, plan compute, response write.
    for (id, enabled) in [("serve_plan_disabled", false), ("serve_plan_enabled", true)] {
        let handle = serve(ServerConfig { threads: 2, telemetry: enabled, ..Default::default() })
            .expect("daemon");
        let mut client = ServeClient::connect(handle.addr()).expect("connect");
        client.create_session("bench", "medium", 0, 8).expect("create");
        let mut seed = 1u64;
        group.bench_function(id, |b| {
            b.iter(|| {
                seed += 1;
                let params = PlanParams {
                    session: "bench".into(),
                    policy: "ha".into(),
                    mnl: 2,
                    seed,
                    budget_ms: 50,
                    shards: 0,
                    workers: 0,
                    precision: PrecisionConfig::Exact64,
                    commit: false,
                };
                black_box(client.plan(params).expect("plan")).plan.len()
            })
        });
        drop(client);
        handle.shutdown();
    }
    vmr_telemetry::set_enabled(false);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decide_pair, bench_serve_pair
}
criterion_main!(benches);
