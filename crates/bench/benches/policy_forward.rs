//! Criterion benches of the policy forward pass: the autodiff `Graph`
//! engine vs the tape-free `FwdCtx` engine (identical outputs, see
//! `prop_fwdctx`), plus the kernel-level pairs behind the PR 4 satellite
//! fixes — dense-vs-zero-skip matmul on dense and sparse inputs, and the
//! transpose-free `A·Bᵀ` score kernel vs materializing the transpose.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmr_core::agent::Policy;
use vmr_core::config::{ExtractorKind, ModelConfig};
use vmr_core::features::{FeatureTensors, TreeIndex};
use vmr_core::model::{Vmr2lModel, Vmr2lModelF32};
use vmr_nn::graph::Graph;
use vmr_nn::infer::FwdCtx;
use vmr_nn::infer32::FwdCtx32;
use vmr_nn::kernels::{matmul_into, matmul_nt_into, matmul_sparse_into};
use vmr_nn::tensor::Tensor;
use vmr_sim::dataset::{generate_mapping, ClusterConfig, PmGroup};
use vmr_sim::obs::Observation;

fn feats_for(pms: usize) -> FeatureTensors {
    let cfg = ClusterConfig {
        pm_groups: vec![PmGroup { count: pms, cpu_per_numa: 44, mem_per_numa: 128 }],
        ..ClusterConfig::small_train()
    };
    let state = generate_mapping(&cfg, 11).expect("mapping");
    FeatureTensors::from_observation(&Observation::extract(&state, 16))
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_forward");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    for pms in [40usize, 80] {
        let feats = feats_for(pms);
        let mut tree = TreeIndex::new();
        tree.rebuild(&feats);
        group.bench_with_input(
            BenchmarkId::new("stage1_graph", format!("{pms}pm_{}vm", feats.num_vms)),
            &feats,
            |b, f| {
                b.iter(|| {
                    let mut g = Graph::new();
                    black_box(model.stage1(&mut g, f));
                })
            },
        );
        let mut ctx = FwdCtx::new();
        group.bench_with_input(
            BenchmarkId::new("stage1_fwd", format!("{pms}pm_{}vm", feats.num_vms)),
            &feats,
            |b, f| {
                b.iter(|| {
                    ctx.reset();
                    black_box(model.stage1_fwd(&mut ctx, f, Some(&tree.groups)));
                })
            },
        );
        let mut ctx2 = FwdCtx::new();
        group.bench_with_input(
            BenchmarkId::new("stage1_plus_stage2_fwd", format!("{pms}pm")),
            &feats,
            |b, f| {
                b.iter(|| {
                    ctx2.reset();
                    let s1 = Policy::stage1_fwd(&model, &mut ctx2, f, &tree);
                    black_box(Policy::stage2_fwd(&model, &mut ctx2, &s1, f, 0));
                })
            },
        );
    }
    group.finish();
}

/// The f32/SIMD twin of `policy_forward`: the same stage-1 (and stage-1 +
/// stage-2) forward through [`Vmr2lModelF32`], cast once outside the
/// timed region — the A/B family behind the PR 6 acceptance ratio.
fn bench_engines_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_forward_f32");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    let m32 = Vmr2lModelF32::from_f64(&model);
    for pms in [40usize, 80] {
        let feats = feats_for(pms);
        let mut tree = TreeIndex::new();
        tree.rebuild(&feats);
        let mut ctx = FwdCtx32::new();
        group.bench_with_input(
            BenchmarkId::new("stage1_fwd", format!("{pms}pm_{}vm", feats.num_vms)),
            &feats,
            |b, f| {
                b.iter(|| {
                    ctx.reset();
                    black_box(m32.stage1_fwd(&mut ctx, f, Some(&tree.groups)));
                })
            },
        );
        let mut ctx2 = FwdCtx32::new();
        group.bench_with_input(
            BenchmarkId::new("stage1_plus_stage2_fwd", format!("{pms}pm")),
            &feats,
            |b, f| {
                b.iter(|| {
                    ctx2.reset();
                    let s1 = m32.stage1_fwd(&mut ctx2, f, Some(&tree.groups));
                    black_box(m32.stage2_fwd(&mut ctx2, &s1, 0));
                })
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let k = 256;
    let n = 64;
    // Dense activations × dense weights — the policy's GEMM shape class.
    let dense = Tensor::xavier(k, k, &mut rng);
    let weights = Tensor::xavier(k, n, &mut rng);
    // Masked attention probabilities: ~90 % exact zeros.
    let mut sparse = Tensor::xavier(k, k, &mut rng);
    for v in sparse.data_mut() {
        if rng.gen_bool(0.9) {
            *v = 0.0;
        }
    }
    let mut out = Tensor::zeros(k, n);
    group.bench_function("dense_input_dense_kernel", |b| {
        b.iter(|| matmul_into(black_box(&dense), &weights, &mut out))
    });
    group.bench_function("dense_input_zskip_kernel", |b| {
        b.iter(|| matmul_sparse_into(black_box(&dense), &weights, &mut out))
    });
    group.bench_function("sparse_input_dense_kernel", |b| {
        b.iter(|| matmul_into(black_box(&sparse), &weights, &mut out))
    });
    group.bench_function("sparse_input_zskip_kernel", |b| {
        b.iter(|| matmul_sparse_into(black_box(&sparse), &weights, &mut out))
    });

    // Attention-score shape: Q·Kᵀ with a head-width inner dimension.
    let q = Tensor::xavier(1989, 12, &mut rng);
    let kk = Tensor::xavier(1989, 12, &mut rng);
    let mut scores = Tensor::zeros(1989, 1989);
    group.bench_function("scores_transpose_then_matmul", |b| {
        b.iter(|| black_box(q.matmul(&kk.transpose())))
    });
    group.bench_function("scores_matmul_nt", |b| {
        b.iter(|| matmul_nt_into(black_box(&q), &kk, &mut scores))
    });

    let big = Tensor::xavier(1024, 768, &mut rng);
    group.bench_function("transpose_blocked_1024x768", |b| b.iter(|| black_box(big.transpose())));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_engines_f32, bench_kernels
}
criterion_main!(benches);
