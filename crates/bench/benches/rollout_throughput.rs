//! PPO rollout-collection throughput: the PR 3 pattern (single thread,
//! Graph-based decide) vs the PR 4 episode-indexed collector on the
//! tape-free path at 1 and 4 workers. Each benchmark collects one full
//! rollout of `ROLLOUT_STEPS` transitions, so medians are directly
//! comparable as time-per-rollout.
//!
//! Note: worker scaling beyond the host's core count cannot help — on a
//! single-core runner the 4-worker result measures scheduling overhead
//! only; the old-vs-new gap there comes from the forward engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::agent::{DecideOpts, Vmr2lAgent};
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::model::Vmr2lModel;
use vmr_core::train::{TrainConfig, Trainer};
use vmr_rl::ppo::PpoConfig;
use vmr_sim::cluster::ClusterState;
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;

const ROLLOUT_STEPS: usize = 64;

fn mappings(n: usize) -> Vec<ClusterState> {
    let cfg = ClusterConfig { churn_cycles: 200, ..ClusterConfig::small_train() };
    (0..n).map(|i| generate_mapping(&cfg, 900 + i as u64).expect("mapping")).collect()
}

fn agent() -> Vmr2lAgent<Vmr2lModel> {
    let mut rng = StdRng::seed_from_u64(0);
    Vmr2lAgent::new(
        Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng),
        ActionMode::TwoStage,
    )
}

fn trainer(workers: usize) -> Trainer<Vmr2lModel> {
    let cfg = TrainConfig {
        ppo: PpoConfig { rollout_steps: ROLLOUT_STEPS, ..Default::default() },
        mnl: 4,
        eval_every: 0,
        rollout_workers: workers,
        ..Default::default()
    };
    Trainer::new(agent(), mappings(6), vec![], cfg).expect("trainer")
}

/// The PR 3 collection pattern: one persistent environment, Graph-based
/// decide, sequential episodes.
fn collect_graph_single(a: &Vmr2lAgent<Vmr2lModel>, maps: &[ClusterState], rng: &mut StdRng) {
    let mut collected = 0;
    let mut idx = 0;
    let opts = DecideOpts::default();
    while collected < ROLLOUT_STEPS {
        idx = (idx + 1) % maps.len();
        let mut env =
            ReschedEnv::unconstrained(maps[idx].clone(), Objective::default(), 4).expect("env");
        let mut attempts = 0;
        while !env.is_done() && attempts < 4 && collected < ROLLOUT_STEPS {
            let Some(d) = a.decide_via_graph(&mut env, rng, &opts).expect("decide") else {
                break;
            };
            attempts += 1;
            if env.step(d.action).is_ok() {
                collected += 1;
            }
            black_box(&d.stored_obs);
        }
    }
}

fn bench_rollouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollout_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    let a = agent();
    let maps = mappings(6);
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("graph_single_thread", |b| {
        b.iter(|| collect_graph_single(&a, &maps, &mut rng))
    });

    for workers in [1usize, 4] {
        let mut t = trainer(workers);
        group.bench_function(format!("fwd_workers_{workers}"), |b| {
            b.iter(|| {
                let n = t.collect_rollout().expect("rollout");
                black_box(n);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rollouts
}
criterion_main!(benches);
