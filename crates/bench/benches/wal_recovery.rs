//! Durability-path benches for the `vmr-serve` write-ahead log.
//!
//! `wal_append` prices what every acknowledged mutation now pays before
//! its response: encode + CRC + write + fsync under the default
//! every-record group commit, and the same without the fsync under a
//! 64-record group commit (the acked-but-unsynced crash window trade).
//! `recover_replay` prices a boot: snapshot parse + CRC scan + replay of
//! a populated log into a warm observation engine.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmr_serve::recovery::replay_durable;
use vmr_serve::session::{preset_config, Session};
use vmr_serve::wal::{DurabilityConfig, SessionLog, WalBody};
use vmr_sim::env::ClusterDelta;
use vmr_sim::types::VmId;

const REPLAY_RECORDS: usize = 512;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmr_bench_wal_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A resize toggle: every record is a real, replayable state change.
fn toggle_delta(i: usize) -> ClusterDelta {
    ClusterDelta::VmResize { vm: VmId(0), cpu: if i.is_multiple_of(2) { 1 } else { 2 }, mem: 4 }
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group.sample_size(10);

    // --- Append cost under both fsync policies.
    for (label, sync_every) in [("fsync_every_record", 1usize), ("group_commit_64", 64)] {
        let dir = scratch(label);
        let mut cfg = DurabilityConfig::new(&dir);
        cfg.sync_every = sync_every;
        cfg.snapshot_every = usize::MAX; // isolate the append path
        let mut session =
            Session::from_preset("bench", &preset_config("tiny").unwrap(), 0, 4).expect("session");
        let snapshot = session.snapshot(0);
        let mut log = SessionLog::install(dir.clone(), &cfg, &snapshot, 0).expect("install");
        session.apply_delta(&toggle_delta(0)).expect("warm delta");
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("wal_append", label), |b| {
            b.iter(|| {
                i += 1;
                black_box(log.append(&WalBody::Delta(toggle_delta(i))).expect("append"))
            })
        });
        drop(log);
        let _ = fs::remove_dir_all(&dir);
    }

    // --- Boot cost: replay a populated directory into a warm session.
    let dir = scratch("replay");
    let cfg = DurabilityConfig::new(&dir);
    let mut session =
        Session::from_preset("bench", &preset_config("tiny").unwrap(), 0, 4).expect("session");
    let snapshot = session.snapshot(0);
    let mut log = SessionLog::install(dir.clone(), &cfg, &snapshot, 0).expect("install");
    for i in 0..REPLAY_RECORDS {
        let delta = toggle_delta(i);
        session.apply_delta(&delta).expect("delta");
        log.append(&WalBody::Delta(delta)).expect("append");
    }
    drop(log);
    group.bench_function(
        BenchmarkId::new("recover_replay", format!("tiny_{REPLAY_RECORDS}rec")),
        |b| {
            b.iter(|| {
                let (mut recovered, lsn) = replay_durable("bench", &dir).expect("replay");
                assert_eq!(lsn, REPLAY_RECORDS as u64);
                black_box(recovered.env_mut().observe().num_vms)
            })
        },
    );
    let _ = fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(6));
    targets = bench_wal
}
criterion_main!(benches);
