//! Criterion benches of the simulator substrate's hot paths: migration
//! apply/undo, fragment-rate computation, legality masks, and state
//! featurization — the per-step costs every method in Fig. 9 pays.
//!
//! `observation_extract` measures the *per-step* cost of keeping an
//! up-to-date observation: one migration (alternating apply/undo so the
//! state doesn't drift) plus the incremental `ObsEngine` repair plus the
//! read. `observation_full_rebuild` keeps tracking the old full
//! `Observation::extract` path for comparison; `pm_mask` and
//! `vm_mask_checked` cover the stage-2/stage-1 legality masks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmr_sim::cluster::MigrationRecord;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::obs::Observation;
use vmr_sim::obs_cache::ObsEngine;
use vmr_sim::types::{PmId, VmId};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for (name, cfg) in [
        ("small_40pm", ClusterConfig::small_train()),
        ("medium_280pm", ClusterConfig::medium()),
        // The paper's large-scale setting (beyond the 1176-PM Large
        // dataset): where O(cluster) and O(touched) diverge the most.
        ("large_1600pm", ClusterConfig::xlarge()),
    ] {
        let state = generate_mapping(&cfg, 7).expect("mapping");
        let cs = ConstraintSet::new(state.num_vms());

        group.bench_with_input(BenchmarkId::new("fragment_rate", name), &state, |b, s| {
            b.iter(|| black_box(s.fragment_rate(16)))
        });

        group.bench_with_input(
            BenchmarkId::new("observation_full_rebuild", name),
            &state,
            |b, s| b.iter(|| black_box(Observation::extract(s, 16))),
        );

        // Find one legal migration to measure apply+undo.
        let mut probe = state.clone();
        let mut found = None;
        'outer: for k in 0..probe.num_vms() {
            for i in 0..probe.num_pms() {
                let (vm, pm) = (VmId(k as u32), PmId(i as u32));
                if cs.migration_legal(&probe, vm, pm).is_ok() {
                    found = Some((vm, pm));
                    break 'outer;
                }
            }
        }
        let (vm, pm) = found.expect("some legal move exists");
        group.bench_function(BenchmarkId::new("migrate_undo", name), |b| {
            b.iter(|| {
                let rec = probe.migrate(vm, pm, 16).expect("legal");
                probe.undo(&rec).expect("undo");
            })
        });

        // The per-step observation hot path: a cross-PM migration
        // (alternating apply/undo), the incremental engine repair, and
        // the observation read. This is what one agent decision pays.
        {
            let mut inc_state = state.clone();
            let mut cross = None;
            'cross: for k in 0..inc_state.num_vms() {
                for i in 0..inc_state.num_pms() {
                    let (vm, pm) = (VmId(k as u32), PmId(i as u32));
                    if inc_state.placement(vm).pm == pm {
                        continue;
                    }
                    if cs.migration_legal(&inc_state, vm, pm).is_ok() {
                        cross = Some((vm, pm));
                        break 'cross;
                    }
                }
            }
            let (ivm, ipm) = cross.expect("a cross-PM move exists");
            let mut engine = ObsEngine::new(&inc_state, 16);
            let mut pending: Option<MigrationRecord> = None;
            group.bench_function(BenchmarkId::new("observation_extract", name), |b| {
                b.iter(|| {
                    match pending.take() {
                        None => {
                            let rec = inc_state.migrate(ivm, ipm, 16).expect("legal");
                            engine.note_migration(&inc_state, &rec);
                            pending = Some(rec);
                        }
                        Some(rec) => {
                            inc_state.undo(&rec).expect("undo");
                            engine.note_undo(&inc_state, &rec);
                        }
                    }
                    black_box(engine.observation(&inc_state));
                })
            });
        }

        group.bench_with_input(BenchmarkId::new("pm_mask", name), &state, |b, s| {
            b.iter(|| black_box(cs.pm_mask(s, vm)))
        });

        // Stage-1 mask with the per-VM destination-existence check.
        {
            let mut buf = Vec::new();
            group.bench_with_input(BenchmarkId::new("vm_mask_checked", name), &state, |b, s| {
                b.iter(|| {
                    cs.vm_mask_into(s, true, &mut buf);
                    black_box(buf.len())
                })
            });
        }

        // Find one legal swap pair to measure the atomic exchange.
        let mut swap_pair = None;
        'swap: for a in 0..probe.num_vms().min(64) {
            for b in (a + 1)..probe.num_vms().min(64) {
                let (va, vb) = (VmId(a as u32), VmId(b as u32));
                if probe.placement(va).pm == probe.placement(vb).pm {
                    continue;
                }
                if let Ok(rec) = probe.swap(va, vb, 16) {
                    probe.undo_swap(&rec).expect("undo probe swap");
                    swap_pair = Some((va, vb));
                    break 'swap;
                }
            }
        }
        if let Some((va, vb)) = swap_pair {
            group.bench_function(BenchmarkId::new("swap_undo", name), |b| {
                b.iter(|| {
                    let rec = probe.swap(va, vb, 16).expect("legal swap");
                    probe.undo_swap(&rec).expect("undo swap");
                })
            });
        }

        // Live-migration plan scheduling (pre-copy model, Ext. 1).
        let plan = {
            let mut work = state.clone();
            let mut plan = Vec::new();
            'fill: for k in 0..work.num_vms() {
                for i in 0..work.num_pms() {
                    let (vm, pm) = (VmId(k as u32), PmId(i as u32));
                    if work.placement(vm).pm != pm && work.migrate(vm, pm, 16).is_ok() {
                        plan.push(vmr_sim::env::Action { vm, pm });
                        if plan.len() == 25 {
                            break 'fill;
                        }
                        break;
                    }
                }
            }
            plan
        };
        let model = vmr_sim::migration::PrecopyModel::default();
        let limits = vmr_sim::migration::NicLimits::default();
        group.bench_function(BenchmarkId::new("schedule_plan_25", name), |b| {
            b.iter(|| {
                black_box(
                    vmr_sim::migration::schedule_plan(&state, &plan, &model, limits)
                        .expect("schedulable"),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
}
criterion_main!(benches);
