//! Criterion benches of end-to-end per-mapping inference latency — the
//! right panels of Figs. 4, 9, and 18: how long each method takes to emit
//! a full rescheduling plan.
//!
//! The solver ("MIP") is run under a short deadline here so the bench
//! suite terminates; its unbounded blow-up is measured by the fig04
//! experiment binary instead.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_baselines::ha::ha_solve;
use vmr_baselines::vbpp::vbpp_solve;
use vmr_core::agent::{rollout_episode, DecideOpts, Vmr2lAgent};
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::model::Vmr2lModel;
use vmr_sim::constraints::ConstraintSet;
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;
use vmr_solver::bnb::{branch_and_bound, SolverConfig};
use vmr_solver::pop::{pop_solve, PopConfig};

fn bench_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_latency");
    group.sample_size(10);
    let cfg = ClusterConfig::small_train();
    let state = generate_mapping(&cfg, 3).expect("mapping");
    let cs = ConstraintSet::new(state.num_vms());
    let obj = Objective::default();
    let mnl = 8;

    group.bench_function(BenchmarkId::new("ha", mnl), |b| {
        b.iter(|| black_box(ha_solve(&state, &cs, obj, mnl)))
    });
    group.bench_function(BenchmarkId::new("vbpp", mnl), |b| {
        b.iter(|| black_box(vbpp_solve(&state, &cs, obj, mnl, 3)))
    });
    group.bench_function(BenchmarkId::new("bnb_200ms", mnl), |b| {
        b.iter(|| {
            black_box(branch_and_bound(
                &state,
                &cs,
                obj,
                mnl,
                &SolverConfig {
                    time_limit: Duration::from_millis(200),
                    beam_width: Some(16),
                    ..Default::default()
                },
            ))
        })
    });
    group.bench_function(BenchmarkId::new("pop_4x50ms", mnl), |b| {
        b.iter(|| {
            black_box(pop_solve(
                &state,
                &cs,
                obj,
                mnl,
                &PopConfig {
                    partitions: 4,
                    sub: SolverConfig {
                        time_limit: Duration::from_millis(200),
                        beam_width: Some(8),
                        ..Default::default()
                    },
                    seed: 0,
                },
            ))
        })
    });
    // Untrained weights — latency is architecture-dependent, not
    // training-dependent.
    let mut rng = StdRng::seed_from_u64(0);
    let agent = Vmr2lAgent::new(
        Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng),
        ActionMode::TwoStage,
    );
    group.bench_function(BenchmarkId::new("vmr2l_trajectory", mnl), |b| {
        b.iter(|| {
            let mut env = ReschedEnv::new(state.clone(), cs.clone(), obj, mnl).expect("env");
            let mut r = StdRng::seed_from_u64(1);
            black_box(
                rollout_episode(&agent, &mut env, &mut r, &DecideOpts::default()).expect("rollout"),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_plans
}
criterion_main!(benches);
