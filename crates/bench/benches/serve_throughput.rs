//! Serving hot-path benches for the `vmr-serve` daemon at the paper's
//! Medium scale (280 PMs, ~2.2k VMs).
//!
//! The acceptance bar from the PR 2 work: serving must not hide an
//! O(cluster) featurization rebuild behind the socket. The in-process
//! `session_delta_obs` id measures exactly the per-delta observation
//! upkeep (apply one live delta, read the featurization) and must stay in
//! the same order of magnitude as `simulator/observation_extract` (the
//! PR 2 incremental per-step cost) — not the ~150 µs full rebuild. The
//! loopback ids then price the wire: a cached plan answer is pure
//! protocol cost; an uncached `plan` adds the policy invocation itself.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmr_core::config::PrecisionConfig;
use vmr_serve::client::ServeClient;
use vmr_serve::proto::PlanParams;
use vmr_serve::server::{serve, ServerConfig};
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::{ClusterDelta, ReschedEnv};
use vmr_sim::objective::Objective;
use vmr_sim::types::VmId;

const SIZE: &str = "medium_280pm";

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // --- In-process: the per-delta observation upkeep a session pays.
    let state = generate_mapping(&ClusterConfig::medium(), 0).expect("mapping");
    let mut env = ReschedEnv::unconstrained(state, Objective::default(), 8).expect("env");
    let _ = env.observe(); // warm engine
    let base = env.state().vm(VmId(0)).cpu;
    let mut grow = true;
    group.bench_function(BenchmarkId::new("session_delta_obs", SIZE), |b| {
        b.iter(|| {
            // Resize toggles between two legal sizes: every iteration is
            // a real state change (dirty host PM + tenants), followed by
            // an observation read off the repaired engine.
            let cpu = if grow { base.saturating_sub(1).max(1) } else { base };
            grow = !grow;
            env.apply_delta(&ClusterDelta::VmResize { vm: VmId(0), cpu, mem: 4 }).expect("resize");
            black_box(env.observe().num_vms)
        })
    });

    // --- Loopback daemon shared by the wire-level benches.
    let handle = serve(ServerConfig { threads: 2, ..Default::default() }).expect("daemon");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    client.create_session("bench", "medium", 0, 8).expect("create");

    // Round-trip of one delta (resize toggle) over the socket.
    let mut grow = true;
    group.bench_function(BenchmarkId::new("apply_delta_roundtrip", SIZE), |b| {
        b.iter(|| {
            let cpu = if grow { base.saturating_sub(1).max(1) } else { base };
            grow = !grow;
            black_box(
                client
                    .apply_delta("bench", ClusterDelta::VmResize { vm: VmId(0), cpu, mem: 4 })
                    .expect("delta"),
            )
            .info
            .version
        })
    });

    // Cached plan: identical request at an unchanged version — pure wire
    // + coalescing-cache cost (the first iteration computes, the rest
    // are memo hits).
    let cached_params = || PlanParams {
        session: "bench".into(),
        policy: "ha".into(),
        mnl: 2,
        seed: 0,
        budget_ms: 50,
        shards: 0,
        workers: 0,
        precision: PrecisionConfig::Exact64,
        commit: false,
    };
    group.bench_function(BenchmarkId::new("plan_request_cached", SIZE), |b| {
        b.iter(|| black_box(client.plan(cached_params()).expect("plan")).plan.len())
    });

    // Uncached plan: a fresh seed per request defeats the memo, so every
    // round-trip runs the HA policy (mnl 2) against the live session.
    let mut seed = 1u64;
    group.bench_function(BenchmarkId::new("plan_request_ha_mnl2", SIZE), |b| {
        b.iter(|| {
            seed += 1;
            let params = PlanParams { seed, ..cached_params() };
            black_box(client.plan(params).expect("plan")).plan.len()
        })
    });

    group.finish();
    drop(client);
    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(6));
    targets = bench_serve
}
criterion_main!(benches);
