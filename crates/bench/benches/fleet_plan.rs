//! The PR 5 acceptance bench: planning a 10,000-PM fleet (`xxl_10000pm`,
//! an order of magnitude beyond the paper's Large dataset) unsharded vs
//! through the shard-parallel fleet planner, at an **equal global
//! migration budget** within every pair.
//!
//! The subject is the serving path itself (`vmr_serve::policies`): the
//! trained-agent architecture rolled out step by step, where every
//! decision's featurization + stage-1 attention cost scales with the
//! cluster — O(fleet) unsharded (the global attention over PM-tree
//! groups is quadratic in the fleet), O(shard) sharded. One unsharded
//! agent decision on `xxl_10000pm` costs ~50–80 s on this class of
//! host, which is the whole point of the fleet planner; the agent pair
//! therefore runs at an equal **MNL 2** so the unsharded side stays
//! measurable at all, while the HA pair runs the full MNL 16. The fleet
//! plan is byte-identical for any worker count (`prop_fleet`), so the
//! sharded numbers here are the same plans a multi-core host would
//! serve, just slower on fewer cores. `medium_280pm` keeps a CI-sized
//! agent pair at MNL 16 in the capture so regressions show up on hosts
//! that cannot afford the 10k-PM setup repeatedly.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::agent::Vmr2lAgent;
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::infer::SharedAgent;
use vmr_core::model::Vmr2lModel;
use vmr_serve::policies::{AgentPolicy, FleetPolicy, HaPolicy, PlanPolicy, PlanRequest};
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;

fn agent_handle() -> SharedAgent {
    let mut rng = StdRng::seed_from_u64(0);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    SharedAgent::new(Vmr2lAgent::new(model, ActionMode::TwoStage))
}

fn plan_request(mnl: usize, shards: usize) -> PlanRequest {
    PlanRequest {
        mnl,
        seed: 3,
        budget: Duration::from_secs(120),
        shards,
        workers: 0,
        precision: vmr_core::config::PrecisionConfig::Exact64,
    }
}

/// Benchmarks one unsharded-vs-fleet pair at an equal global MNL.
#[allow(clippy::too_many_arguments)]
fn bench_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    env: &mut ReschedEnv,
    label: &str,
    kind: &str,
    unsharded: &Arc<dyn PlanPolicy>,
    fleet: &FleetPolicy,
    mnl: usize,
    shards: usize,
) {
    env.rewind();
    env.set_mnl(mnl);
    let req = plan_request(mnl, shards);
    group.bench_function(format!("{kind}_unsharded_mnl{mnl}_{label}"), |b| {
        b.iter(|| {
            let plan = unsharded.plan(env, &req).expect("plan");
            env.rewind();
            black_box(plan.len())
        })
    });
    group.bench_function(format!("{kind}_fleet_{shards}shard_mnl{mnl}_{label}"), |b| {
        b.iter(|| {
            let plan = fleet.plan(env, &req).expect("plan");
            env.rewind();
            black_box(plan.len())
        })
    });
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_plan");
    for (label, cfg, shards, samples, agent_mnl) in [
        ("medium_280pm", ClusterConfig::medium(), 4usize, 5usize, 16usize),
        ("xxl_10000pm", ClusterConfig::xxl(), 32, 2, 2),
    ] {
        let state = generate_mapping(&cfg, 7).expect("mapping");
        let mut env = ReschedEnv::unconstrained(state, Objective::default(), 16).expect("env");
        let _ = env.observe(); // warm the incremental engine
        group.sample_size(samples.max(2));
        group.measurement_time(Duration::from_secs(if samples > 3 { 4 } else { 8 }));

        let agent: Arc<dyn PlanPolicy> = Arc::new(AgentPolicy::new(agent_handle()));
        let agent_fleet = FleetPolicy::new(Arc::clone(&agent));
        let ha: Arc<dyn PlanPolicy> = Arc::new(HaPolicy);
        let ha_fleet = FleetPolicy::new(Arc::clone(&ha));

        bench_pair(&mut group, &mut env, label, "agent", &agent, &agent_fleet, agent_mnl, shards);
        bench_pair(&mut group, &mut env, label, "ha", &ha, &ha_fleet, 16, shards);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
