//! The PR 4 acceptance bench: one full agent decision (stage 1 + masks +
//! stage 2 + sampling) on the Graph-based legacy path vs the tape-free
//! fast path, on the same warm environment. The two paths produce
//! bit-identical decisions (`fwd_equivalence`); only the engine differs.
//!
//! `graph_*` is the "old" side of the pair (PR 3's only path), kept in
//! tree exactly for this measurement; `act_*` is what serving and
//! evaluation now run, `decide_*` what rollout collection runs.
//!
//! The `decide_step_f32` group is the PR 6 acceptance pair: the same
//! full decision through the f32/SIMD fast path (`act_f32` on a
//! once-cast [`Vmr2lModelF32`]) against `decide_step/fwd_act_*` — the
//! tolerance-gated twin, not a bit-identical engine swap.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::agent::{DecideOpts, InferCtx, Vmr2lAgent};
use vmr_core::config::{ActionMode, ExtractorKind, ModelConfig};
use vmr_core::model::{Vmr2lModel, Vmr2lModelF32};
use vmr_sim::dataset::{generate_mapping, ClusterConfig};
use vmr_sim::env::ReschedEnv;
use vmr_sim::objective::Objective;

fn setup(cfg: &ClusterConfig) -> (Vmr2lAgent<Vmr2lModel>, ReschedEnv) {
    let state = generate_mapping(cfg, 7).expect("mapping");
    let mut rng = StdRng::seed_from_u64(0);
    let model = Vmr2lModel::new(ModelConfig::default(), ExtractorKind::SparseAttention, &mut rng);
    let agent = Vmr2lAgent::new(model, ActionMode::TwoStage);
    let mut env = ReschedEnv::unconstrained(state, Objective::default(), 64).expect("env");
    let _ = env.observe(); // warm the incremental engine
    (agent, env)
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_step");
    let opts = DecideOpts::default();
    // The xxl fleet runs `fwd_act` only: the legacy graph path takes
    // minutes *per iteration* at 10k PMs, and `fwd_decide` differs from
    // `fwd_act` only by the StoredObs clone — the medium pair already
    // tracks that delta.
    for (label, cfg, samples, act_only) in [
        ("small_40pm", ClusterConfig::small_train(), 10usize, false),
        ("medium_280pm", ClusterConfig::medium(), 3, false),
        ("xxl_10000pm", ClusterConfig::xxl(), 2, true),
    ] {
        let (agent, mut env) = setup(&cfg);
        group.sample_size(samples.max(2));
        group.measurement_time(Duration::from_secs(if samples > 3 { 3 } else { 4 }));

        let mut ictx = InferCtx::new();
        if !act_only {
            let mut rng = StdRng::seed_from_u64(1);
            group.bench_function(format!("graph_{label}"), |b| {
                b.iter(|| {
                    black_box(agent.decide_via_graph(&mut env, &mut rng, &opts).unwrap());
                })
            });

            let mut rng = StdRng::seed_from_u64(1);
            group.bench_function(format!("fwd_decide_{label}"), |b| {
                b.iter(|| {
                    black_box(agent.decide_in(&mut env, &mut ictx, &mut rng, &opts).unwrap());
                })
            });
        }

        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(format!("fwd_act_{label}"), |b| {
            b.iter(|| {
                black_box(agent.act(&mut env, &mut ictx, &mut rng, &opts).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_decide_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_step_f32");
    let opts = DecideOpts::default();
    for (label, cfg, samples) in [
        ("small_40pm", ClusterConfig::small_train(), 10usize),
        ("medium_280pm", ClusterConfig::medium(), 3),
        ("xxl_10000pm", ClusterConfig::xxl(), 2),
    ] {
        let (agent, mut env) = setup(&cfg);
        let m32 = Vmr2lModelF32::from_f64(&agent.policy);
        group.sample_size(samples.max(2));
        group.measurement_time(Duration::from_secs(if samples > 3 { 3 } else { 4 }));

        let mut ictx = InferCtx::new();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(format!("act_{label}"), |b| {
            b.iter(|| {
                black_box(agent.act_f32(&m32, &mut env, &mut ictx, &mut rng, &opts).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decide, bench_decide_f32
}
criterion_main!(benches);
