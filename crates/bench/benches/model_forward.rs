//! Criterion benches of the VMR2L network forward pass (stage 1 + stage 2)
//! across cluster sizes and extractor variants — the learning-side cost in
//! the Fig. 9/18 right panels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vmr_core::config::{ExtractorKind, ModelConfig};
use vmr_core::features::FeatureTensors;
use vmr_core::model::Vmr2lModel;
use vmr_nn::graph::Graph;
use vmr_sim::dataset::{generate_mapping, ClusterConfig, PmGroup};
use vmr_sim::obs::Observation;

fn feats_for(pms: usize) -> FeatureTensors {
    let cfg = ClusterConfig {
        pm_groups: vec![PmGroup { count: pms, cpu_per_numa: 44, mem_per_numa: 128 }],
        ..ClusterConfig::small_train()
    };
    let state = generate_mapping(&cfg, 11).expect("mapping");
    FeatureTensors::from_observation(&Observation::extract(&state, 16))
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_forward");
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = ModelConfig::default();
    let sparse = Vmr2lModel::new(cfg, ExtractorKind::SparseAttention, &mut rng);
    let vanilla = Vmr2lModel::new(cfg, ExtractorKind::VanillaAttention, &mut rng);
    for pms in [10usize, 40, 80] {
        let feats = feats_for(pms);
        group.bench_with_input(
            BenchmarkId::new("stage1_sparse", format!("{pms}pm_{}vm", feats.num_vms)),
            &feats,
            |b, f| {
                b.iter(|| {
                    let mut g = Graph::new();
                    black_box(sparse.stage1(&mut g, f));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stage1_vanilla", format!("{pms}pm_{}vm", feats.num_vms)),
            &feats,
            |b, f| {
                b.iter(|| {
                    let mut g = Graph::new();
                    black_box(vanilla.stage1(&mut g, f));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stage1_plus_stage2", format!("{pms}pm")),
            &feats,
            |b, f| {
                b.iter(|| {
                    let mut g = Graph::new();
                    let s1 = sparse.stage1(&mut g, f);
                    black_box(sparse.stage2(&mut g, &s1, 0));
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward
}
criterion_main!(benches);
