#!/usr/bin/env bash
# Profile the policy forward pass per precision tier.
#
# Runs the policy_forward (f64) and policy_forward_f32 criterion benches
# under `perf record` and, when a flamegraph toolchain is available,
# renders one SVG per precision — the side-by-side that shows where the
# f32 fast path actually spends its time (GEMM vs softmax vs layer norm)
# compared to the f64 exact path.
#
#   scripts/profile_forward.sh [f64|f32|both] [OUTDIR]
#
# Defaults: both tiers, output under target/profile/. Degrades
# gracefully: without `perf` it falls back to timing the bench bodies;
# without `flamegraph`/`inferno` it leaves the perf.data for manual
# inspection (`perf report -i <file>`).

set -euo pipefail

TIER="${1:-both}"
OUTDIR="${2:-target/profile}"
case "$TIER" in
    f64|f32|both) ;;
    *) echo "usage: $0 [f64|f32|both] [OUTDIR]" >&2; exit 2 ;;
esac
mkdir -p "$OUTDIR"

benches_for() {
    case "$1" in
        f64) echo "policy_forward" ;;
        f32) echo "policy_forward_f32" ;;
    esac
}

# Criterion benches accept a filter argument: the group name restricts
# the run to one precision family inside policy_forward.rs.
run_one() {
    local tier="$1"
    local group
    group="$(benches_for "$tier")"
    local perfdata="$OUTDIR/forward_${tier}.perf.data"
    local svg="$OUTDIR/forward_${tier}.svg"

    echo "==> $tier tier (bench group: $group)"
    if command -v perf >/dev/null 2>&1; then
        # perf may be installed but unusable (unprivileged container,
        # perf_event_paranoid); probe once and fall back cleanly.
        if perf stat -e task-clock true >/dev/null 2>&1; then
            perf record -g --call-graph dwarf -o "$perfdata" -- \
                cargo bench -p vmr-bench --bench policy_forward -- "^$group/" \
                || { echo "perf record failed for $tier" >&2; return 1; }
            echo "    perf data: $perfdata"
            if command -v flamegraph >/dev/null 2>&1; then
                flamegraph --perfdata "$perfdata" -o "$svg" \
                    && echo "    flamegraph: $svg"
            elif command -v inferno-collapse-perf >/dev/null 2>&1; then
                perf script -i "$perfdata" | inferno-collapse-perf \
                    | inferno-flamegraph > "$svg" \
                    && echo "    flamegraph: $svg"
            else
                echo "    no flamegraph/inferno on PATH; inspect with:" \
                     "perf report -i $perfdata"
            fi
            return 0
        fi
        echo "    perf present but cannot count events here" \
             "(perf_event_paranoid?); timing only"
    else
        echo "    perf not found; timing only"
    fi
    # Fallback: still produce numbers so the script is useful anywhere —
    # the criterion shim prints per-benchmark medians.
    cargo bench -p vmr-bench --bench policy_forward -- "^$group/"
}

if [ "$TIER" = "both" ]; then
    run_one f64
    run_one f32
else
    run_one "$TIER"
fi
echo "done; artifacts in $OUTDIR"
